#!/usr/bin/env python3
"""How far from optimal is each algorithm?  Exact-solver ground truth.

On small instances the ILP backend (SciPy HiGHS) and the CP solver
prove the optimal usage/operating cost.  This example measures every
algorithm's cost gap against that optimum — the calibration the paper
implies when it calls constraint programming "optimal" in Figure 11.

Run:  python examples/exact_vs_heuristic.py
"""

from repro import (
    CPAllocator,
    NSGA3TabuAllocator,
    NSGAConfig,
    RoundRobinAllocator,
    ScenarioGenerator,
    ScenarioSpec,
    solve_ilp,
)
from repro.baselines import BestFitAllocator, FirstFitAllocator
from repro.cp import CPSolver, SearchLimits
from repro.evaluation import format_table
from repro.model import Request


def main() -> None:
    spec = ScenarioSpec(
        servers=8,
        datacenters=2,
        vms=14,
        tightness=0.55,
        max_request_size=5,
    )
    scenario = ScenarioGenerator(spec, seed=4).generate()
    merged, _ = Request.concatenate(scenario.requests)

    # Ground truth: the ILP proves the optimum quickly (HiGHS handles
    # the near-symmetric cost plateau that makes pure branch & bound
    # enumerate).  The CP solver cross-checks with a bounded search —
    # it typically *finds* the same optimum long before it can prove it.
    ilp = solve_ilp(scenario.infrastructure, merged, time_limit=60)
    assert ilp.optimal, "instance too hard for the example"
    cp = CPSolver(
        scenario.infrastructure,
        merged,
        limits=SearchLimits(max_nodes=100_000, time_limit=10),
    ).optimize()
    print(f"optimal whole-window cost (ILP, proved): {ilp.cost:.2f}")
    if cp.found:
        verdict = "proved optimal" if cp.proved else "not proved within budget"
        print(
            f"CP best found: {cp.cost:.2f} ({verdict}; "
            f"{cp.stats.nodes} nodes, {cp.stats.elapsed:.2f}s)"
        )
        assert cp.cost >= ilp.cost - 1e-6, "CP below the proved optimum?!"

    config = NSGAConfig(population_size=40, max_evaluations=2000, seed=1)
    rows = []
    for allocator in (
        FirstFitAllocator(),
        BestFitAllocator(),
        RoundRobinAllocator(),
        CPAllocator(optimize=True),
        NSGA3TabuAllocator(config),
    ):
        outcome = allocator.allocate(scenario.infrastructure, scenario.requests)
        gap = (
            (outcome.provider_cost - ilp.cost) / ilp.cost * 100
            if outcome.rejection_rate == 0
            else float("nan")
        )
        rows.append(
            [
                outcome.algorithm,
                f"{outcome.rejection_rate:.2f}",
                f"{outcome.provider_cost:.2f}",
                "n/a (rejected some)" if gap != gap else f"{gap:+.1f}%",
            ]
        )
    print()
    print(
        format_table(
            ["algorithm", "rejection", "provider cost", "gap vs optimal"],
            rows,
            title="Cost gap against the proved optimum",
        )
    )


if __name__ == "__main__":
    main()
