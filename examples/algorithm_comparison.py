#!/usr/bin/env python3
"""Compare all six Section IV algorithms on one random scenario.

Reproduces the paper's headline comparison in miniature: execution
time, rejection rate, violated constraints and provider cost for Round
Robin, Constraint Programming, unmodified NSGA-II/III, NSGA-III + CP
repair and NSGA-III + tabu repair — on a single generated window.

Run:  python examples/algorithm_comparison.py [seed]
"""

import sys

from repro import (
    CPAllocator,
    NSGA2Allocator,
    NSGA3Allocator,
    NSGA3CPAllocator,
    NSGA3TabuAllocator,
    NSGAConfig,
    RoundRobinAllocator,
    ScenarioGenerator,
    ScenarioSpec,
    SearchLimits,
)
from repro.evaluation import format_table


def main(seed: int = 7) -> None:
    spec = ScenarioSpec(
        servers=32,
        datacenters=2,
        vms=64,
        tightness=0.68,
        affinity_probability=0.7,
    )
    scenario = ScenarioGenerator(spec, seed=seed).generate()
    print(
        f"scenario: {spec.servers} servers / {spec.vms} VMs / "
        f"{scenario.n_requests} requests / "
        f"{sum(len(r.groups) for r in scenario.requests)} placement rules"
    )

    config = NSGAConfig(population_size=40, max_evaluations=2000, seed=seed)
    allocators = [
        RoundRobinAllocator(),
        CPAllocator(optimize=False, limits=SearchLimits(max_nodes=50_000, time_limit=5)),
        NSGA2Allocator(config),
        NSGA3Allocator(config),
        NSGA3CPAllocator(
            config, repair_limits=SearchLimits(max_nodes=500, time_limit=0.1)
        ),
        NSGA3TabuAllocator(config),
    ]

    rows = []
    for allocator in allocators:
        outcome = allocator.allocate(scenario.infrastructure, scenario.requests)
        rows.append(
            [
                outcome.algorithm,
                f"{outcome.elapsed:.3f}",
                f"{outcome.rejection_rate:.2f}",
                outcome.violations,
                f"{outcome.provider_cost:.1f}",
                f"{outcome.objectives[1]:.2f}",
            ]
        )

    print()
    print(
        format_table(
            [
                "algorithm",
                "time (s)",
                "rejection",
                "violations",
                "provider cost",
                "downtime cost",
            ],
            rows,
            title="Section IV comparison (one scenario)",
        )
    )
    print(
        "\nExpected shape (paper Figs. 7-11): greedy/CP fastest; unmodified"
        "\nNSGA-II/III violate constraints; nsga3_tabu accepts the most with"
        "\nzero violations at a cost comparable to constraint programming."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7)
