#!/usr/bin/env python3
"""What affinity rules buy on the wire: communication-cost analysis.

The paper motivates the spine-leaf fabric with bandwidth, and its
affinity rules with consumer interests — this example connects the two
using the :class:`~repro.objectives.network.CommunicationCost`
extension objective.  A chatty three-tier application is placed three
ways (no rules / SAME_DATACENTER / SAME_SERVER pairs) and the resulting
hop-weighted traffic is measured, alongside the availability trade-off
(path redundancy between replicas).

Run:  python examples/network_aware_placement.py
"""

import numpy as np

from repro import (
    FabricSpec,
    NSGA3TabuAllocator,
    NSGAConfig,
    PlacementGroup,
    PlacementRule,
    Request,
    SpineLeafFabric,
)
from repro.evaluation import format_table
from repro.objectives import CommunicationCost, uniform_group_traffic
from repro.topology import hop_matrix, path_redundancy


def _request(groups) -> Request:
    # Three-tier app: 2 web, 2 app, 2 db — 6 VMs, heavy web<->app and
    # app<->db chatter.
    return Request(
        demand=np.array(
            [
                [2, 8, 50],
                [2, 8, 50],
                [4, 16, 100],
                [4, 16, 100],
                [4, 32, 300],
                [4, 32, 300],
            ],
            dtype=float,
        ),
        qos_guarantee=np.full(6, 0.95),
        downtime_cost=np.full(6, 5.0),
        migration_cost=np.ones(6),
        groups=groups,
        name="three-tier",
    )


def main() -> None:
    fabric = SpineLeafFabric(
        FabricSpec(datacenters=2, spines=2, leaves=3, servers_per_leaf=4)
    )
    infra = fabric.to_infrastructure(
        capacity=[32, 128, 2000], operating_cost=2.0, usage_cost=1.0
    )
    hops = hop_matrix(fabric)

    # Traffic: web pair <-> app pair <-> db pair (tier bipartite flows).
    traffic = np.zeros((6, 6))
    for a in (0, 1):
        for b in (2, 3):
            traffic[a, b] = traffic[b, a] = 5.0   # web <-> app
    for a in (2, 3):
        for b in (4, 5):
            traffic[a, b] = traffic[b, a] = 10.0  # app <-> db
    comm = CommunicationCost(traffic, hops)

    variants = {
        "no rules": (),
        "tiers same datacenter": (
            PlacementGroup(PlacementRule.SAME_DATACENTER, (0, 1, 2, 3, 4, 5)),
        ),
        "chatty pairs same server": (
            PlacementGroup(PlacementRule.SAME_SERVER, (2, 4)),
            PlacementGroup(PlacementRule.SAME_SERVER, (3, 5)),
            PlacementGroup(PlacementRule.SAME_DATACENTER, (0, 1, 2, 3, 4, 5)),
        ),
        "db pair split for DR": (
            PlacementGroup(PlacementRule.DIFFERENT_DATACENTERS, (4, 5)),
        ),
    }

    allocator_config = NSGAConfig(population_size=40, max_evaluations=1600, seed=5)
    rows = []
    for label, groups in variants.items():
        request = _request(groups)
        outcome = NSGA3TabuAllocator(allocator_config).allocate(infra, [request])
        assignment = outcome.assignment
        cost = comm.value(assignment)
        db_redundancy = path_redundancy(
            fabric,
            fabric.server_nodes[assignment[4]],
            fabric.server_nodes[assignment[5]],
        )
        rows.append(
            [
                label,
                outcome.violations,
                f"{cost:.0f}",
                db_redundancy,
                f"{outcome.provider_cost:.0f}",
            ]
        )

    print(
        format_table(
            [
                "placement policy",
                "violations",
                "traffic cost (flow x hops)",
                "db-pair path redundancy",
                "provider cost",
            ],
            rows,
            title="Affinity rules vs. network traffic vs. availability",
        )
    )
    print(
        "\nCo-location slashes hop-weighted traffic; splitting the database"
        "\nacross datacenters pays 6-hop flows but survives a whole-site"
        "\nfailure — the consumer-side trade the paper's rules let tenants"
        "\nexpress."
    )


if __name__ == "__main__":
    main()
