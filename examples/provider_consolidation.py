#!/usr/bin/env python3
"""Provider-side consolidation: pack tenants onto fewer servers.

The related work the paper builds on (Beloglazov & Buyya, BtrPlace)
optimizes *server activation*: an idle server can be powered down, so
the operating expense E_j should be paid once per active server, not
per hosted VM.  The library supports that accounting via the
``per_server_operating`` switch on the usage-cost objective; this
example contrasts the two accountings and shows how consolidation
emerges with best-fit packing versus load-spreading round robin.

Run:  python examples/provider_consolidation.py
"""

import numpy as np

from repro import (
    Infrastructure,
    RoundRobinAllocator,
    ScenarioGenerator,
    ScenarioSpec,
)
from repro.baselines import BestFitAllocator, WorstFitAllocator
from repro.evaluation import format_table
from repro.model import Request
from repro.objectives import UsageOperatingCost


def main() -> None:
    spec = ScenarioSpec(
        servers=24,
        datacenters=2,
        vms=60,
        tightness=0.45,  # room to consolidate
        heterogeneity=0.0,  # identical servers: activation count is the story
        affinity_probability=0.3,
    )
    scenario = ScenarioGenerator(spec, seed=13).generate()
    infra = scenario.infrastructure
    merged, _ = Request.concatenate(scenario.requests)

    per_resource = UsageOperatingCost(infra, per_server_operating=False)
    per_server = UsageOperatingCost(infra, per_server_operating=True)

    rows = []
    for allocator in (
        BestFitAllocator(),
        RoundRobinAllocator(),
        WorstFitAllocator(),
    ):
        outcome = allocator.allocate(infra, scenario.requests)
        placed = outcome.assignment[outcome.assignment >= 0]
        active = np.unique(placed).size
        rows.append(
            [
                outcome.algorithm,
                f"{outcome.rejection_rate:.2f}",
                active,
                f"{per_resource.value(outcome.assignment):.1f}",
                f"{per_server.value(outcome.assignment):.1f}",
                f"{outcome.objectives[1]:.2f}",
            ]
        )

    print(
        format_table(
            [
                "algorithm",
                "rejection",
                "active servers",
                "cost (per-resource E)",
                "cost (per-server E)",
                "downtime cost",
            ],
            rows,
            title=(
                f"Consolidation on {infra.m} identical servers, "
                f"{scenario.n_vms} VMs"
            ),
        )
    )
    print(
        "\nBest-fit activates the fewest servers, so under per-server"
        "\naccounting it is the cheapest — the consolidation objective of"
        "\nthe energy-oriented related work.  Worst-fit spreads load and"
        "\nminimizes the downtime (QoS) objective instead: exactly the"
        "\nprovider-vs-consumer tension the paper's multi-objective model"
        "\nexists to balance."
    )


if __name__ == "__main__":
    main()
