#!/usr/bin/env python3
"""Surviving hardware failures: displacement, re-placement, DR rules.

The paper's future work names "platform failures" as the flow events a
production allocator must absorb.  This example drives the scheduler
with a Poisson arrival trace *plus* injected server failures, and
shows (a) displaced tenants being re-placed automatically with failed
servers blocked, and (b) why a DIFFERENT_DATACENTERS rule on a
replicated pair keeps the service alive through a whole-datacenter
outage.

Run:  python examples/failure_resilience.py
"""

import numpy as np

from repro import (
    Infrastructure,
    PlacementGroup,
    PlacementRule,
    Request,
    TimeWindowScheduler,
)
from repro.baselines import FilterSchedulerAllocator
from repro.scheduler import summarize_reports
from repro.workloads import ScenarioSpec, TraceGenerator, TraceSpec


def main() -> None:
    infra = Infrastructure.homogeneous(
        datacenters=2,
        servers_per_datacenter=10,
        capacity=[32, 128, 2000],
        operating_cost=2.0,
        usage_cost=1.0,
    )

    # ------------------------------------------------------------------
    # Part 1: churn + random failures through the scheduler.
    # ------------------------------------------------------------------
    scenario_spec = ScenarioSpec(
        servers=infra.m, datacenters=2, vms=60, tightness=0.5
    )
    trace, _ = TraceGenerator(
        TraceSpec(
            horizon=12.0,
            arrival_rate=2.0,
            mean_lifetime=6.0,
            failure_rate=0.4,
            mean_repair_time=3.0,
        ),
        scenario_spec,
        seed=9,
    ).generate()

    scheduler = TimeWindowScheduler(infra, FilterSchedulerAllocator())
    trace.apply_to(scheduler)
    reports = scheduler.run(max_windows=64)
    scheduler.state.verify_consistency()

    summary = summarize_reports(reports)
    print(
        f"trace: {summary.arrivals} arrivals, {summary.failures} server "
        f"failures, {summary.recoveries} recoveries over {summary.windows} windows"
    )
    print(
        f"decisions: {summary.accepted} accepted, {summary.rejected} rejected "
        f"({summary.rejection_rate:.0%}), {summary.displaced} tenants displaced "
        f"by failures and re-placed"
    )
    for report in reports:
        if report.failures:
            print(
                f"  window {report.window_index:2d}: server(s) "
                f"{list(report.failures)} failed -> displaced "
                f"{list(report.displaced)}"
            )

    # ------------------------------------------------------------------
    # Part 2: why the DR rule matters — a whole datacenter goes dark.
    # ------------------------------------------------------------------
    def replicated_pair(groups) -> Request:
        return Request(
            demand=np.array([[8, 32, 400], [8, 32, 400]], dtype=float),
            qos_guarantee=np.array([0.99, 0.99]),
            downtime_cost=np.array([100.0, 100.0]),
            migration_cost=np.array([10.0, 10.0]),
            groups=groups,
        )

    print("\nwhole-datacenter outage drill:")
    for label, groups in [
        ("no placement rule", ()),
        (
            "DIFFERENT_DATACENTERS rule",
            (PlacementGroup(PlacementRule.DIFFERENT_DATACENTERS, (0, 1)),),
        ),
    ]:
        drill = TimeWindowScheduler(infra, FilterSchedulerAllocator())
        drill.submit("svc", replicated_pair(groups), at=0.0)
        drill.run_window()
        assignment = drill.state.previous_assignment("svc")
        dcs = infra.server_datacenter[assignment]
        # Datacenter 0 goes dark.
        survivors = int(np.sum(dcs != 0))
        print(
            f"  {label:28s} replicas in datacenters {sorted(set(dcs.tolist()))} "
            f"-> {survivors}/2 replicas survive a dc0 outage"
        )


if __name__ == "__main__":
    main()
