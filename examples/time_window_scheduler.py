#!/usr/bin/env python3
"""Operate a live platform: cyclic windows, churn, reconfiguration.

Simulates a day of tenant churn on a spine-leaf estate: requests
arrive continuously, are batched into scheduling windows (the paper's
"cyclic time window"), tenants depart, and a periodic reconfiguration
pass re-packs the survivors — with the Eq. 26 migration objective
keeping the move count honest.

Run:  python examples/time_window_scheduler.py
"""

import numpy as np

from repro import (
    FabricSpec,
    NSGA3TabuAllocator,
    NSGAConfig,
    ScenarioGenerator,
    ScenarioSpec,
    SpineLeafFabric,
    TimeWindowScheduler,
)
from repro.baselines import BestFitAllocator
from repro.topology import oversubscription_ratio


def main() -> None:
    # ------------------------------------------------------------------
    # Build the physical estate from its network shape (Figure 1).
    # ------------------------------------------------------------------
    fabric = SpineLeafFabric(
        FabricSpec(datacenters=2, spines=2, leaves=3, servers_per_leaf=4)
    )
    infra = fabric.to_infrastructure(
        capacity=[32, 128, 2000], operating_cost=2.0, usage_cost=1.0
    )
    print(
        f"fabric: {fabric.n_servers} servers, "
        f"leaf oversubscription {oversubscription_ratio(fabric):.2f}"
    )

    # ------------------------------------------------------------------
    # A stream of tenant requests (reusing the scenario generator for
    # realistic demand mixes, but driving arrivals ourselves).
    # ------------------------------------------------------------------
    spec = ScenarioSpec(
        servers=fabric.n_servers, datacenters=2, vms=72, tightness=0.55
    )
    scenario = ScenarioGenerator(spec, seed=3).generate()
    rng = np.random.default_rng(3)

    scheduler = TimeWindowScheduler(
        infra, BestFitAllocator(), window_length=1.0
    )
    for i, request in enumerate(scenario.requests):
        arrival = float(rng.uniform(0, 6))
        scheduler.submit(f"tenant-{i}", request, at=arrival)
        if rng.random() < 0.5:  # half the tenants churn out
            scheduler.schedule_departure(
                f"tenant-{i}", at=arrival + float(rng.uniform(2, 6))
            )

    # ------------------------------------------------------------------
    # Run the windows.
    # ------------------------------------------------------------------
    reports = scheduler.run(max_windows=16)
    for report in reports:
        if report.arrivals or report.departures:
            print(
                f"window {report.window_index:2d} "
                f"[{report.start_time:4.1f}, {report.end_time:4.1f}): "
                f"+{len(report.accepted)} accepted, "
                f"-{len(report.departures)} departed, "
                f"{len(report.rejected)} rejected"
            )
    scheduler.state.verify_consistency()
    hosted = scheduler.state.hosted_resource_count
    load = scheduler.state.committed_load.mean()
    print(f"\nsteady state: {hosted} VMs hosted, mean load {load:.2f}")

    # ------------------------------------------------------------------
    # Reconfiguration: re-pack survivors with the EA (migration-aware).
    # ------------------------------------------------------------------
    result = scheduler.reoptimize(
        NSGA3TabuAllocator(
            NSGAConfig(population_size=40, max_evaluations=1600, seed=0)
        )
    )
    if result is None:
        print("platform empty; nothing to reconfigure")
        return
    outcome, plan = result
    print(
        f"\nreconfiguration plan: {plan.size} migrations "
        f"(of {hosted} hosted VMs), Eq. 26 cost {plan.total_cost:.1f}"
    )
    for move in plan.moves[:8]:
        print(
            f"  move resource {move.resource:3d}: "
            f"server {move.source} -> {move.destination} "
            f"(cost {move.cost:.1f})"
        )
    if plan.size > 8:
        print(f"  ... and {plan.size - 8} more")
    scheduler.state.verify_consistency()
    print("platform consistent after reconfiguration.")


if __name__ == "__main__":
    main()
