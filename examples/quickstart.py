#!/usr/bin/env python3
"""Quickstart: allocate one consumer request with the paper's hybrid.

Builds a two-datacenter estate, expresses a small web-application
request with affinity/anti-affinity rules, runs the NSGA-III + tabu
allocator, and prints where everything landed and what it costs.
Part two drives the same estate through the cyclic time-window
scheduler for three windows of tenant churn.

Run:  python examples/quickstart.py
      python examples/quickstart.py --telemetry jsonl:events.jsonl
      python examples/quickstart.py --telemetry console

With a sink configured, every NSGA-III generation emits a
GenerationCompleted event and every scheduler window a WindowClosed
event (see docs/OBSERVABILITY.md for the full catalog).
"""

import argparse

import numpy as np

from repro import (
    Infrastructure,
    NSGA3TabuAllocator,
    NSGAConfig,
    PlacementGroup,
    PlacementRule,
    Request,
    TimeWindowScheduler,
    telemetry,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--telemetry",
        default=None,
        metavar="SPEC",
        help="event sink: console, jsonl:PATH, or off (default)",
    )
    parser.add_argument("--population", type=int, default=40)
    parser.add_argument("--evaluations", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=42)
    return parser


def main(argv=None) -> None:
    args = build_parser().parse_args(argv)
    sink = telemetry.configure(args.telemetry)

    # ------------------------------------------------------------------
    # Provider side: 2 datacenters x 10 servers, 32 cores / 128 GiB RAM
    # / 2 TB disk each, modest virtualization overhead.
    # ------------------------------------------------------------------
    infra = Infrastructure.homogeneous(
        datacenters=2,
        servers_per_datacenter=10,
        capacity=[32, 128, 2000],
        capacity_factor=[0.95, 0.97, 1.0],
        operating_cost=2.0,
        usage_cost=1.0,
    )
    print(f"infrastructure: {infra}")

    # ------------------------------------------------------------------
    # Consumer side: 6 VMs — two replicated web frontends that must sit
    # on *different servers*, two app servers co-located in the *same
    # datacenter* as each other, and a primary/standby database pair
    # split across *different datacenters* for disaster recovery.
    # ------------------------------------------------------------------
    demand = np.array(
        [
            [4, 16, 100],   # web-1
            [4, 16, 100],   # web-2
            [8, 32, 200],   # app-1
            [8, 32, 200],   # app-2
            [8, 64, 500],   # db-primary
            [8, 64, 500],   # db-standby
        ],
        dtype=float,
    )
    request = Request(
        demand=demand,
        qos_guarantee=np.array([0.95, 0.95, 0.95, 0.95, 0.99, 0.99]),
        downtime_cost=np.array([5.0, 5.0, 10.0, 10.0, 50.0, 50.0]),
        migration_cost=np.array([1.0, 1.0, 2.0, 2.0, 10.0, 10.0]),
        groups=(
            PlacementGroup(PlacementRule.DIFFERENT_SERVERS, (0, 1)),
            PlacementGroup(PlacementRule.SAME_DATACENTER, (2, 3)),
            PlacementGroup(PlacementRule.DIFFERENT_DATACENTERS, (4, 5)),
        ),
        name="web-application",
    )

    # ------------------------------------------------------------------
    # Allocate with the paper's NSGA-III + tabu-search hybrid.
    # ------------------------------------------------------------------
    allocator = NSGA3TabuAllocator(
        NSGAConfig(
            population_size=args.population,
            max_evaluations=args.evaluations,
            seed=args.seed,
        )
    )
    outcome = allocator.allocate(infra, [request])

    names = ["web-1", "web-2", "app-1", "app-2", "db-primary", "db-standby"]
    print(f"\naccepted: {bool(outcome.accepted[0])}")
    print(f"violated constraints: {outcome.violations}")
    for name, server in zip(names, outcome.assignment):
        dc = infra.server_datacenter[server]
        print(f"  {name:12s} -> server {server:2d} (datacenter {dc})")

    usage, downtime, migration = outcome.objectives
    print(f"\nusage+operating cost: {usage:.1f}")
    print(f"downtime cost:        {downtime:.3f}")
    print(f"migration cost:       {migration:.1f} (first placement: 0)")
    print(f"solved in {outcome.elapsed:.2f}s / {outcome.evaluations} evaluations")

    # Sanity: the affinity rules actually hold.
    a = outcome.assignment
    assert a[0] != a[1], "web replicas must not share a server"
    dc = infra.server_datacenter
    assert dc[a[2]] == dc[a[3]], "app servers must share a datacenter"
    assert dc[a[4]] != dc[a[5]], "db pair must span datacenters"
    print("\nall placement rules satisfied.")

    # ------------------------------------------------------------------
    # Part two: the cyclic time-window scheduler.  Three small tenants
    # arrive one window apart; the first departs while the third is
    # being placed.  With a telemetry sink configured, each window
    # closes with a WindowClosed event.
    # ------------------------------------------------------------------
    print("\n--- time-window scheduler ---")
    scheduler = TimeWindowScheduler(infra, allocator, window_length=1.0)

    def tenant(n: int, scale: float) -> Request:
        return Request(
            demand=np.full((n, 3), scale) * np.array([1.0, 4.0, 25.0]),
            qos_guarantee=np.full(n, 0.9),
            downtime_cost=np.ones(n),
            migration_cost=np.ones(n),
        )

    scheduler.submit("batch-job", tenant(2, 2.0), at=0.0)
    scheduler.submit("web-shop", tenant(3, 4.0), at=1.0)
    scheduler.submit("analytics", tenant(2, 6.0), at=2.0)
    scheduler.schedule_departure("batch-job", at=2.5)

    for report in scheduler.run():
        print(
            f"window {report.window_index}: "
            f"arrivals={list(report.arrivals)} accepted={list(report.accepted)} "
            f"rejected={list(report.rejected)} departures={list(report.departures)}"
        )
    print(f"hosted tenants at t={scheduler.clock:.1f}: {scheduler.state.tenants()}")

    telemetry.shutdown(sink)


if __name__ == "__main__":
    main()
