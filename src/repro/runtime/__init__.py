"""repro.runtime — checkpoint/resume durability for long allocations.

The paper's evaluation campaigns (100 runs x 10 000 evaluations per
sweep point) are exactly the workloads that die to pre-emption at
generation 190/200.  This package makes them restartable:

* :mod:`repro.runtime.checkpoint` — :class:`RunCheckpoint` (full NSGA
  trajectory state at a generation boundary) and
  :class:`CheckpointManager` (atomic, checksummed, versioned on-disk
  store with pruning);
* :mod:`repro.runtime.signals` — SIGINT/SIGTERM graceful-flush
  handlers and the process-wide shutdown flag long loops poll.

Wiring: ``NSGAConfig(checkpoint_every=..., checkpoint_dir=...)`` turns
on boundary snapshots inside every EA allocator;
``ExperimentRunner.run_sweep(..., checkpoint_dir=...)`` adds per-cell
campaign resume; ``python -m repro resume PATH`` restarts a killed
campaign; ``python -m repro verify --check-resume`` proves the
byte-identity contract.  Operational guide: ``docs/RUNBOOK.md``.
"""

from repro.runtime.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointManager,
    RunCheckpoint,
    atomic_write_json,
    read_checked_json,
    trajectory_key,
)
from repro.runtime.signals import (
    GracefulShutdown,
    clear_shutdown,
    request_shutdown,
    shutdown_requested,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointManager",
    "RunCheckpoint",
    "atomic_write_json",
    "read_checked_json",
    "trajectory_key",
    "GracefulShutdown",
    "clear_shutdown",
    "request_shutdown",
    "shutdown_requested",
]
