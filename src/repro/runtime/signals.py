"""Graceful-shutdown plumbing for long campaigns.

A paper-scale sweep killed by SIGTERM (pre-emption, OOM supervisor,
Ctrl-C) should flush a checkpoint and exit cleanly instead of dying
mid-generation.  This module is the cooperative half of that contract:

* :class:`GracefulShutdown` installs SIGINT/SIGTERM handlers that set
  a process-wide flag (a second SIGINT still raises
  :class:`KeyboardInterrupt`, so an impatient operator can force the
  issue);
* long loops — the NSGA generational loop, the sweep runner's cell
  loop — poll :func:`shutdown_requested` at safe boundaries, write a
  checkpoint, and return with their result marked interrupted.

The flag is process-global on purpose: one signal must stop every
nested loop (sweep -> allocator -> EA engine -> parallel repair), and
threading an abort token through each layer would couple them all to
this module instead.
"""

from __future__ import annotations

import signal
import threading

from repro.telemetry import get_registry

__all__ = [
    "GracefulShutdown",
    "shutdown_requested",
    "request_shutdown",
    "clear_shutdown",
]

_SHUTDOWN = threading.Event()


def shutdown_requested() -> bool:
    """Whether a graceful shutdown has been requested for this process."""
    return _SHUTDOWN.is_set()


def request_shutdown(reason: str = "manual") -> None:
    """Raise the shutdown flag (also usable programmatically in tests)."""
    if not _SHUTDOWN.is_set():
        _SHUTDOWN.set()
        get_registry().count("runtime.shutdown.requests", reason=reason)


def clear_shutdown() -> None:
    """Lower the flag (a new campaign starts with a clean slate)."""
    _SHUTDOWN.clear()


class GracefulShutdown:
    """Context manager scoping SIGINT/SIGTERM to the shutdown flag.

    Inside the context the first SIGINT or SIGTERM requests a graceful
    stop; checkpoint-aware loops notice at their next boundary, flush,
    and unwind normally.  A second SIGINT restores default semantics by
    raising :class:`KeyboardInterrupt` immediately.  On exit the
    previous handlers are reinstalled and the flag is cleared.

    Signal handlers can only be installed from the main thread; from
    any other thread the context degrades to a no-op (the flag can
    still be raised programmatically via :func:`request_shutdown`).
    """

    def __init__(self) -> None:
        self._previous: dict[int, object] = {}
        self._installed = False

    def _handle(self, signum: int, frame) -> None:
        if shutdown_requested() and signum == signal.SIGINT:
            raise KeyboardInterrupt
        name = signal.Signals(signum).name
        request_shutdown(reason=name.lower())

    def __enter__(self) -> "GracefulShutdown":
        if threading.current_thread() is threading.main_thread():
            for signum in (signal.SIGINT, signal.SIGTERM):
                self._previous[signum] = signal.signal(signum, self._handle)
            self._installed = True
        return self

    def __exit__(self, *exc_info) -> None:
        if self._installed:
            for signum, handler in self._previous.items():
                signal.signal(signum, handler)
            self._previous.clear()
            self._installed = False
        clear_shutdown()
