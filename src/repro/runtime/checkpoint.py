"""Durable checkpoint storage for long-running allocation campaigns.

The paper's evaluation protocol (Figures 7-11) averages 100 runs of a
10 000-evaluation budget per sweep point — hours of wall clock at
production scale.  A crash, OOM-kill or pre-emption near the end of
such a campaign must not lose the work.  This module provides the
storage layer of the checkpoint/resume subsystem:

* :class:`RunCheckpoint` — the complete trajectory state of one NSGA
  run at a generation boundary: population matrices, RNG bit-generator
  state, the tabu-repair batch counter, stall/incumbent trackers, the
  compiled-instance fingerprint and a config trajectory key for
  staleness detection;
* :class:`CheckpointManager` — an atomic, versioned on-disk store.
  Writes go to a temp file in the same directory, are fsync'd, then
  :func:`os.replace`'d over the final name, so a torn write (power
  loss, kill -9 mid-write) can never clobber the previous valid
  checkpoint.  Every payload carries a BLAKE2b checksum; corrupt or
  truncated files are detected on load and skipped by
  :meth:`CheckpointManager.latest`.

The resume contract is **byte identity**: a run restored from a
checkpoint continues exactly as the uninterrupted run would have —
same final fronts, same rejection sets, same counters — proven by
``repro.verify.resume`` and ``python -m repro verify --check-resume``.
Floats survive the JSON round trip exactly (``json`` serializes via
``repr``, which is lossless for finite doubles), and the RNG state is
the raw bit-generator state dictionary.

Telemetry lands in ``runtime.checkpoint.*`` (write/restore counts,
bytes, durations); see ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import CheckpointError, ValidationError
from repro.telemetry import get_registry
from repro.utils.timers import Stopwatch

__all__ = [
    "CHECKPOINT_VERSION",
    "RunCheckpoint",
    "CheckpointManager",
    "trajectory_key",
    "atomic_write_json",
    "read_checked_json",
]

#: On-disk format version.  Bump on incompatible layout changes; the
#: loader rejects files written by a different major version.
CHECKPOINT_VERSION = 1

#: NSGAConfig fields that shape the search *trajectory*.  Stopping
#: criteria (``max_evaluations``, ``time_limit``, ``stall_generations``)
#: and execution knobs (``n_workers``, ``parallel_eval_min_pop``, the
#: checkpoint settings themselves) are deliberately excluded: a
#: checkpoint taken under a 600-evaluation budget resumes byte-
#: identically into a 10 000-evaluation run, and a serial checkpoint
#: resumes under a worker pool (the parallel engine's determinism
#: contract makes both paths emit the same bytes).
_TRAJECTORY_FIELDS = (
    "population_size",
    "sbx_rate",
    "sbx_distribution_index",
    "pm_rate",
    "pm_distribution_index",
    "reference_point_divisions",
    "penalty_coefficient",
    "repair_parents",
    "seed",
    # The optional energy term reshapes the objective landscape, so two
    # runs differing in weight are distinct trajectories.
    "energy_weight",
    # The preference order decides which front member a resumed run
    # deploys; two runs differing in spec commit different solutions.
    "preference",
)


def trajectory_key(config: Any, algorithm: str) -> str:
    """Digest of the (algorithm, config) pair that defines a trajectory.

    Two runs share a trajectory key exactly when, generation for
    generation, they draw the same random numbers and apply the same
    operators — the precondition for resuming one from the other's
    checkpoint.
    """
    parts = [f"algorithm={algorithm}"]
    for name in _TRAJECTORY_FIELDS:
        parts.append(f"{name}={getattr(config, name)!r}")
    digest = hashlib.blake2b("|".join(parts).encode(), digest_size=16)
    return digest.hexdigest()


# ----------------------------------------------------------------------
# Atomic, checksummed JSON files
# ----------------------------------------------------------------------
def _checksum(data: dict[str, Any]) -> str:
    canonical = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(canonical.encode(), digest_size=16).hexdigest()


def atomic_write_json(path: str | Path, kind: str, data: dict[str, Any]) -> int:
    """Write ``data`` to ``path`` atomically; return the bytes written.

    The envelope carries a kind tag, the format version and a BLAKE2b
    checksum of the canonical payload, so readers can reject both torn
    writes (unparseable JSON) and silent corruption (checksum drift).
    The temp file lives in the destination directory, is flushed and
    fsync'd, then atomically renamed — on POSIX either the old file or
    the complete new file exists, never a mix.
    """
    path = Path(path)
    envelope = {
        "kind": kind,
        "version": CHECKPOINT_VERSION,
        "checksum": _checksum(data),
        "data": data,
    }
    blob = json.dumps(envelope, sort_keys=True).encode()
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return len(blob)


def read_checked_json(path: str | Path, kind: str) -> dict[str, Any]:
    """Load and validate an envelope written by :func:`atomic_write_json`.

    Raises :class:`~repro.errors.CheckpointError` on missing file,
    unparseable JSON, wrong kind, version skew, or checksum mismatch.
    """
    path = Path(path)
    try:
        envelope = json.loads(path.read_text())
    except FileNotFoundError:
        raise CheckpointError(f"checkpoint file not found: {path}") from None
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from None
    if not isinstance(envelope, dict) or envelope.get("kind") != kind:
        raise CheckpointError(
            f"{path} is not a {kind!r} file (kind={envelope.get('kind')!r})"
            if isinstance(envelope, dict)
            else f"{path} is not a checkpoint envelope"
        )
    if envelope.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path} has format version {envelope.get('version')}, "
            f"this build reads version {CHECKPOINT_VERSION}"
        )
    data = envelope.get("data")
    if not isinstance(data, dict) or envelope.get("checksum") != _checksum(data):
        raise CheckpointError(f"{path} failed its integrity checksum")
    return data


# ----------------------------------------------------------------------
# The run checkpoint record
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunCheckpoint:
    """Complete NSGA trajectory state at one generation boundary.

    Attributes
    ----------
    algorithm:
        Engine label (``"nsga3"``...), part of the trajectory identity.
    fingerprint:
        :class:`~repro.engine.CompiledProblem` fingerprint of the
        instance the run optimizes; resuming against a mutated scenario
        is rejected through this field.
    config_key:
        :func:`trajectory_key` of the run's configuration.
    generation, evaluations, elapsed:
        Loop counters and accumulated wall-clock seconds at the
        boundary.
    genomes, objectives, violations:
        The population's struct-of-arrays state.
    rng_state:
        Raw ``numpy`` bit-generator state of the run's generator.
    stalled, best_violations, best_aggregate:
        Stall-detector state (consecutive non-improving generations and
        the incumbent it compares against).
    repair_state:
        Runtime counters of the constraint handler's repairer — for the
        tabu repair, the parallel-fan-out batch counter that addresses
        per-individual RNG streams — or ``None`` for stateless handlers.
    history:
        Per-generation stats dictionaries when history tracking is on.
    window_index:
        Scheduler window the run belongs to, when driven by
        :class:`~repro.scheduler.window.TimeWindowScheduler`.
    """

    algorithm: str
    fingerprint: str
    config_key: str
    generation: int
    evaluations: int
    elapsed: float
    genomes: np.ndarray
    objectives: np.ndarray
    violations: np.ndarray
    rng_state: dict[str, Any]
    stalled: int
    best_violations: int
    best_aggregate: float
    repair_state: dict[str, Any] | None = None
    history: tuple[dict[str, Any], ...] = ()
    window_index: int | None = None

    def to_payload(self) -> dict[str, Any]:
        """The JSON-safe dictionary form (inverse of :meth:`from_payload`)."""
        return {
            "algorithm": self.algorithm,
            "fingerprint": self.fingerprint,
            "config_key": self.config_key,
            "generation": int(self.generation),
            "evaluations": int(self.evaluations),
            "elapsed": float(self.elapsed),
            "genomes": np.asarray(self.genomes, dtype=np.int64).tolist(),
            "objectives": np.asarray(self.objectives, dtype=np.float64).tolist(),
            "violations": np.asarray(self.violations, dtype=np.int64).tolist(),
            "rng_state": self.rng_state,
            "stalled": int(self.stalled),
            "best_violations": int(self.best_violations),
            "best_aggregate": float(self.best_aggregate),
            "repair_state": self.repair_state,
            "history": list(self.history),
            "window_index": self.window_index,
        }

    @classmethod
    def from_payload(cls, data: dict[str, Any]) -> "RunCheckpoint":
        """Rebuild a checkpoint from its payload dictionary."""
        try:
            return cls(
                algorithm=data["algorithm"],
                fingerprint=data["fingerprint"],
                config_key=data["config_key"],
                generation=int(data["generation"]),
                evaluations=int(data["evaluations"]),
                elapsed=float(data["elapsed"]),
                genomes=np.asarray(data["genomes"], dtype=np.int64),
                objectives=np.asarray(data["objectives"], dtype=np.float64),
                violations=np.asarray(data["violations"], dtype=np.int64),
                rng_state=data["rng_state"],
                stalled=int(data["stalled"]),
                best_violations=int(data["best_violations"]),
                best_aggregate=float(data["best_aggregate"]),
                repair_state=data.get("repair_state"),
                history=tuple(data.get("history", ())),
                window_index=data.get("window_index"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed checkpoint payload: {exc}") from None


# ----------------------------------------------------------------------
# The on-disk store
# ----------------------------------------------------------------------
class CheckpointManager:
    """Versioned checkpoint directory with atomic writes and pruning.

    Parameters
    ----------
    directory:
        Where checkpoint files live; created on construction.
    retain:
        Checkpoints kept per (fingerprint, config) trajectory.  Older
        boundaries are deleted after each successful write, so disk use
        is bounded while the newest valid checkpoint always survives a
        torn write of its successor.

    Attributes
    ----------
    window_index:
        Mutable context stamp: a scheduler sets this before delegating
        to an allocator so EA checkpoints record which window they
        belong to.
    """

    _RUN_KIND = "run_checkpoint"

    def __init__(self, directory: str | Path, retain: int = 3) -> None:
        if retain < 1:
            raise ValidationError(f"retain must be >= 1, got {retain}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.retain = int(retain)
        self.window_index: int | None = None

    # ------------------------------------------------------------------
    def _trajectory_tag(self, fingerprint: str, config_key: str) -> str:
        return f"{fingerprint[:12]}-{config_key[:8]}"

    def path_for(self, checkpoint: RunCheckpoint) -> Path:
        """Final file name of ``checkpoint`` inside the directory."""
        tag = self._trajectory_tag(checkpoint.fingerprint, checkpoint.config_key)
        return self.directory / f"ckpt-{tag}-g{checkpoint.generation:06d}.json"

    # ------------------------------------------------------------------
    def save(self, checkpoint: RunCheckpoint) -> Path:
        """Atomically persist one checkpoint and prune old boundaries."""
        if self.window_index is not None and checkpoint.window_index is None:
            checkpoint = replace(checkpoint, window_index=self.window_index)
        path = self.path_for(checkpoint)
        stopwatch = Stopwatch().start()
        size = atomic_write_json(path, self._RUN_KIND, checkpoint.to_payload())
        stopwatch.stop()
        registry = get_registry()
        registry.count("runtime.checkpoint.writes")
        registry.count("runtime.checkpoint.bytes", size)
        registry.observe("runtime.checkpoint.write_seconds", stopwatch.elapsed)
        self._prune(checkpoint.fingerprint, checkpoint.config_key)
        return path

    def _prune(self, fingerprint: str, config_key: str) -> None:
        kept = self._trajectory_files(fingerprint, config_key)
        for path in kept[: -self.retain]:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - already gone / permissions
                continue
            get_registry().count("runtime.checkpoint.pruned")

    def _trajectory_files(self, fingerprint: str, config_key: str) -> list[Path]:
        tag = self._trajectory_tag(fingerprint, config_key)
        return sorted(self.directory.glob(f"ckpt-{tag}-g*.json"))

    # ------------------------------------------------------------------
    def load(self, path: str | Path) -> RunCheckpoint:
        """Read one checkpoint file, verifying envelope and checksum."""
        stopwatch = Stopwatch().start()
        checkpoint = RunCheckpoint.from_payload(
            read_checked_json(path, self._RUN_KIND)
        )
        stopwatch.stop()
        registry = get_registry()
        registry.count("runtime.checkpoint.restores")
        registry.observe("runtime.checkpoint.restore_seconds", stopwatch.elapsed)
        return checkpoint

    def latest(
        self, fingerprint: str, config_key: str
    ) -> RunCheckpoint | None:
        """The newest *valid* checkpoint of one trajectory, if any.

        Files that fail to parse or fail their checksum (torn writes of
        a dying process) are skipped — counted as
        ``runtime.checkpoint.invalid`` — and the scan falls back to the
        next-older boundary, which atomic replacement guarantees is
        intact.
        """
        for path in reversed(self._trajectory_files(fingerprint, config_key)):
            try:
                checkpoint = self.load(path)
            except CheckpointError:
                get_registry().count("runtime.checkpoint.invalid")
                continue
            if (
                checkpoint.fingerprint == fingerprint
                and checkpoint.config_key == config_key
            ):
                return checkpoint
        return None

    # ------------------------------------------------------------------
    # Generic named states (scheduler snapshots, campaign manifests)
    # ------------------------------------------------------------------
    def save_state(self, name: str, kind: str, data: dict[str, Any]) -> Path:
        """Atomically persist an arbitrary named payload (same envelope)."""
        path = self.directory / f"{name}.json"
        size = atomic_write_json(path, kind, data)
        registry = get_registry()
        registry.count("runtime.checkpoint.writes")
        registry.count("runtime.checkpoint.bytes", size)
        return path

    def load_state(self, name: str, kind: str) -> dict[str, Any]:
        """Load a payload written by :meth:`save_state` (checked)."""
        data = read_checked_json(self.directory / f"{name}.json", kind)
        get_registry().count("runtime.checkpoint.restores")
        return data
