"""NSGA-II (Deb, Pratap, Agarwal, Meyarivan 2002).

Mating selection is the crowded binary tournament; the partial last
front of environmental selection is split by crowding distance.
"""

from __future__ import annotations

import numpy as np

from repro.ea.crowding import crowding_distance
from repro.ea.nsga_base import NSGABase
from repro.ea.operators.selection import binary_tournament
from repro.ea.population import Population
from repro.ea.sorting import fast_non_dominated_sort
from repro.types import FloatArray, IntArray

__all__ = ["NSGA2"]


class NSGA2(NSGABase):
    """The unmodified NSGA-II baseline (or constrained, per handler)."""

    algorithm_name = "nsga2"

    def _select_parents(
        self,
        population: Population,
        effective_objectives: FloatArray,
        rng: np.random.Generator,
    ) -> IntArray:
        ranks = fast_non_dominated_sort(effective_objectives)
        crowding = np.zeros(len(population))
        for front_id in range(int(ranks.max()) + 1):
            members = np.flatnonzero(ranks == front_id)
            crowding[members] = crowding_distance(
                effective_objectives[members]
            )
        tiers = (
            np.where(population.violations == 0, 0, 1 + population.violations)
            if self.handler.uses_feasibility_tiers
            else None
        )
        return binary_tournament(
            ranks,
            crowding,
            n_parents=self.config.population_size,
            tiers=tiers,
            seed=rng,
        )

    def _split_last_front(
        self,
        effective_objectives: FloatArray,
        confirmed: IntArray,
        last_front: IntArray,
        n_select: int,
        rng: np.random.Generator,
    ) -> IntArray:
        distances = crowding_distance(effective_objectives[last_front])
        order = np.argsort(-distances, kind="stable")
        return last_front[order[:n_select]]
