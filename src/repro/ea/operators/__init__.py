"""Genetic variation operators.

The paper uses "SBX and PM standard" — simulated binary crossover and
polynomial mutation — on integer server-id genomes; the real-coded
operators run in continuous space and children are rounded and clipped
back into ``[0, m)``.  A discrete pair (uniform crossover + random-reset
mutation) is provided for the operator ablation study.
"""

from repro.ea.operators.sbx import sbx_crossover
from repro.ea.operators.polynomial import polynomial_mutation
from repro.ea.operators.discrete import uniform_crossover, random_reset_mutation
from repro.ea.operators.group_aware import group_block_crossover
from repro.ea.operators.selection import binary_tournament

__all__ = [
    "sbx_crossover",
    "polynomial_mutation",
    "uniform_crossover",
    "random_reset_mutation",
    "binary_tournament",
    "group_block_crossover",
]
