"""Simulated binary crossover (Deb & Agrawal 1995), integer-adapted.

SBX mimics single-point binary crossover in continuous space: children
are spread around the parents with a density controlled by the
distribution index eta (children concentrate near parents as eta
grows).  The paper applies it to server-id genomes ("we use SBX and PM
standard"), so children are rounded to the nearest integer and clipped
into ``[0, m)``.

The whole parent population is crossed in one vectorized pass: pair
(2i, 2i+1), draw per-gene spread factors, blend, round, clip.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.types import IntArray, SeedLike
from repro.utils.rng import as_generator

__all__ = ["sbx_crossover"]


def _spread_factor(u: np.ndarray, eta: float) -> np.ndarray:
    """The SBX beta distribution sample for uniform draws ``u``."""
    beta = np.empty_like(u)
    low = u <= 0.5
    beta[low] = (2.0 * u[low]) ** (1.0 / (eta + 1.0))
    beta[~low] = (1.0 / (2.0 * (1.0 - u[~low]))) ** (1.0 / (eta + 1.0))
    return beta


def sbx_crossover(
    parents: IntArray,
    n_servers: int,
    rate: float = 0.70,
    eta: float = 15.0,
    seed: SeedLike = None,
) -> IntArray:
    """Cross consecutive parent pairs, returning an offspring matrix.

    Parameters
    ----------
    parents:
        (pop, n) genome matrix; pop must be even.  Pair i is rows
        (2i, 2i+1).
    n_servers:
        Gene upper bound m (exclusive).
    rate:
        Per-pair crossover probability (Table III: 0.70).  Pairs that
        skip crossover pass through unchanged.
    eta:
        Distribution index (Table III: 15).
    """
    parents = np.asarray(parents, dtype=np.int64)
    if parents.ndim != 2:
        raise ValidationError(f"parents must be 2-D, got {parents.shape}")
    pop, n = parents.shape
    if pop % 2:
        raise ValidationError(f"parent count must be even, got {pop}")
    if not (0.0 <= rate <= 1.0):
        raise ValidationError(f"rate must lie in [0, 1], got {rate}")
    if n_servers < 1:
        raise ValidationError(f"n_servers must be >= 1, got {n_servers}")
    rng = as_generator(seed)

    p1 = parents[0::2].astype(np.float64)
    p2 = parents[1::2].astype(np.float64)
    pairs = pop // 2

    u = rng.random((pairs, n))
    beta = _spread_factor(u, eta)
    c1 = 0.5 * ((1.0 + beta) * p1 + (1.0 - beta) * p2)
    c2 = 0.5 * ((1.0 - beta) * p1 + (1.0 + beta) * p2)

    # Per-gene 50% swap keeps SBX symmetric, as in the reference
    # implementation.
    swap = rng.random((pairs, n)) < 0.5
    c1s = np.where(swap, c2, c1)
    c2s = np.where(swap, c1, c2)

    cross_mask = (rng.random(pairs) < rate)[:, None]
    child1 = np.where(cross_mask, c1s, p1)
    child2 = np.where(cross_mask, c2s, p2)

    offspring = np.empty_like(parents, dtype=np.float64)
    offspring[0::2] = child1
    offspring[1::2] = child2
    rounded = np.rint(offspring).astype(np.int64)
    np.clip(rounded, 0, n_servers - 1, out=rounded)
    return rounded
