"""Group-aware crossover: exchange placement-rule groups atomically.

SBX and uniform crossover treat genes independently, so a crossover
point routinely splits a SAME_SERVER group between parents and
manufactures violations the repair must then fix.  This operator
treats each placement-rule group as one *super-gene*: children inherit
a whole group's placement from a single parent, preserving whatever
rule-consistency the parents had.  Genes outside any group cross over
uniformly as usual.

An extension operator (the paper uses plain SBX); the operator
ablation bench can quantify how much repair work it saves.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.model.request import Request
from repro.types import IntArray, SeedLike
from repro.utils.rng import as_generator

__all__ = ["group_block_crossover"]


def group_block_crossover(
    parents: IntArray,
    request: Request,
    rate: float = 0.70,
    seed: SeedLike = None,
) -> IntArray:
    """Cross consecutive parent pairs, keeping rule groups atomic.

    Parameters
    ----------
    parents:
        (pop, n) genome matrix; pop even, n == request.n.
    request:
        Supplies the placement groups defining the super-genes.
    rate:
        Per-pair crossover probability (pass-through otherwise).
    """
    parents = np.asarray(parents, dtype=np.int64)
    if parents.ndim != 2:
        raise ValidationError(f"parents must be 2-D, got {parents.shape}")
    pop, n = parents.shape
    if pop % 2:
        raise ValidationError(f"parent count must be even, got {pop}")
    if n != request.n:
        raise ValidationError(
            f"genome length {n} != request size {request.n}"
        )
    if not (0.0 <= rate <= 1.0):
        raise ValidationError(f"rate must lie in [0, 1], got {rate}")
    rng = as_generator(seed)

    # Partition gene indices into super-genes: one block per group
    # (first-come ownership for overlapping groups) + singletons.
    owner = np.full(n, -1, dtype=np.int64)
    blocks: list[np.ndarray] = []
    for group in request.groups:
        members = np.asarray(
            [k for k in group.members if owner[k] < 0], dtype=np.int64
        )
        if members.size == 0:
            continue
        owner[members] = len(blocks)
        blocks.append(members)
    singles = np.flatnonzero(owner < 0)
    for k in singles:
        blocks.append(np.asarray([k], dtype=np.int64))

    pairs = pop // 2
    offspring = parents.copy()
    cross_pair = rng.random(pairs) < rate
    for pair in np.flatnonzero(cross_pair):
        a, b = 2 * pair, 2 * pair + 1
        take_other = rng.random(len(blocks)) < 0.5
        for block_id in np.flatnonzero(take_other):
            idx = blocks[block_id]
            offspring[a, idx] = parents[b, idx]
            offspring[b, idx] = parents[a, idx]
    return offspring
