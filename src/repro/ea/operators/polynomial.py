"""Polynomial mutation (Deb & Goyal 1996), integer-adapted.

Each gene mutates independently with probability ``rate``; the
perturbation follows the polynomial distribution with index eta over
the full gene range ``[0, m-1]``, then rounds and clips back to a valid
server id.  With the Table III settings (rate 0.20, eta 15) mutations
are frequent but mostly local.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.types import IntArray, SeedLike
from repro.utils.rng import as_generator

__all__ = ["polynomial_mutation"]


def polynomial_mutation(
    genomes: IntArray,
    n_servers: int,
    rate: float = 0.20,
    eta: float = 15.0,
    seed: SeedLike = None,
) -> IntArray:
    """Mutate a genome matrix in a single vectorized pass.

    Parameters
    ----------
    genomes:
        (pop, n) int matrix (not modified; a new matrix is returned).
    n_servers:
        Gene upper bound m (exclusive).
    rate:
        Per-gene mutation probability (Table III: 0.20).
    eta:
        Distribution index (Table III: 15).
    """
    genomes = np.asarray(genomes, dtype=np.int64)
    if genomes.ndim != 2:
        raise ValidationError(f"genomes must be 2-D, got {genomes.shape}")
    if not (0.0 <= rate <= 1.0):
        raise ValidationError(f"rate must lie in [0, 1], got {rate}")
    if n_servers < 1:
        raise ValidationError(f"n_servers must be >= 1, got {n_servers}")
    rng = as_generator(seed)

    if n_servers == 1:
        return genomes.copy()

    lo, hi = 0.0, float(n_servers - 1)
    span = hi - lo
    x = genomes.astype(np.float64)
    mutate = rng.random(genomes.shape) < rate
    u = rng.random(genomes.shape)

    # Standard bounded polynomial mutation (Deb's delta-q formulation).
    delta1 = (x - lo) / span
    delta2 = (hi - x) / span
    mut_pow = 1.0 / (eta + 1.0)
    with np.errstate(invalid="ignore"):
        below = u < 0.5
        xy = np.where(below, 1.0 - delta1, 1.0 - delta2)
        val = np.where(
            below,
            2.0 * u + (1.0 - 2.0 * u) * xy ** (eta + 1.0),
            2.0 * (1.0 - u) + 2.0 * (u - 0.5) * xy ** (eta + 1.0),
        )
        deltaq = np.where(below, val**mut_pow - 1.0, 1.0 - val**mut_pow)

    mutated = x + deltaq * span
    out = np.where(mutate, mutated, x)
    rounded = np.rint(out).astype(np.int64)
    np.clip(rounded, 0, n_servers - 1, out=rounded)
    return rounded
