"""Discrete variation operators for the operator-ablation study.

SBX/PM treat server ids as ordered quantities, which only makes sense
because the scenario generators lay servers out so that numerically
close ids tend to share a datacenter.  The discrete pair here — uniform
crossover and random-reset mutation — ignores gene ordering entirely
and is the natural alternative for categorical genomes; the ablation
bench compares the two families.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.types import IntArray, SeedLike
from repro.utils.rng import as_generator

__all__ = ["uniform_crossover", "random_reset_mutation"]


def uniform_crossover(
    parents: IntArray,
    rate: float = 0.70,
    seed: SeedLike = None,
) -> IntArray:
    """Per-gene 50/50 exchange between consecutive parent pairs.

    Pairs skip crossover with probability ``1 - rate`` (pass-through),
    mirroring the SBX rate semantics so the two are swappable.
    """
    parents = np.asarray(parents, dtype=np.int64)
    if parents.ndim != 2:
        raise ValidationError(f"parents must be 2-D, got {parents.shape}")
    pop, n = parents.shape
    if pop % 2:
        raise ValidationError(f"parent count must be even, got {pop}")
    if not (0.0 <= rate <= 1.0):
        raise ValidationError(f"rate must lie in [0, 1], got {rate}")
    rng = as_generator(seed)

    p1 = parents[0::2]
    p2 = parents[1::2]
    pairs = pop // 2
    exchange = rng.random((pairs, n)) < 0.5
    cross = (rng.random(pairs) < rate)[:, None]
    take_other = exchange & cross
    c1 = np.where(take_other, p2, p1)
    c2 = np.where(take_other, p1, p2)
    offspring = np.empty_like(parents)
    offspring[0::2] = c1
    offspring[1::2] = c2
    return offspring


def random_reset_mutation(
    genomes: IntArray,
    n_servers: int,
    rate: float = 0.20,
    seed: SeedLike = None,
) -> IntArray:
    """Each gene is redrawn uniformly from [0, m) with probability ``rate``."""
    genomes = np.asarray(genomes, dtype=np.int64)
    if genomes.ndim != 2:
        raise ValidationError(f"genomes must be 2-D, got {genomes.shape}")
    if not (0.0 <= rate <= 1.0):
        raise ValidationError(f"rate must lie in [0, 1], got {rate}")
    if n_servers < 1:
        raise ValidationError(f"n_servers must be >= 1, got {n_servers}")
    rng = as_generator(seed)
    mutate = rng.random(genomes.shape) < rate
    random_genes = rng.integers(0, n_servers, size=genomes.shape, dtype=np.int64)
    return np.where(mutate, random_genes, genomes)
