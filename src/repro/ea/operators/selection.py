"""Mating selection.

NSGA-II uses the crowded binary tournament: prefer the lower
(feasibility tier, Pareto rank); break ties with larger crowding
distance.  NSGA-III's reference implementation selects parents at
random (niching pressure lives entirely in survival selection), so it
calls :func:`binary_tournament` with ``crowding=None`` and uniform
ranks only when constraint tiers matter.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.types import FloatArray, IntArray, SeedLike
from repro.utils.rng import as_generator

__all__ = ["binary_tournament", "random_mating_pool"]


def binary_tournament(
    ranks: IntArray,
    crowding: FloatArray | None,
    n_parents: int,
    tiers: IntArray | None = None,
    seed: SeedLike = None,
) -> IntArray:
    """Indices of ``n_parents`` winners of independent binary tournaments.

    Parameters
    ----------
    ranks:
        (pop,) Pareto front index per individual (lower is better).
    crowding:
        (pop,) crowding distances (larger is better) or None to skip
        the diversity tiebreak.
    n_parents:
        How many winners to draw (with replacement across tournaments).
    tiers:
        Optional feasibility tiers (0 = feasible); compared before
        ranks when given.
    """
    ranks = np.asarray(ranks, dtype=np.int64)
    pop = ranks.shape[0]
    if pop == 0:
        raise ValidationError("cannot select from an empty population")
    if n_parents < 1:
        raise ValidationError(f"n_parents must be >= 1, got {n_parents}")
    rng = as_generator(seed)

    a = rng.integers(0, pop, size=n_parents)
    b = rng.integers(0, pop, size=n_parents)

    if tiers is not None:
        tiers = np.asarray(tiers, dtype=np.int64)
        a_better = tiers[a] < tiers[b]
        b_better = tiers[b] < tiers[a]
    else:
        a_better = np.zeros(n_parents, dtype=bool)
        b_better = np.zeros(n_parents, dtype=bool)

    undecided = ~(a_better | b_better)
    a_better |= undecided & (ranks[a] < ranks[b])
    b_better |= undecided & (ranks[b] < ranks[a])

    undecided = ~(a_better | b_better)
    if crowding is not None and undecided.any():
        crowding = np.asarray(crowding, dtype=np.float64)
        a_better |= undecided & (crowding[a] > crowding[b])
        b_better |= undecided & (crowding[b] > crowding[a])

    undecided = ~(a_better | b_better)
    coin = rng.random(n_parents) < 0.5
    winners = np.where(a_better | (undecided & coin), a, b)
    return winners.astype(np.int64)


def random_mating_pool(pop: int, n_parents: int, seed: SeedLike = None) -> IntArray:
    """Uniformly random parent indices (NSGA-III mating selection)."""
    if pop < 1:
        raise ValidationError("cannot select from an empty population")
    if n_parents < 1:
        raise ValidationError(f"n_parents must be >= 1, got {n_parents}")
    rng = as_generator(seed)
    return rng.integers(0, pop, size=n_parents, dtype=np.int64)
