"""NSGA-III reference-point machinery (Deb & Jain 2014).

* :func:`das_dennis_points` — the structured simplex lattice of
  reference directions.  For k objectives and p divisions it yields
  C(k + p - 1, p) points; 3 objectives with 12 divisions → 91 points,
  pairing naturally with the paper's population of 100.
* :class:`ReferencePointNiching` — the NSGA-III environmental-selection
  step: adaptive normalization of the merged population, association of
  each individual with its nearest reference direction (perpendicular
  distance), and niche-preserving selection from the partial front.

Both the lattice and the niching operator built from it depend only on
``(n_objectives, divisions)``, so they are memoized: every NSGA-III /
U-NSGA-III construction in a sweep shares one set of points and one
:class:`ReferencePointNiching` instead of rebuilding the recursion per
run (the operator keeps no per-run state — the selection RNG is passed
per call).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.errors import ValidationError
from repro.types import FloatArray, IntArray, SeedLike
from repro.utils.rng import as_generator

__all__ = ["das_dennis_points", "niching_for", "ReferencePointNiching"]


@lru_cache(maxsize=64)
def _das_dennis_cached(n_objectives: int, divisions: int) -> FloatArray:
    points: list[list[float]] = []
    partial = np.zeros(n_objectives)

    def recurse(index: int, remaining: int) -> None:
        if index == n_objectives - 1:
            partial[index] = remaining / divisions
            points.append(partial.copy().tolist())
            return
        for ticks in range(remaining + 1):
            partial[index] = ticks / divisions
            recurse(index + 1, remaining - ticks)

    recurse(0, divisions)
    lattice = np.asarray(points, dtype=np.float64)
    lattice.flags.writeable = False  # cached: shared by every caller
    return lattice


def das_dennis_points(n_objectives: int, divisions: int) -> FloatArray:
    """Structured reference points on the unit simplex.

    Returns an array of shape (n_points, n_objectives) whose rows are
    nonnegative and sum to 1.  The lattice is memoized by
    ``(n_objectives, divisions)`` and returned *read-only*; callers
    needing a private mutable copy must ``.copy()`` it.
    """
    if n_objectives < 2:
        raise ValidationError(f"need >= 2 objectives, got {n_objectives}")
    if divisions < 1:
        raise ValidationError(f"need >= 1 division, got {divisions}")
    return _das_dennis_cached(int(n_objectives), int(divisions))


@lru_cache(maxsize=64)
def niching_for(n_objectives: int, divisions: int) -> "ReferencePointNiching":
    """The shared :class:`ReferencePointNiching` for one lattice shape.

    Safe to share across runs and algorithms: the operator is immutable
    after construction (normalize/associate/select are pure functions
    of their arguments plus the fixed directions).
    """
    return ReferencePointNiching(das_dennis_points(n_objectives, divisions))


class ReferencePointNiching:
    """The NSGA-III niche-preserving selection operator.

    Parameters
    ----------
    reference_points:
        (r, k) simplex points from :func:`das_dennis_points`.
    """

    def __init__(self, reference_points: FloatArray) -> None:
        ref = np.asarray(reference_points, dtype=np.float64)
        if ref.ndim != 2:
            raise ValidationError("reference points must be 2-D")
        norms = np.linalg.norm(ref, axis=1)
        if np.any(norms <= 0):
            raise ValidationError("reference points must be nonzero")
        self.reference_points = ref
        self._directions = ref / norms[:, None]

    @property
    def n_points(self) -> int:
        """Number of reference directions."""
        return self.reference_points.shape[0]

    # ------------------------------------------------------------------
    @staticmethod
    def normalize(objectives: FloatArray) -> FloatArray:
        """Adaptive normalization to [0, ~1] per objective.

        The full achievement-scalarizing extreme-point construction of
        the original paper degenerates on the small, noisy fronts seen
        here; ideal/nadir min-max normalization is the standard robust
        fallback and preserves the niching behaviour.
        """
        objectives = np.asarray(objectives, dtype=np.float64)
        ideal = objectives.min(axis=0)
        nadir = objectives.max(axis=0)
        span = np.where(nadir - ideal > 1e-12, nadir - ideal, 1.0)
        return (objectives - ideal) / span

    def associate(self, normalized: FloatArray) -> tuple[IntArray, FloatArray]:
        """Nearest reference direction and perpendicular distance per point."""
        # Projection of each point onto each unit direction.
        proj = normalized @ self._directions.T  # (pop, r)
        # Squared perpendicular distance: |f|^2 - proj^2.
        sq_norm = (normalized**2).sum(axis=1, keepdims=True)
        perp_sq = np.maximum(0.0, sq_norm - proj**2)
        nearest = perp_sq.argmin(axis=1).astype(np.int64)
        distance = np.sqrt(perp_sq[np.arange(len(nearest)), nearest])
        return nearest, distance

    # ------------------------------------------------------------------
    def select(
        self,
        objectives: FloatArray,
        confirmed: IntArray,
        partial_front: IntArray,
        n_select: int,
        seed: SeedLike = None,
    ) -> IntArray:
        """Pick ``n_select`` members of ``partial_front`` by niching.

        Parameters
        ----------
        objectives:
            Objectives of the merged population (confirmed + partial).
        confirmed:
            Indices already chosen (fronts that fit entirely).
        partial_front:
            Indices of the front that must be split.
        n_select:
            How many of ``partial_front`` to keep.

        Returns
        -------
        Indices (subset of ``partial_front``) of the selected members.
        """
        confirmed = np.asarray(confirmed, dtype=np.int64)
        partial_front = np.asarray(partial_front, dtype=np.int64)
        if n_select < 0 or n_select > partial_front.size:
            raise ValidationError(
                f"cannot select {n_select} from front of {partial_front.size}"
            )
        if n_select == 0:
            return np.empty(0, dtype=np.int64)
        if n_select == partial_front.size:
            return partial_front.copy()

        rng = as_generator(seed)
        pool = np.concatenate([confirmed, partial_front])
        normalized = self.normalize(objectives[pool])
        nearest, distance = self.associate(normalized)

        n_confirmed = confirmed.size
        niche_count = np.bincount(nearest[:n_confirmed], minlength=self.n_points)
        cand_niche = nearest[n_confirmed:]
        cand_dist = distance[n_confirmed:]
        available = np.ones(partial_front.size, dtype=bool)
        chosen: list[int] = []

        while len(chosen) < n_select:
            # Niches that still have available candidates.
            live = np.unique(cand_niche[available])
            counts = niche_count[live]
            minimal = live[counts == counts.min()]
            niche = int(rng.choice(minimal))
            members = np.flatnonzero(available & (cand_niche == niche))
            if niche_count[niche] == 0:
                # Empty niche: take the member closest to the direction.
                pick = members[np.argmin(cand_dist[members])]
            else:
                pick = int(rng.choice(members))
            chosen.append(int(partial_front[pick]))
            available[pick] = False
            niche_count[niche] += 1

        return np.asarray(chosen, dtype=np.int64)
