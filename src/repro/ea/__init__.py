"""Evolutionary algorithm layer: NSGA-II, NSGA-III and their machinery.

Everything is implemented from scratch: fast nondominated sorting,
crowding distance (NSGA-II), Das-Dennis reference points with
normalization and niching (NSGA-III), SBX crossover and polynomial
mutation adapted to the integer server-id genome, and the four
constraint-handling strategies discussed in Section III of the paper.

Defaults follow Table III: population 100, 10 000 evaluations, SBX
rate 0.70 / distribution index 15, PM rate 0.20 / distribution index 15.
"""

from repro.ea.config import NSGAConfig
from repro.ea.population import Population
from repro.ea.encoding import random_population, greedy_seed
from repro.ea.sorting import fast_non_dominated_sort, constrained_sort_keys
from repro.ea.crowding import crowding_distance
from repro.ea.reference_points import das_dennis_points, ReferencePointNiching
from repro.ea.nsga2 import NSGA2
from repro.ea.nsga3 import NSGA3
from repro.ea.unsga3 import UNSGA3
from repro.ea.result import EvolutionResult, GenerationStats
from repro.ea.constraint_handling import (
    ConstraintHandler,
    NoHandling,
    ExclusionHandling,
    PenaltyHandling,
    RepairHandling,
)
from repro.ea.hypervolume import hypervolume, reference_point
from repro.ea.archive import ParetoArchive

__all__ = [
    "NSGAConfig",
    "Population",
    "random_population",
    "greedy_seed",
    "fast_non_dominated_sort",
    "constrained_sort_keys",
    "crowding_distance",
    "das_dennis_points",
    "ReferencePointNiching",
    "NSGA2",
    "NSGA3",
    "UNSGA3",
    "EvolutionResult",
    "GenerationStats",
    "ConstraintHandler",
    "NoHandling",
    "ExclusionHandling",
    "PenaltyHandling",
    "RepairHandling",
    "hypervolume",
    "reference_point",
    "ParetoArchive",
]
