"""Shared NSGA engine: the generational loop of the paper's Figure 3.

Initialization → evaluation (with optional repair) → mating selection →
SBX crossover → PM mutation → evaluation → environmental selection,
until the evaluation budget (Table III: 10 000) or the time limit is
exhausted.  :class:`NSGA2` and :class:`NSGA3` supply the two pieces
that differ: mating selection and the splitting of the last partial
front (crowding distance vs. reference-point niching).
"""

from __future__ import annotations

import abc
import dataclasses
import time

import numpy as np

from repro.ea.config import NSGAConfig
from repro.ea.constraint_handling import ConstraintHandler, NoHandling
from repro.ea.encoding import random_population
from repro.ea.operators.polynomial import polynomial_mutation
from repro.ea.operators.sbx import sbx_crossover
from repro.ea.population import Population
from repro.ea.result import EvolutionResult, GenerationStats
from repro.ea.sorting import fast_non_dominated_sort
from repro.errors import CheckpointError
from repro.objectives.evaluator import PopulationEvaluator
from repro.runtime.checkpoint import CheckpointManager, RunCheckpoint, trajectory_key
from repro.runtime.signals import shutdown_requested
from repro.telemetry import GenerationCompleted, get_bus, get_registry, span
from repro.types import FloatArray, IntArray
from repro.utils.timers import Stopwatch

#: Default generations between snapshots when checkpointing is enabled
#: without an explicit ``checkpoint_every``.
DEFAULT_CHECKPOINT_EVERY = 10

__all__ = ["EngineRun", "NSGABase"]


class EngineRun:
    """One in-progress NSGA run, advanced generation by generation.

    Created by :meth:`NSGABase.start_run`.  Owns every piece of loop
    state the old monolithic ``run()`` kept in locals — population,
    RNG, stall counter, stopwatch, checkpoint bookkeeping — and exposes
    the anytime surface the portfolio racer needs: :meth:`step`,
    :meth:`best_genome` / :meth:`front` between any two steps, a
    deterministic :meth:`inject` for incumbent exchange, and
    :meth:`checkpoint_record` for composite snapshots.  Driving a run
    with ``while run.step(): pass`` then :meth:`result` is
    byte-identical to the blocking :meth:`NSGABase.run`, which now does
    exactly that.
    """

    def __init__(
        self,
        engine: "NSGABase",
        evaluator: PopulationEvaluator,
        initial_genomes: IntArray | None = None,
        *,
        checkpoint_manager: CheckpointManager | None = None,
        fingerprint: str = "",
        resume_from: RunCheckpoint | None = None,
    ) -> None:
        self.engine = engine
        self.evaluator = evaluator
        cfg = engine.config
        self.rng = np.random.default_rng(cfg.seed)
        self.n = evaluator.request.n
        self.m = evaluator.infrastructure.m

        manager = checkpoint_manager
        if manager is None and cfg.checkpoint_dir is not None:
            manager = CheckpointManager(cfg.checkpoint_dir)
        self.manager = manager
        self.checkpoint_every = cfg.checkpoint_every or DEFAULT_CHECKPOINT_EVERY
        self.fingerprint = fingerprint
        # The handler tag keeps algorithms sharing an engine (plain
        # NSGA-III vs the tabu/CP hybrids) from colliding in a shared
        # campaign directory.
        self.config_key = trajectory_key(
            cfg, f"{engine.algorithm_name}/{engine.handler.trajectory_tag()}"
        )
        if resume_from is None and manager is not None:
            resume_from = manager.latest(fingerprint, self.config_key)

        # Resolved once per run: with the default no-op bus the per-
        # generation telemetry below is a single boolean check.
        self._bus = get_bus()
        self._registry = get_registry()

        self.history: list[GenerationStats] = []
        self.resumed_from: int | None = None
        self.interrupted = False
        self._result: EvolutionResult | None = None
        self._exhausted = False

        if resume_from is not None:
            ckpt = engine._validate_checkpoint(
                resume_from, self.config_key, fingerprint, self.n
            )
            self.population = Population(
                ckpt.genomes.copy(), ckpt.objectives.copy(), ckpt.violations.copy()
            )
            self.rng.bit_generator.state = ckpt.rng_state
            self.generation = ckpt.generation
            self.evaluations = ckpt.evaluations
            self.stalled = ckpt.stalled
            self.best_seen = (ckpt.best_violations, ckpt.best_aggregate)
            engine.handler.restore_runtime_state(ckpt.repair_state)
            if engine.track_history:
                self.history = [GenerationStats(**h) for h in ckpt.history]
            self.resumed_from = ckpt.generation
            self.stopwatch = Stopwatch(elapsed=ckpt.elapsed).start()
            self._registry.count(
                "runtime.resume.runs", algorithm=engine.algorithm_name
            )
            if cfg.time_limit is not None:
                engine.handler.set_deadline(
                    time.perf_counter() + cfg.time_limit - ckpt.elapsed
                )
        else:
            self.stopwatch = Stopwatch().start()
            if cfg.time_limit is not None:
                engine.handler.set_deadline(time.perf_counter() + cfg.time_limit)
            self.evaluations = 0

            genomes = random_population(
                cfg.population_size, self.n, self.m, seed=self.rng
            )
            if initial_genomes is not None:
                seeds = np.asarray(initial_genomes, dtype=np.int64)
                if seeds.ndim == 1:
                    seeds = seeds[None, :]
                if seeds.shape[1] != self.n:
                    raise ValueError(
                        f"initial genomes have length {seeds.shape[1]}, "
                        f"instance needs {self.n}"
                    )
                count = min(seeds.shape[0], cfg.population_size)
                genomes[:count] = seeds[:count]
            genomes = engine.handler.prepare(genomes)
            result = evaluator.evaluate_population(genomes)
            self.evaluations += cfg.population_size
            self.population = Population(
                genomes, result.objectives, result.violations
            )

            self.generation = 0
            if engine.track_history:
                self.history.append(
                    engine._stats(self.generation, self.evaluations, self.population)
                )
            if self._bus.enabled:
                self._bus.emit(
                    engine._generation_event(
                        self.generation, self.evaluations, self.population
                    )
                )

            self.best_seen = self._incumbent(self.population)
            self.stalled = 0

        self._last_saved = (
            self.resumed_from if self.resumed_from is not None else -1
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _incumbent(pop: Population) -> tuple[int, float]:
        """(violations, aggregate) of the current single-solution pick —
        the quantity the stall detector watches."""
        idx = pop.best_feasible_index()
        if idx is None:
            idx = pop.least_violating_index()
        return int(pop.violations[idx]), float(pop.objectives[idx].sum())

    def _stop_reason(self) -> str | None:
        """Why the loop may not advance further, in the loop's own
        check order (budget, wall clock, stall) — ``None`` = keep going."""
        cfg = self.engine.config
        if self.evaluations + cfg.population_size > cfg.max_evaluations:
            return "budget"
        if cfg.time_limit is not None and self.stopwatch.elapsed >= cfg.time_limit:
            return "time"
        if (
            cfg.stall_generations is not None
            and self.stalled >= cfg.stall_generations
        ):
            return "stall"
        return None

    def _snapshot(self) -> None:
        if self.generation == self._last_saved:
            return
        self.manager.save(
            self.engine._build_checkpoint(
                fingerprint=self.fingerprint,
                config_key=self.config_key,
                generation=self.generation,
                evaluations=self.evaluations,
                elapsed=self.stopwatch.elapsed,
                population=self.population,
                rng=self.rng,
                stalled=self.stalled,
                best_seen=self.best_seen,
                history=self.history,
            )
        )
        self._last_saved = self.generation

    def _advance(self) -> None:
        """Exactly one generation — the body of the old ``run()`` loop."""
        engine = self.engine
        cfg = engine.config
        self.generation += 1

        with span(
            f"{engine.algorithm_name}.generation", generation=self.generation
        ):
            eff = engine.handler.effective_objectives(
                self.population.objectives, self.population.violations
            )
            parent_idx = engine._select_parents(self.population, eff, self.rng)
            parents = self.population.genomes[parent_idx]

            if cfg.repair_parents:
                # Fig. 4: parents violating user constraints are
                # treated by the repair before they reproduce.
                parents = engine.handler.prepare(parents)

            offspring = engine._variation(parents, self.m, self.rng)
            # "The repair process is launched whenever invalid
            # individuals are assessed" — repair before evaluation.
            offspring = engine.handler.prepare(offspring)

            off_result = self.evaluator.evaluate_population(offspring)
            self.evaluations += offspring.shape[0]
            off_pop = Population(
                offspring, off_result.objectives, off_result.violations
            )

            merged = Population.concatenate(self.population, off_pop)
            survivors = engine._environmental_selection(
                merged, cfg.population_size, self.rng
            )
            self.population = merged.take(survivors)

        if self._bus.enabled:
            self._bus.emit(
                engine._generation_event(
                    self.generation, self.evaluations, self.population
                )
            )

        current = self._incumbent(self.population)
        if current < self.best_seen:
            self.best_seen = current
            self.stalled = 0
        else:
            self.stalled += 1

        if engine.track_history:
            self.history.append(
                engine._stats(self.generation, self.evaluations, self.population)
            )

        if self.manager is not None and self.generation % self.checkpoint_every == 0:
            self._snapshot()

    # ------------------------------------------------------------------
    # Anytime surface
    # ------------------------------------------------------------------
    def step(self, generations: int = 1) -> bool:
        """Advance up to ``generations``; False = the run is over.

        Preserves the blocking loop's exact check order: budget, then
        wall clock, then stall, then cooperative shutdown (which
        snapshots the boundary before unwinding) — so interleaving
        steps with reads cannot change the trajectory.
        """
        if self._exhausted:
            return False
        for _ in range(int(generations)):
            if self._stop_reason() is not None:
                self._exhausted = True
                return False
            if self.manager is not None and shutdown_requested():
                # Graceful flush: persist the boundary we stand on and
                # unwind; the next start auto-resumes from here.
                self._snapshot()
                self.interrupted = True
                self._exhausted = True
                return False
            self._advance()
        return self._stop_reason() is None

    def best_genome(self) -> IntArray:
        """Current single-solution pick — valid between any two steps.

        Routed through the preference layer: the config's (or the
        process-wide active) ceteris-paribus order when one is set,
        else feasible-nearest-ideal; least violating as the infeasible
        fallback either way.
        """
        pop = self.population
        idx = pop.best_feasible_index(self.engine.preference_order())
        if idx is None:
            idx = pop.least_violating_index()
        return pop.genomes[idx].copy()

    def front(self) -> tuple[IntArray, FloatArray]:
        """(genomes, objectives) of the feasible nondominated set.

        Empty arrays when nothing is feasible yet — the incumbent pool
        only trades in proven placements.
        """
        from repro.utils.pareto import pareto_front_indices

        pop = self.population
        feasible = np.flatnonzero(pop.feasible_mask)
        if not feasible.size:
            return (
                np.empty((0, self.n), dtype=np.int64),
                np.empty((0, pop.objectives.shape[1])),
            )
        front_local = pareto_front_indices(pop.objectives[feasible])
        picked = feasible[front_local]
        return pop.genomes[picked].copy(), pop.objectives[picked].copy()

    def inject(
        self,
        genomes: IntArray,
        objectives: FloatArray,
        violations: IntArray,
    ) -> int:
        """Replace the worst population rows with pooled incumbents.

        Deterministic by construction — victims are picked by lexsort
        on (violations, aggregate) from the worst end, rows already
        present byte-for-byte are skipped, and no RNG is consumed — so
        exchange epochs at fixed boundaries keep whole-portfolio runs
        byte-reproducible per seed.  The pooled rows carry their own
        objectives/violations, so injection costs zero evaluations.
        Returns the number of rows actually replaced.
        """
        genomes = np.asarray(genomes, dtype=np.int64)
        if genomes.size == 0:
            return 0
        if genomes.ndim == 1:
            genomes = genomes[None, :]
        objectives = np.asarray(objectives, dtype=np.float64)
        if objectives.ndim == 1:
            objectives = objectives[None, :]
        violations = np.atleast_1d(np.asarray(violations, dtype=np.int64))

        pop = self.population
        # Worst-first victim order: most violating, ties by aggregate.
        order = np.lexsort(
            (pop.objectives.sum(axis=1), pop.violations)
        )[::-1]
        existing = {row.tobytes() for row in pop.genomes}
        new_genomes = pop.genomes.copy()
        new_objectives = pop.objectives.copy()
        new_violations = pop.violations.copy()
        replaced = 0
        for row, objs, viol in zip(genomes, objectives, violations):
            key = row.tobytes()
            if key in existing:
                continue
            if replaced >= order.size:
                break
            victim = int(order[replaced])
            new_genomes[victim] = row
            new_objectives[victim] = objs
            new_violations[victim] = int(viol)
            existing.add(key)
            replaced += 1
        if replaced:
            self.population = Population(
                new_genomes, new_objectives, new_violations
            )
        return replaced

    def set_deadline(self, deadline: float) -> None:
        """Propagate an absolute perf-counter deadline to inner loops."""
        self.engine.handler.set_deadline(deadline)

    def checkpoint_record(self) -> RunCheckpoint:
        """The run's current boundary state as a :class:`RunCheckpoint`
        (no manager required) — composite portfolio snapshots embed it."""
        return self.engine._build_checkpoint(
            fingerprint=self.fingerprint,
            config_key=self.config_key,
            generation=self.generation,
            evaluations=self.evaluations,
            elapsed=self.stopwatch.elapsed,
            population=self.population,
            rng=self.rng,
            stalled=self.stalled,
            best_seen=self.best_seen,
            history=self.history,
        )

    def result(self) -> EvolutionResult:
        """Freeze the run into an :class:`EvolutionResult` (idempotent)."""
        if self._result is None:
            self._exhausted = True
            self.stopwatch.stop()
            self._registry.count(
                "nsga.generations",
                self.generation,
                algorithm=self.engine.algorithm_name,
            )
            self._registry.count(
                "nsga.evaluations",
                self.evaluations,
                algorithm=self.engine.algorithm_name,
            )
            self._registry.observe(
                "nsga.run_seconds",
                self.stopwatch.elapsed,
                algorithm=self.engine.algorithm_name,
            )
            self._result = EvolutionResult(
                population=self.population,
                evaluations=self.evaluations,
                elapsed=self.stopwatch.elapsed,
                history=self.history,
                algorithm=self.engine.algorithm_name,
                resumed_from=self.resumed_from,
                interrupted=self.interrupted,
            )
        return self._result


class NSGABase(abc.ABC):
    """Template-method NSGA engine.

    Parameters
    ----------
    config:
        Hyper-parameters (defaults = Table III).
    handler:
        Constraint-handling strategy; default is the *unmodified*
        behaviour (constraints ignored), matching the paper's
        "unmodified NSGA-II / NSGA-III" baselines.
    track_history:
        Record per-generation :class:`GenerationStats`.
    """

    algorithm_name = "nsga"

    def __init__(
        self,
        config: NSGAConfig | None = None,
        handler: ConstraintHandler | None = None,
        track_history: bool = False,
    ) -> None:
        self.config = config or NSGAConfig()
        self.handler = handler or NoHandling()
        self.track_history = bool(track_history)

    def preference_order(self):
        """Parsed ``config.preference``, or ``None``.

        ``None`` lets the selection sites fall through to the process-
        wide active preference and, absent one, the paper's ideal-point
        pick (see :mod:`repro.market.preferences`).
        """
        if self.config.preference:
            from repro.market.preferences import parse_preference

            return parse_preference(self.config.preference)
        return None

    # ------------------------------------------------------------------
    # Subclass responsibilities
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _select_parents(
        self,
        population: Population,
        effective_objectives: FloatArray,
        rng: np.random.Generator,
    ) -> IntArray:
        """Indices of ``population_size`` parents for variation."""

    @abc.abstractmethod
    def _split_last_front(
        self,
        effective_objectives: FloatArray,
        confirmed: IntArray,
        last_front: IntArray,
        n_select: int,
        rng: np.random.Generator,
    ) -> IntArray:
        """Choose ``n_select`` members of the partial front."""

    # ------------------------------------------------------------------
    # Variation (overridable: the operator-ablation bench swaps this)
    # ------------------------------------------------------------------
    def _variation(
        self, parents: IntArray, n_servers: int, rng: np.random.Generator
    ) -> IntArray:
        """SBX crossover followed by polynomial mutation (the paper's
        "SBX and PM standard"), with Table III rates."""
        cfg = self.config
        offspring = sbx_crossover(
            parents,
            n_servers=n_servers,
            rate=cfg.sbx_rate,
            eta=cfg.sbx_distribution_index,
            seed=rng,
        )
        return polynomial_mutation(
            offspring,
            n_servers=n_servers,
            rate=cfg.pm_rate,
            eta=cfg.pm_distribution_index,
            seed=rng,
        )

    # ------------------------------------------------------------------
    # Environmental selection (shared)
    # ------------------------------------------------------------------
    def _environmental_selection(
        self,
        merged: Population,
        n_survive: int,
        rng: np.random.Generator,
    ) -> IntArray:
        """Pick survivor indices from the merged parent+offspring pool."""
        eff = self.handler.effective_objectives(merged.objectives, merged.violations)

        if self.handler.uses_feasibility_tiers:
            feasible = np.flatnonzero(merged.violations == 0)
            infeasible = np.flatnonzero(merged.violations != 0)
        else:
            feasible = np.arange(len(merged))
            infeasible = np.empty(0, dtype=np.int64)

        chosen: list[np.ndarray] = []
        remaining = n_survive

        if feasible.size:
            ranks = fast_non_dominated_sort(eff[feasible])
            for front_id in range(int(ranks.max()) + 1):
                front = feasible[ranks == front_id]
                if front.size <= remaining:
                    chosen.append(front)
                    remaining -= front.size
                    if remaining == 0:
                        break
                else:
                    confirmed = (
                        np.concatenate(chosen)
                        if chosen
                        else np.empty(0, dtype=np.int64)
                    )
                    picked = self._split_last_front(
                        eff, confirmed, front, remaining, rng
                    )
                    chosen.append(np.asarray(picked, dtype=np.int64))
                    remaining = 0
                    break

        if remaining > 0 and infeasible.size:
            # Feasibility-first fill: least-violating individuals, ties
            # broken by aggregate effective cost.
            order = np.lexsort(
                (eff[infeasible].sum(axis=1), merged.violations[infeasible])
            )
            take = infeasible[order[:remaining]]
            chosen.append(take)
            remaining -= take.size

        survivors = (
            np.concatenate(chosen) if chosen else np.empty(0, dtype=np.int64)
        )
        if survivors.size != n_survive:
            raise RuntimeError(
                f"environmental selection produced {survivors.size} survivors, "
                f"expected {n_survive}"
            )
        return survivors

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(
        self,
        evaluator: PopulationEvaluator,
        initial_genomes: IntArray | None = None,
        *,
        checkpoint_manager: CheckpointManager | None = None,
        fingerprint: str = "",
        resume_from: RunCheckpoint | None = None,
    ) -> EvolutionResult:
        """Optimize one allocation instance and return the final state.

        Parameters
        ----------
        evaluator:
            The problem instance wrapper.
        initial_genomes:
            Optional warm start: up to ``population_size`` genomes
            (e.g. a greedy seed, or the previous window's solution for
            reconfiguration runs).  Fewer rows are topped up with
            random genomes; extra rows are ignored (and the whole
            argument is, when the run resumes from a checkpoint).
        checkpoint_manager:
            Checkpoint store override; when ``None`` and the config
            carries ``checkpoint_dir``, a manager over that directory
            is created here.
        fingerprint:
            :class:`~repro.engine.CompiledProblem` fingerprint of the
            instance — the staleness key checkpoints are matched on.
        resume_from:
            Explicit checkpoint to restore.  Without it, a manager
            auto-resumes from the newest compatible checkpoint in its
            directory (none found = fresh start).  An explicit
            checkpoint whose fingerprint or trajectory key disagrees
            with this run raises
            :class:`~repro.errors.CheckpointError`.
        """
        run = self.start_run(
            evaluator,
            initial_genomes,
            checkpoint_manager=checkpoint_manager,
            fingerprint=fingerprint,
            resume_from=resume_from,
        )
        while run.step():
            pass
        return run.result()

    def start_run(
        self,
        evaluator: PopulationEvaluator,
        initial_genomes: IntArray | None = None,
        *,
        checkpoint_manager: CheckpointManager | None = None,
        fingerprint: str = "",
        resume_from: RunCheckpoint | None = None,
    ) -> EngineRun:
        """Begin a stepwise run; see :class:`EngineRun`.

        Takes the same arguments as :meth:`run` — initialization (or
        checkpoint resume) happens here, including the evaluation of
        generation 0, so :meth:`EngineRun.best_genome` is meaningful
        before the first :meth:`EngineRun.step`.
        """
        return EngineRun(
            self,
            evaluator,
            initial_genomes,
            checkpoint_manager=checkpoint_manager,
            fingerprint=fingerprint,
            resume_from=resume_from,
        )

    # ------------------------------------------------------------------
    # Checkpoint plumbing
    # ------------------------------------------------------------------
    def _validate_checkpoint(
        self,
        ckpt: RunCheckpoint,
        config_key: str,
        fingerprint: str,
        n: int,
    ) -> RunCheckpoint:
        """Reject checkpoints that cannot continue *this* run."""
        if fingerprint and ckpt.fingerprint and ckpt.fingerprint != fingerprint:
            raise CheckpointError(
                "checkpoint belongs to a different problem instance "
                f"(fingerprint {ckpt.fingerprint[:12]}... != "
                f"{fingerprint[:12]}...); the scenario changed since the "
                "checkpoint was written"
            )
        if ckpt.config_key != config_key:
            raise CheckpointError(
                "checkpoint was written under a different search "
                f"configuration (trajectory key {ckpt.config_key[:8]}... != "
                f"{config_key[:8]}...)"
            )
        expected = (self.config.population_size, n)
        if tuple(ckpt.genomes.shape) != expected:
            raise CheckpointError(
                f"checkpoint population shape {tuple(ckpt.genomes.shape)} "
                f"does not match this instance {expected}"
            )
        return ckpt

    def _build_checkpoint(
        self,
        *,
        fingerprint: str,
        config_key: str,
        generation: int,
        evaluations: int,
        elapsed: float,
        population: Population,
        rng: np.random.Generator,
        stalled: int,
        best_seen: tuple[int, float],
        history: list[GenerationStats],
    ) -> RunCheckpoint:
        """Capture the loop state right after a completed generation."""
        return RunCheckpoint(
            algorithm=self.algorithm_name,
            fingerprint=fingerprint,
            config_key=config_key,
            generation=generation,
            evaluations=evaluations,
            elapsed=elapsed,
            genomes=population.genomes.copy(),
            objectives=population.objectives.copy(),
            violations=population.violations.copy(),
            rng_state=rng.bit_generator.state,
            stalled=stalled,
            best_violations=best_seen[0],
            best_aggregate=best_seen[1],
            repair_state=self.handler.runtime_state(),
            history=tuple(
                dataclasses.asdict(stats) for stats in history
            ),
        )

    # ------------------------------------------------------------------
    def _generation_event(
        self, generation: int, evaluations: int, population: Population
    ) -> GenerationCompleted:
        stats = self._stats(generation, evaluations, population)
        return GenerationCompleted(
            algorithm=self.algorithm_name,
            generation=stats.generation,
            evaluations=stats.evaluations,
            best_aggregate=stats.best_aggregate,
            mean_aggregate=stats.mean_aggregate,
            feasible_fraction=stats.feasible_fraction,
            min_violations=stats.min_violations,
        )

    @staticmethod
    def _stats(
        generation: int, evaluations: int, population: Population
    ) -> GenerationStats:
        aggregate = population.objectives.sum(axis=1)
        return GenerationStats(
            generation=generation,
            evaluations=evaluations,
            best_aggregate=float(aggregate.min()),
            mean_aggregate=float(aggregate.mean()),
            feasible_fraction=float(population.feasible_mask.mean()),
            min_violations=int(population.violations.min()),
        )
