"""Shared NSGA engine: the generational loop of the paper's Figure 3.

Initialization → evaluation (with optional repair) → mating selection →
SBX crossover → PM mutation → evaluation → environmental selection,
until the evaluation budget (Table III: 10 000) or the time limit is
exhausted.  :class:`NSGA2` and :class:`NSGA3` supply the two pieces
that differ: mating selection and the splitting of the last partial
front (crowding distance vs. reference-point niching).
"""

from __future__ import annotations

import abc
import dataclasses
import time

import numpy as np

from repro.ea.config import NSGAConfig
from repro.ea.constraint_handling import ConstraintHandler, NoHandling
from repro.ea.encoding import random_population
from repro.ea.operators.polynomial import polynomial_mutation
from repro.ea.operators.sbx import sbx_crossover
from repro.ea.population import Population
from repro.ea.result import EvolutionResult, GenerationStats
from repro.ea.sorting import fast_non_dominated_sort
from repro.errors import CheckpointError
from repro.objectives.evaluator import PopulationEvaluator
from repro.runtime.checkpoint import CheckpointManager, RunCheckpoint, trajectory_key
from repro.runtime.signals import shutdown_requested
from repro.telemetry import GenerationCompleted, get_bus, get_registry, span
from repro.types import FloatArray, IntArray
from repro.utils.timers import Stopwatch

#: Default generations between snapshots when checkpointing is enabled
#: without an explicit ``checkpoint_every``.
DEFAULT_CHECKPOINT_EVERY = 10

__all__ = ["NSGABase"]


class NSGABase(abc.ABC):
    """Template-method NSGA engine.

    Parameters
    ----------
    config:
        Hyper-parameters (defaults = Table III).
    handler:
        Constraint-handling strategy; default is the *unmodified*
        behaviour (constraints ignored), matching the paper's
        "unmodified NSGA-II / NSGA-III" baselines.
    track_history:
        Record per-generation :class:`GenerationStats`.
    """

    algorithm_name = "nsga"

    def __init__(
        self,
        config: NSGAConfig | None = None,
        handler: ConstraintHandler | None = None,
        track_history: bool = False,
    ) -> None:
        self.config = config or NSGAConfig()
        self.handler = handler or NoHandling()
        self.track_history = bool(track_history)

    # ------------------------------------------------------------------
    # Subclass responsibilities
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _select_parents(
        self,
        population: Population,
        effective_objectives: FloatArray,
        rng: np.random.Generator,
    ) -> IntArray:
        """Indices of ``population_size`` parents for variation."""

    @abc.abstractmethod
    def _split_last_front(
        self,
        effective_objectives: FloatArray,
        confirmed: IntArray,
        last_front: IntArray,
        n_select: int,
        rng: np.random.Generator,
    ) -> IntArray:
        """Choose ``n_select`` members of the partial front."""

    # ------------------------------------------------------------------
    # Variation (overridable: the operator-ablation bench swaps this)
    # ------------------------------------------------------------------
    def _variation(
        self, parents: IntArray, n_servers: int, rng: np.random.Generator
    ) -> IntArray:
        """SBX crossover followed by polynomial mutation (the paper's
        "SBX and PM standard"), with Table III rates."""
        cfg = self.config
        offspring = sbx_crossover(
            parents,
            n_servers=n_servers,
            rate=cfg.sbx_rate,
            eta=cfg.sbx_distribution_index,
            seed=rng,
        )
        return polynomial_mutation(
            offspring,
            n_servers=n_servers,
            rate=cfg.pm_rate,
            eta=cfg.pm_distribution_index,
            seed=rng,
        )

    # ------------------------------------------------------------------
    # Environmental selection (shared)
    # ------------------------------------------------------------------
    def _environmental_selection(
        self,
        merged: Population,
        n_survive: int,
        rng: np.random.Generator,
    ) -> IntArray:
        """Pick survivor indices from the merged parent+offspring pool."""
        eff = self.handler.effective_objectives(merged.objectives, merged.violations)

        if self.handler.uses_feasibility_tiers:
            feasible = np.flatnonzero(merged.violations == 0)
            infeasible = np.flatnonzero(merged.violations != 0)
        else:
            feasible = np.arange(len(merged))
            infeasible = np.empty(0, dtype=np.int64)

        chosen: list[np.ndarray] = []
        remaining = n_survive

        if feasible.size:
            ranks = fast_non_dominated_sort(eff[feasible])
            for front_id in range(int(ranks.max()) + 1):
                front = feasible[ranks == front_id]
                if front.size <= remaining:
                    chosen.append(front)
                    remaining -= front.size
                    if remaining == 0:
                        break
                else:
                    confirmed = (
                        np.concatenate(chosen)
                        if chosen
                        else np.empty(0, dtype=np.int64)
                    )
                    picked = self._split_last_front(
                        eff, confirmed, front, remaining, rng
                    )
                    chosen.append(np.asarray(picked, dtype=np.int64))
                    remaining = 0
                    break

        if remaining > 0 and infeasible.size:
            # Feasibility-first fill: least-violating individuals, ties
            # broken by aggregate effective cost.
            order = np.lexsort(
                (eff[infeasible].sum(axis=1), merged.violations[infeasible])
            )
            take = infeasible[order[:remaining]]
            chosen.append(take)
            remaining -= take.size

        survivors = (
            np.concatenate(chosen) if chosen else np.empty(0, dtype=np.int64)
        )
        if survivors.size != n_survive:
            raise RuntimeError(
                f"environmental selection produced {survivors.size} survivors, "
                f"expected {n_survive}"
            )
        return survivors

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(
        self,
        evaluator: PopulationEvaluator,
        initial_genomes: IntArray | None = None,
        *,
        checkpoint_manager: CheckpointManager | None = None,
        fingerprint: str = "",
        resume_from: RunCheckpoint | None = None,
    ) -> EvolutionResult:
        """Optimize one allocation instance and return the final state.

        Parameters
        ----------
        evaluator:
            The problem instance wrapper.
        initial_genomes:
            Optional warm start: up to ``population_size`` genomes
            (e.g. a greedy seed, or the previous window's solution for
            reconfiguration runs).  Fewer rows are topped up with
            random genomes; extra rows are ignored (and the whole
            argument is, when the run resumes from a checkpoint).
        checkpoint_manager:
            Checkpoint store override; when ``None`` and the config
            carries ``checkpoint_dir``, a manager over that directory
            is created here.
        fingerprint:
            :class:`~repro.engine.CompiledProblem` fingerprint of the
            instance — the staleness key checkpoints are matched on.
        resume_from:
            Explicit checkpoint to restore.  Without it, a manager
            auto-resumes from the newest compatible checkpoint in its
            directory (none found = fresh start).  An explicit
            checkpoint whose fingerprint or trajectory key disagrees
            with this run raises
            :class:`~repro.errors.CheckpointError`.
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        n = evaluator.request.n
        m = evaluator.infrastructure.m

        manager = checkpoint_manager
        if manager is None and cfg.checkpoint_dir is not None:
            manager = CheckpointManager(cfg.checkpoint_dir)
        checkpoint_every = cfg.checkpoint_every or DEFAULT_CHECKPOINT_EVERY
        # The handler tag keeps algorithms sharing an engine (plain
        # NSGA-III vs the tabu/CP hybrids) from colliding in a shared
        # campaign directory.
        config_key = trajectory_key(
            cfg, f"{self.algorithm_name}/{self.handler.trajectory_tag()}"
        )
        if resume_from is None and manager is not None:
            resume_from = manager.latest(fingerprint, config_key)

        # Resolved once per run: with the default no-op bus the per-
        # generation telemetry below is a single boolean check.
        bus = get_bus()
        registry = get_registry()

        def _incumbent(pop: Population) -> tuple[int, float]:
            """(violations, aggregate) of the current single-solution
            pick — the quantity the stall detector watches."""
            idx = pop.best_feasible_index()
            if idx is None:
                idx = pop.least_violating_index()
            return int(pop.violations[idx]), float(pop.objectives[idx].sum())

        history: list[GenerationStats] = []
        resumed_from: int | None = None

        if resume_from is not None:
            ckpt = self._validate_checkpoint(resume_from, config_key, fingerprint, n)
            population = Population(
                ckpt.genomes.copy(), ckpt.objectives.copy(), ckpt.violations.copy()
            )
            rng.bit_generator.state = ckpt.rng_state
            generation = ckpt.generation
            evaluations = ckpt.evaluations
            stalled = ckpt.stalled
            best_seen = (ckpt.best_violations, ckpt.best_aggregate)
            self.handler.restore_runtime_state(ckpt.repair_state)
            if self.track_history:
                history = [GenerationStats(**h) for h in ckpt.history]
            resumed_from = ckpt.generation
            stopwatch = Stopwatch(elapsed=ckpt.elapsed).start()
            registry.count("runtime.resume.runs", algorithm=self.algorithm_name)
            if cfg.time_limit is not None:
                self.handler.set_deadline(
                    time.perf_counter() + cfg.time_limit - ckpt.elapsed
                )
        else:
            stopwatch = Stopwatch().start()
            if cfg.time_limit is not None:
                self.handler.set_deadline(time.perf_counter() + cfg.time_limit)
            evaluations = 0

            genomes = random_population(cfg.population_size, n, m, seed=rng)
            if initial_genomes is not None:
                seeds = np.asarray(initial_genomes, dtype=np.int64)
                if seeds.ndim == 1:
                    seeds = seeds[None, :]
                if seeds.shape[1] != n:
                    raise ValueError(
                        f"initial genomes have length {seeds.shape[1]}, "
                        f"instance needs {n}"
                    )
                count = min(seeds.shape[0], cfg.population_size)
                genomes[:count] = seeds[:count]
            genomes = self.handler.prepare(genomes)
            result = evaluator.evaluate_population(genomes)
            evaluations += cfg.population_size
            population = Population(genomes, result.objectives, result.violations)

            generation = 0
            if self.track_history:
                history.append(self._stats(generation, evaluations, population))
            if bus.enabled:
                bus.emit(
                    self._generation_event(generation, evaluations, population)
                )

            best_seen = _incumbent(population)
            stalled = 0

        interrupted = False
        last_saved = resumed_from if resumed_from is not None else -1

        def _snapshot() -> None:
            nonlocal last_saved
            if generation == last_saved:
                return
            manager.save(
                self._build_checkpoint(
                    fingerprint=fingerprint,
                    config_key=config_key,
                    generation=generation,
                    evaluations=evaluations,
                    elapsed=stopwatch.elapsed,
                    population=population,
                    rng=rng,
                    stalled=stalled,
                    best_seen=best_seen,
                    history=history,
                )
            )
            last_saved = generation

        while evaluations + cfg.population_size <= cfg.max_evaluations:
            if cfg.time_limit is not None and stopwatch.elapsed >= cfg.time_limit:
                break
            if (
                cfg.stall_generations is not None
                and stalled >= cfg.stall_generations
            ):
                break
            if manager is not None and shutdown_requested():
                # Graceful flush: persist the boundary we stand on and
                # unwind; the next start auto-resumes from here.
                _snapshot()
                interrupted = True
                break
            generation += 1

            with span(
                f"{self.algorithm_name}.generation", generation=generation
            ):
                eff = self.handler.effective_objectives(
                    population.objectives, population.violations
                )
                parent_idx = self._select_parents(population, eff, rng)
                parents = population.genomes[parent_idx]

                if cfg.repair_parents:
                    # Fig. 4: parents violating user constraints are
                    # treated by the repair before they reproduce.
                    parents = self.handler.prepare(parents)

                offspring = self._variation(parents, m, rng)
                # "The repair process is launched whenever invalid
                # individuals are assessed" — repair before evaluation.
                offspring = self.handler.prepare(offspring)

                off_result = evaluator.evaluate_population(offspring)
                evaluations += offspring.shape[0]
                off_pop = Population(
                    offspring, off_result.objectives, off_result.violations
                )

                merged = Population.concatenate(population, off_pop)
                survivors = self._environmental_selection(
                    merged, cfg.population_size, rng
                )
                population = merged.take(survivors)

            if bus.enabled:
                bus.emit(
                    self._generation_event(generation, evaluations, population)
                )

            current = _incumbent(population)
            if current < best_seen:
                best_seen = current
                stalled = 0
            else:
                stalled += 1

            if self.track_history:
                history.append(self._stats(generation, evaluations, population))

            if manager is not None and generation % checkpoint_every == 0:
                _snapshot()

        stopwatch.stop()
        registry.count(
            "nsga.generations", generation, algorithm=self.algorithm_name
        )
        registry.count(
            "nsga.evaluations", evaluations, algorithm=self.algorithm_name
        )
        registry.observe(
            "nsga.run_seconds", stopwatch.elapsed, algorithm=self.algorithm_name
        )
        return EvolutionResult(
            population=population,
            evaluations=evaluations,
            elapsed=stopwatch.elapsed,
            history=history,
            algorithm=self.algorithm_name,
            resumed_from=resumed_from,
            interrupted=interrupted,
        )

    # ------------------------------------------------------------------
    # Checkpoint plumbing
    # ------------------------------------------------------------------
    def _validate_checkpoint(
        self,
        ckpt: RunCheckpoint,
        config_key: str,
        fingerprint: str,
        n: int,
    ) -> RunCheckpoint:
        """Reject checkpoints that cannot continue *this* run."""
        if fingerprint and ckpt.fingerprint and ckpt.fingerprint != fingerprint:
            raise CheckpointError(
                "checkpoint belongs to a different problem instance "
                f"(fingerprint {ckpt.fingerprint[:12]}... != "
                f"{fingerprint[:12]}...); the scenario changed since the "
                "checkpoint was written"
            )
        if ckpt.config_key != config_key:
            raise CheckpointError(
                "checkpoint was written under a different search "
                f"configuration (trajectory key {ckpt.config_key[:8]}... != "
                f"{config_key[:8]}...)"
            )
        expected = (self.config.population_size, n)
        if tuple(ckpt.genomes.shape) != expected:
            raise CheckpointError(
                f"checkpoint population shape {tuple(ckpt.genomes.shape)} "
                f"does not match this instance {expected}"
            )
        return ckpt

    def _build_checkpoint(
        self,
        *,
        fingerprint: str,
        config_key: str,
        generation: int,
        evaluations: int,
        elapsed: float,
        population: Population,
        rng: np.random.Generator,
        stalled: int,
        best_seen: tuple[int, float],
        history: list[GenerationStats],
    ) -> RunCheckpoint:
        """Capture the loop state right after a completed generation."""
        return RunCheckpoint(
            algorithm=self.algorithm_name,
            fingerprint=fingerprint,
            config_key=config_key,
            generation=generation,
            evaluations=evaluations,
            elapsed=elapsed,
            genomes=population.genomes.copy(),
            objectives=population.objectives.copy(),
            violations=population.violations.copy(),
            rng_state=rng.bit_generator.state,
            stalled=stalled,
            best_violations=best_seen[0],
            best_aggregate=best_seen[1],
            repair_state=self.handler.runtime_state(),
            history=tuple(
                dataclasses.asdict(stats) for stats in history
            ),
        )

    # ------------------------------------------------------------------
    def _generation_event(
        self, generation: int, evaluations: int, population: Population
    ) -> GenerationCompleted:
        stats = self._stats(generation, evaluations, population)
        return GenerationCompleted(
            algorithm=self.algorithm_name,
            generation=stats.generation,
            evaluations=stats.evaluations,
            best_aggregate=stats.best_aggregate,
            mean_aggregate=stats.mean_aggregate,
            feasible_fraction=stats.feasible_fraction,
            min_violations=stats.min_violations,
        )

    @staticmethod
    def _stats(
        generation: int, evaluations: int, population: Population
    ) -> GenerationStats:
        aggregate = population.objectives.sum(axis=1)
        return GenerationStats(
            generation=generation,
            evaluations=evaluations,
            best_aggregate=float(aggregate.min()),
            mean_aggregate=float(aggregate.mean()),
            feasible_fraction=float(population.feasible_mask.mean()),
            min_violations=int(population.violations.min()),
        )
