"""Evolution run outputs: final population, chosen solution, history."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ea.population import Population
from repro.types import FloatArray, IntArray
from repro.utils.pareto import pareto_front_indices

__all__ = ["GenerationStats", "EvolutionResult"]


@dataclass(frozen=True)
class GenerationStats:
    """Per-generation progress snapshot for convergence analysis."""

    generation: int
    evaluations: int
    best_aggregate: float
    mean_aggregate: float
    feasible_fraction: float
    min_violations: int


@dataclass
class EvolutionResult:
    """Outcome of one NSGA run.

    Attributes
    ----------
    population:
        Final evaluated population.
    evaluations:
        Genome evaluations consumed.
    elapsed:
        Wall-clock seconds.
    history:
        Per-generation statistics (empty if tracking was disabled).
    algorithm:
        Human-readable algorithm label.
    resumed_from:
        Generation the run was restored from when it resumed a
        checkpoint, else ``None``.
    interrupted:
        True when the run stopped early on a graceful-shutdown request
        after flushing a checkpoint (the population is the state at the
        interruption boundary, not a finished run).
    """

    population: Population
    evaluations: int
    elapsed: float
    history: list[GenerationStats] = field(default_factory=list)
    algorithm: str = "nsga"
    resumed_from: int | None = None
    interrupted: bool = False

    # ------------------------------------------------------------------
    def pareto_front(self) -> Population:
        """Nondominated *feasible* individuals (all, if none feasible)."""
        pop = self.population
        feasible = np.flatnonzero(pop.feasible_mask)
        pool = feasible if feasible.size else np.arange(len(pop))
        front_local = pareto_front_indices(pop.objectives[pool])
        return pop.take(pool[front_local])

    def best_genome(self) -> IntArray:
        """The paper's single-solution pick: feasible individual closest
        to the normalized ideal point, else the least-violating one."""
        idx = self.population.best_feasible_index()
        if idx is None:
            idx = self.population.least_violating_index()
        return self.population.genomes[idx].copy()

    def best_objectives(self) -> FloatArray:
        """Objectives of :meth:`best_genome`."""
        idx = self.population.best_feasible_index()
        if idx is None:
            idx = self.population.least_violating_index()
        return self.population.objectives[idx].copy()

    def best_violations(self) -> int:
        """Violations of :meth:`best_genome` (0 when a feasible one exists)."""
        idx = self.population.best_feasible_index()
        if idx is None:
            idx = self.population.least_violating_index()
        return int(self.population.violations[idx])
