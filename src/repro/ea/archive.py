"""External nondominated archive.

NSGA's population is a moving sample; an *archive* accumulates every
nondominated feasible solution ever evaluated, so the final Pareto
front offered to the decision maker is not limited to the last
generation.  The paper selects a single solution by ideal-point
distance; the archive preserves the whole frontier that selection is
made from — useful for the operator dashboards the examples simulate
and for measuring convergence (hypervolume over time).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.types import FloatArray, IntArray
from repro.utils.pareto import ideal_point

__all__ = ["ParetoArchive"]


class ParetoArchive:
    """Bounded archive of mutually nondominated (genome, objectives).

    Parameters
    ----------
    capacity:
        Maximum solutions retained.  When full, the entrant only
        displaces the archived solution *most crowded* in objective
        space (largest inverse-nearest-neighbour density), keeping the
        archive spread.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValidationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._genomes: list[np.ndarray] = []
        self._objectives: list[np.ndarray] = []

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._genomes)

    @property
    def genomes(self) -> IntArray:
        """(size, n) matrix of archived genomes (copy)."""
        if not self._genomes:
            return np.empty((0, 0), dtype=np.int64)
        return np.stack(self._genomes)

    @property
    def objectives(self) -> FloatArray:
        """(size, k) matrix of archived objective vectors (copy)."""
        if not self._objectives:
            return np.empty((0, 0))
        return np.stack(self._objectives)

    # ------------------------------------------------------------------
    def add(self, genome: IntArray, objectives: FloatArray) -> bool:
        """Offer one solution; returns True if it entered the archive.

        Entrants dominated by (or duplicating) an archived solution are
        refused; archived solutions dominated by the entrant are
        evicted.
        """
        genome = np.asarray(genome, dtype=np.int64).copy()
        objectives = np.asarray(objectives, dtype=np.float64).copy()
        if objectives.ndim != 1:
            raise ValidationError("objectives must be a 1-D vector")

        keep: list[int] = []
        for i, archived in enumerate(self._objectives):
            if np.all(archived <= objectives) and (
                np.any(archived < objectives) or np.array_equal(archived, objectives)
            ):
                return False  # dominated or duplicate
            if not (np.all(objectives <= archived) and np.any(objectives < archived)):
                keep.append(i)
        self._genomes = [self._genomes[i] for i in keep]
        self._objectives = [self._objectives[i] for i in keep]

        self._genomes.append(genome)
        self._objectives.append(objectives)
        if len(self._genomes) > self.capacity:
            self._evict_most_crowded()
        return True

    def add_population(self, genomes: IntArray, objectives: FloatArray) -> int:
        """Offer a whole population; returns how many entered."""
        genomes = np.asarray(genomes)
        objectives = np.asarray(objectives)
        if genomes.shape[0] != objectives.shape[0]:
            raise ValidationError("genome/objective row counts differ")
        return sum(
            self.add(genomes[i], objectives[i]) for i in range(genomes.shape[0])
        )

    # ------------------------------------------------------------------
    def _evict_most_crowded(self) -> None:
        objs = np.stack(self._objectives)
        lo = objs.min(axis=0)
        span = np.where(objs.max(axis=0) - lo > 0, objs.max(axis=0) - lo, 1.0)
        normalized = (objs - lo) / span
        # Nearest-neighbour distance per point; the smallest is densest.
        diff = normalized[:, None, :] - normalized[None, :, :]
        dist = np.sqrt((diff**2).sum(axis=2))
        np.fill_diagonal(dist, np.inf)
        nearest = dist.min(axis=1)
        victim = int(np.argmin(nearest))
        del self._genomes[victim]
        del self._objectives[victim]

    # ------------------------------------------------------------------
    def best_by_ideal_point(self) -> tuple[IntArray, FloatArray] | None:
        """The paper's final pick, applied to the archive: the solution
        with minimum normalized Euclidean distance to the ideal point."""
        if not self._genomes:
            return None
        objs = self.objectives
        ideal = ideal_point(objs)
        span = objs.max(axis=0) - ideal
        span = np.where(span > 0, span, 1.0)
        distance = np.sqrt((((objs - ideal) / span) ** 2).sum(axis=1))
        index = int(np.argmin(distance))
        return self._genomes[index].copy(), self._objectives[index].copy()

    def best(self, preference=None) -> tuple[IntArray, FloatArray] | None:
        """The deployed-solution pick under the preference layer.

        With a :class:`~repro.market.preferences.PreferenceOrder` (or,
        when ``preference`` is ``None``, the process-wide active one),
        the ceteris-paribus selection; otherwise exactly
        :meth:`best_by_ideal_point` — the historical byte-identical
        default.
        """
        if not self._genomes:
            return None
        from repro.market.preferences import active_preference

        preference = preference if preference is not None else active_preference()
        if preference is None:
            return self.best_by_ideal_point()
        index = preference.select(self.objectives)
        return self._genomes[index].copy(), self._objectives[index].copy()
