"""Constraint-handling strategies for evolutionary search (Section III).

The paper lists four ways evolutionary algorithms can face strict
constraints and adopts two:

1. *Excluding* individuals that violate constraints — implemented by
   :class:`ExclusionHandling` (found "inefficient because it excludes
   too many individuals").
2. *Fixing faulty individuals through a repair process* — implemented
   by :class:`RepairHandling`, parameterized by a repair callable so
   the same machinery hosts the tabu-search repair (the contribution)
   and the constraint-solver repair (the NSGA-III + CP baseline).

The violation-penalty variant the authors tried and rejected ("serious
increases in response times") is :class:`PenaltyHandling`;
:class:`NoHandling` is the unmodified NSGA behaviour whose violations
Figure 10 reports.

A handler participates at three points of the NSGA loop:

* :meth:`prepare` — transform genomes before evaluation (repair);
* :meth:`effective_objectives` — objectives used for sorting (penalty);
* :attr:`uses_feasibility_tiers` — when True, survivor selection is
  feasibility-first: infeasible individuals can never displace feasible
  ones (this *is* exclusion, operationally: violators are excluded from
  survival whenever enough feasible individuals exist).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ValidationError
from repro.telemetry import get_registry, span
from repro.types import FloatArray, IntArray

__all__ = [
    "ConstraintHandler",
    "NoHandling",
    "ExclusionHandling",
    "PenaltyHandling",
    "RepairHandling",
]

RepairFn = Callable[[IntArray], IntArray]


class ConstraintHandler:
    """Base strategy: constraints are ignored (unmodified NSGA)."""

    #: Whether sorting should use feasibility tiers before Pareto rank.
    uses_feasibility_tiers: bool = False

    def prepare(self, genomes: IntArray) -> IntArray:
        """Hook run on genomes before they are evaluated."""
        return genomes

    def effective_objectives(
        self, objectives: FloatArray, violations: IntArray
    ) -> FloatArray:
        """Objectives the sorter should see (default: untouched)."""
        return objectives

    def set_deadline(self, deadline: float | None) -> None:
        """Propagate a wall-clock budget (``time.perf_counter`` stamp).

        The NSGA loop calls this when its config carries a
        ``time_limit`` so repair procedures can bound their own inner
        loops; stateless handlers ignore it.
        """

    def trajectory_tag(self) -> str:
        """Identity of this handler within a checkpoint trajectory key.

        Two runs whose handlers repair differently must never share a
        checkpoint (e.g. plain NSGA-III vs the tabu hybrid in one
        campaign directory); this tag separates them.
        """
        return type(self).__name__

    def runtime_state(self) -> dict | None:
        """Trajectory-relevant mutable state for checkpoints (or None).

        Whatever this returns is stored in the run checkpoint verbatim
        and handed back through :meth:`restore_runtime_state` on
        resume, so stateful repair procedures (the tabu repair's RNG
        batch counter) survive a kill byte-identically.
        """
        return None

    def restore_runtime_state(self, state: dict | None) -> None:
        """Re-apply state captured by :meth:`runtime_state` (default no-op)."""


class NoHandling(ConstraintHandler):
    """Unmodified NSGA-II/III: constraints play no role in the search."""


class ExclusionHandling(ConstraintHandler):
    """Method 1: violating individuals are barred from survival.

    When fewer feasible individuals exist than survivor slots, the
    least-violating infeasible ones fill the gap (otherwise the
    population would collapse) — but they never displace a feasible
    individual, which is what "excluding" means operationally.
    Without any repair mechanism feasible individuals stay rare on
    constrained instances, which reproduces the paper's finding that
    this method "excludes too many individuals".
    """

    uses_feasibility_tiers = True


class PenaltyHandling(ConstraintHandler):
    """The rejected alternative: add ``coefficient * violations`` to
    every objective, steering the search away from infeasible regions
    at the price of a distorted landscape."""

    def __init__(self, coefficient: float = 1_000.0) -> None:
        if coefficient < 0:
            raise ValidationError(f"coefficient must be >= 0, got {coefficient}")
        self.coefficient = float(coefficient)

    def effective_objectives(
        self, objectives: FloatArray, violations: IntArray
    ) -> FloatArray:
        """Add the violation penalty to every objective (Eq. 14 style)."""
        objectives = np.asarray(objectives, dtype=np.float64)
        violations = np.asarray(violations, dtype=np.float64)
        return objectives + self.coefficient * violations[:, None]


class RepairHandling(ConstraintHandler):
    """Method 2: fix faulty individuals via a repair procedure.

    Parameters
    ----------
    repair_fn:
        Maps a genome matrix (pop, n) to a repaired matrix of the same
        shape.  The tabu-search repair of Fig. 5/6 and the CP-based
        repair both plug in here.
    """

    uses_feasibility_tiers = True

    def __init__(self, repair_fn: RepairFn) -> None:
        if not callable(repair_fn):
            raise ValidationError("repair_fn must be callable")
        self.repair_fn = repair_fn
        self._repair_calls = 0

    @property
    def repair_calls(self) -> int:
        """How many times the repair hook ran (instrumentation)."""
        return self._repair_calls

    def prepare(self, genomes: IntArray) -> IntArray:
        """Repair the infeasible rows of ``genomes`` via the repair callable."""
        self._repair_calls += 1
        get_registry().count("ea.repair.batches")
        with span("ea.repair", individuals=int(np.shape(genomes)[0])):
            repaired = self.repair_fn(np.asarray(genomes, dtype=np.int64))
        repaired = np.asarray(repaired, dtype=np.int64)
        if repaired.shape != genomes.shape:
            raise ValidationError(
                f"repair changed population shape {genomes.shape} -> "
                f"{repaired.shape}"
            )
        return repaired

    def trajectory_tag(self) -> str:
        """Tag includes the repair callable so different repairers never
        share a checkpoint trajectory."""
        fn = self.repair_fn
        label = getattr(fn, "__qualname__", None) or type(fn).__name__
        return f"{type(self).__name__}({label})"

    # The hooks below forward to the repair callable when it supports
    # them (TabuRepair does; a bare function or the CP solver's bound
    # method silently doesn't).
    def set_deadline(self, deadline: float | None) -> None:
        """Forward the wall-clock cutoff to the repair callable."""
        setter = getattr(self.repair_fn, "set_deadline", None)
        if setter is not None:
            setter(deadline)

    def runtime_state(self) -> dict | None:
        """Checkpoint payload of the repair callable (``None`` if stateless)."""
        getter = getattr(self.repair_fn, "runtime_state", None)
        return None if getter is None else getter()

    def restore_runtime_state(self, state: dict | None) -> None:
        """Inverse of :meth:`runtime_state` (resume path)."""
        if state is None:
            return
        setter = getattr(self.repair_fn, "restore_runtime_state", None)
        if setter is not None:
            setter(state)
