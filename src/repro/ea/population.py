"""Population container: genomes plus their evaluation results.

A population is a struct-of-arrays — genome matrix (pop, n), objective
matrix (pop, 3), violation vector (pop,) — kept consistent by
construction.  The EA loop concatenates, slices and re-orders these
arrays wholesale; nothing iterates individuals in Python.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.types import FloatArray, IntArray

__all__ = ["Population"]


@dataclass
class Population:
    """Evaluated individuals.

    Attributes
    ----------
    genomes:
        (pop, n) int matrix of server ids.
    objectives:
        (pop, k) float objective matrix (minimization).
    violations:
        (pop,) int total constraint violations.
    """

    genomes: IntArray
    objectives: FloatArray
    violations: IntArray

    def __post_init__(self) -> None:
        self.genomes = np.ascontiguousarray(self.genomes, dtype=np.int64)
        self.objectives = np.ascontiguousarray(self.objectives, dtype=np.float64)
        self.violations = np.ascontiguousarray(self.violations, dtype=np.int64)
        if self.genomes.ndim != 2 or self.objectives.ndim != 2:
            raise ValidationError("genomes and objectives must be 2-D")
        pop = self.genomes.shape[0]
        if self.objectives.shape[0] != pop or self.violations.shape != (pop,):
            raise ValidationError(
                f"inconsistent population sizes: genomes {self.genomes.shape}, "
                f"objectives {self.objectives.shape}, "
                f"violations {self.violations.shape}"
            )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.genomes.shape[0]

    @property
    def n_objectives(self) -> int:
        """Number of objective columns."""
        return self.objectives.shape[1]

    @property
    def feasible_mask(self) -> np.ndarray:
        """Individuals with zero violations."""
        return self.violations == 0

    def take(self, indices: IntArray) -> "Population":
        """Sub-population at ``indices`` (copies)."""
        idx = np.asarray(indices, dtype=np.int64)
        return Population(
            genomes=self.genomes[idx].copy(),
            objectives=self.objectives[idx].copy(),
            violations=self.violations[idx].copy(),
        )

    @staticmethod
    def concatenate(a: "Population", b: "Population") -> "Population":
        """Stack two populations (parents + offspring merge step)."""
        if a.genomes.shape[1] != b.genomes.shape[1]:
            raise ValidationError("genome lengths differ")
        if a.n_objectives != b.n_objectives:
            raise ValidationError("objective counts differ")
        return Population(
            genomes=np.vstack([a.genomes, b.genomes]),
            objectives=np.vstack([a.objectives, b.objectives]),
            violations=np.concatenate([a.violations, b.violations]),
        )

    def best_feasible_index(self, preference=None) -> int | None:
        """Index of the deployed-solution pick among feasible individuals.

        Routed through the preference layer: with a
        :class:`~repro.market.preferences.PreferenceOrder` (explicit,
        or the process-wide active one when ``preference`` is ``None``),
        the ceteris-paribus selection; otherwise the paper's
        final-solution pick — normalize each objective over the
        feasible set, then take the minimum Euclidean distance to the
        component-wise minimum ("the ideal point where cost and
        rejection rate are the next to naught").  Returns None when no
        individual is feasible.
        """
        feasible = np.flatnonzero(self.feasible_mask)
        if feasible.size == 0:
            return None
        from repro.market.preferences import active_preference

        preference = preference if preference is not None else active_preference()
        objs = self.objectives[feasible]
        if preference is not None:
            return int(feasible[preference.select(objs)])
        lo = objs.min(axis=0)
        span = objs.max(axis=0) - lo
        span = np.where(span > 0, span, 1.0)
        normalized = (objs - lo) / span
        distances = np.sqrt((normalized**2).sum(axis=1))
        return int(feasible[np.argmin(distances)])

    def least_violating_index(self) -> int:
        """Index with the fewest violations (ties → better aggregate cost)."""
        order = np.lexsort((self.objectives.sum(axis=1), self.violations))
        return int(order[0])
