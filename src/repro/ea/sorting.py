"""Fast nondominated sorting (Deb et al. 2002) and constrained ordering.

:func:`fast_non_dominated_sort` returns a rank per individual (0 = first
Pareto front).  The pairwise dominance matrix is computed with one
broadcast pass; the peeling loop then strips fronts by repeatedly
removing individuals whose dominators are all already ranked.  For the
population sizes involved (Table III: 100; merged parent+offspring:
200) the O(N^2 M) broadcast beats any Python-level bookkeeping.

:func:`constrained_sort_keys` implements Deb's feasibility-first
comparison as a sortable key: feasible individuals always precede
infeasible ones, infeasible ones order by total violations.
"""

from __future__ import annotations

import numpy as np

from repro.types import FloatArray, IntArray
from repro.utils.pareto import dominance_matrix

__all__ = ["fast_non_dominated_sort", "constrained_sort_keys"]


def fast_non_dominated_sort(objectives: FloatArray) -> IntArray:
    """Rank individuals by Pareto front (0 = nondominated).

    Parameters
    ----------
    objectives:
        (pop, k) minimization matrix.

    Returns
    -------
    (pop,) int array of front indices.
    """
    objectives = np.asarray(objectives, dtype=np.float64)
    pop = objectives.shape[0]
    if pop == 0:
        return np.empty(0, dtype=np.int64)
    dom = dominance_matrix(objectives)  # dom[i, j]: i dominates j
    dominators_left = dom.sum(axis=0).astype(np.int64)  # per column j
    ranks = np.full(pop, -1, dtype=np.int64)
    current = np.flatnonzero(dominators_left == 0)
    front = 0
    while current.size:
        ranks[current] = front
        # Removing the current front decrements the dominator counts of
        # everything it dominates.
        dominators_left -= dom[current].sum(axis=0)
        dominators_left[current] = -1  # never re-selected
        front += 1
        current = np.flatnonzero(dominators_left == 0)
    return ranks


def constrained_sort_keys(
    objectives: FloatArray, violations: IntArray
) -> tuple[IntArray, IntArray]:
    """Feasibility-first ranking inputs.

    Returns ``(ranks, tiers)`` where ``tiers`` is 0 for feasible
    individuals and ``1 + violations`` otherwise; survivor selection
    sorts lexicographically by (tier, rank).  Feasible individuals are
    Pareto-ranked among themselves; infeasible individuals all get the
    rank of the worst feasible front + their violation tier, so a
    repaired near-feasible individual still beats a badly violating one.
    """
    objectives = np.asarray(objectives, dtype=np.float64)
    violations = np.asarray(violations, dtype=np.int64)
    pop = objectives.shape[0]
    ranks = np.zeros(pop, dtype=np.int64)
    feasible = violations == 0
    if feasible.any():
        idx = np.flatnonzero(feasible)
        ranks[idx] = fast_non_dominated_sort(objectives[idx])
    tiers = np.where(feasible, 0, 1 + violations).astype(np.int64)
    return ranks, tiers
