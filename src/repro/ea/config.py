"""NSGA configuration — Table III of the paper as a dataclass.

| Parameter              | Paper value |
|------------------------|-------------|
| populationSize         | 100         |
| Number of evaluations  | 10 000      |
| sbx.rate               | 0.70        |
| sbx.distributionIndex  | 15.00       |
| pm.rate                | 0.20        |
| pm.distributionIndex   | 15.00       |

``pm.rate`` follows the MOEA-framework convention the paper's parameter
names come from: the *per-variable* mutation probability multiplier
(effective per-gene rate = pm_rate / n is a common alternative; here
the rate is applied per gene directly, matching the framework default
``1/n``-style usage being overridden to 0.20).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ValidationError

__all__ = ["NSGAConfig"]


@dataclass(frozen=True)
class NSGAConfig:
    """Hyper-parameters for NSGA-II / NSGA-III runs.

    Parameters
    ----------
    population_size:
        Individuals per generation (Table III: 100).
    max_evaluations:
        Total genome-evaluation budget (Table III: 10 000).
    sbx_rate:
        Probability a parent pair undergoes SBX crossover.
    sbx_distribution_index:
        SBX spread parameter (higher = children closer to parents).
    pm_rate:
        Per-gene polynomial-mutation probability.
    pm_distribution_index:
        PM spread parameter.
    reference_point_divisions:
        Das-Dennis divisions per objective for NSGA-III (3 objectives
        with 12 divisions → 91 points, matching a population of ~100).
    penalty_coefficient:
        Violation penalty weight for the PENALTY handling strategy.
    repair_parents:
        Repair infeasible parents before variation (the paper's Fig. 4
        flow) in addition to repairing offspring before evaluation.
    time_limit:
        Optional wall-clock cap in seconds (the paper targets responses
        "in a very short timeframe (<2mn)").
    stall_generations:
        Optional convergence stop: end the run after this many
        consecutive generations without improvement of the best
        feasible aggregate (None = run the full budget, the paper's
        protocol).
    seed:
        RNG seed for the run.
    n_workers:
        Worker processes for the intra-run parallel execution engine
        (``0`` = serial, the default).  Results are byte-identical to
        the serial path for a given seed regardless of worker count;
        see ``docs/PARALLEL.md``.
    parallel_eval_min_pop:
        When set (and ``n_workers >= 2``), population evaluations of at
        least this many genomes are chunked across the worker pool.
        ``None`` keeps evaluation in-process (repair fan-out alone is
        usually the win at Table III population sizes).
    checkpoint_dir:
        When set, the run snapshots its full trajectory state into this
        directory at generation boundaries and auto-resumes from the
        newest compatible checkpoint on the next start — byte-identical
        to an uninterrupted run (see ``docs/RUNBOOK.md``).  ``None``
        (the default) disables checkpointing entirely.
    checkpoint_every:
        Generations between snapshots (default 10 when
        ``checkpoint_dir`` is set).
    energy_weight:
        Weight of the optional energy term folded into the provider
        cost objective (see :mod:`repro.objectives.energy`).  0.0 — the
        default — reproduces the paper's three-objective formulation
        byte for byte.  Non-zero weights change the search trajectory,
        so the value participates in checkpoint trajectory keys.
    preference:
        Optional ceteris-paribus preference spec (e.g.
        ``"provider_cost>qos>energy"``, see
        :mod:`repro.market.preferences`) deciding which front member a
        run commits as its deployed solution.  ``None`` — the default —
        keeps the paper's ideal-point pick byte for byte.  The spec is
        validated at construction and participates in checkpoint
        trajectory keys (a resumed run must deploy the same pick).
    """

    population_size: int = 100
    max_evaluations: int = 10_000
    sbx_rate: float = 0.70
    sbx_distribution_index: float = 15.0
    pm_rate: float = 0.20
    pm_distribution_index: float = 15.0
    reference_point_divisions: int = 12
    penalty_coefficient: float = 1_000.0
    repair_parents: bool = True
    time_limit: float | None = None
    stall_generations: int | None = None
    seed: int | None = None
    n_workers: int = 0
    parallel_eval_min_pop: int | None = None
    checkpoint_dir: str | None = None
    checkpoint_every: int | None = None
    energy_weight: float = 0.0
    preference: str | None = None

    def __post_init__(self) -> None:
        if self.population_size < 4:
            raise ValidationError(
                f"population_size must be >= 4, got {self.population_size}"
            )
        if self.population_size % 2:
            raise ValidationError(
                f"population_size must be even, got {self.population_size}"
            )
        if self.max_evaluations < self.population_size:
            raise ValidationError(
                "max_evaluations must cover at least the initial population "
                f"({self.max_evaluations} < {self.population_size})"
            )
        for name in ("sbx_rate", "pm_rate"):
            value = getattr(self, name)
            if not (0.0 <= value <= 1.0):
                raise ValidationError(f"{name} must lie in [0, 1], got {value}")
        for name in ("sbx_distribution_index", "pm_distribution_index"):
            if getattr(self, name) <= 0:
                raise ValidationError(f"{name} must be > 0")
        if self.reference_point_divisions < 1:
            raise ValidationError("reference_point_divisions must be >= 1")
        if self.penalty_coefficient < 0:
            raise ValidationError("penalty_coefficient must be >= 0")
        if self.time_limit is not None and self.time_limit <= 0:
            raise ValidationError("time_limit must be > 0 when set")
        if self.stall_generations is not None and self.stall_generations < 1:
            raise ValidationError("stall_generations must be >= 1 when set")
        if self.n_workers < 0:
            raise ValidationError(
                f"n_workers must be >= 0, got {self.n_workers}"
            )
        if self.parallel_eval_min_pop is not None and self.parallel_eval_min_pop < 1:
            raise ValidationError("parallel_eval_min_pop must be >= 1 when set")
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ValidationError("checkpoint_every must be >= 1 when set")
        if self.energy_weight < 0:
            raise ValidationError(
                f"energy_weight must be >= 0, got {self.energy_weight}"
            )
        if self.preference is not None:
            from repro.market.preferences import parse_preference

            parse_preference(self.preference)  # raises on malformed specs

    def with_(self, **changes) -> "NSGAConfig":
        """Functional update (frozen dataclass convenience)."""
        return replace(self, **changes)


#: Sanity anchor used in tests: the defaults must stay Table III.
_TABLE_III = {
    "population_size": 100,
    "max_evaluations": 10_000,
    "sbx_rate": 0.70,
    "sbx_distribution_index": 15.0,
    "pm_rate": 0.20,
    "pm_distribution_index": 15.0,
}
