"""Crowding distance (NSGA-II diversity measure, Deb et al. 2002).

Within one front, each individual's crowding distance is the sum over
objectives of the normalized gap between its neighbours when the front
is sorted by that objective; boundary individuals get +inf so extremes
are always preserved.
"""

from __future__ import annotations

import numpy as np

from repro.types import FloatArray

__all__ = ["crowding_distance"]


def crowding_distance(objectives: FloatArray) -> FloatArray:
    """Crowding distance of every individual in one front.

    Parameters
    ----------
    objectives:
        (size, k) objective matrix of a single front.

    Returns
    -------
    (size,) float array; boundary points are ``inf``.
    """
    objectives = np.asarray(objectives, dtype=np.float64)
    if objectives.ndim != 2:
        raise ValueError(f"objectives must be 2-D, got shape {objectives.shape}")
    size, k = objectives.shape
    if size <= 2:
        return np.full(size, np.inf)
    distance = np.zeros(size)
    for col in range(k):
        order = np.argsort(objectives[:, col], kind="stable")
        values = objectives[order, col]
        span = values[-1] - values[0]
        distance[order[0]] = np.inf
        distance[order[-1]] = np.inf
        if span <= 0:
            continue  # degenerate objective: interior gaps are all zero
        gaps = (values[2:] - values[:-2]) / span
        interior = order[1:-1]
        finite = ~np.isinf(distance[interior])
        distance[interior[finite]] += gaps[finite]
    return distance
