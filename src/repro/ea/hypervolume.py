"""Hypervolume indicator (2-D and 3-D, minimization).

Not part of the paper's metrics, but the standard tool for checking
that an EA implementation actually converges — the test suite uses it
to assert NSGA front quality improves over generations, and the
operator-ablation bench reports it.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.errors import ValidationError
from repro.types import FloatArray
from repro.utils.pareto import non_dominated_mask

__all__ = ["hypervolume", "reference_point", "reference_point_cache_info"]


@lru_cache(maxsize=256)
def _reference_from_bytes(
    shape: tuple[int, int], blob: bytes, margin: float
) -> FloatArray:
    objs = np.frombuffer(blob, dtype=np.float64).reshape(shape)
    reference = objs.max(axis=0) + margin
    reference.flags.writeable = False
    return reference


def reference_point(objectives: FloatArray, margin: float = 1.0) -> FloatArray:
    """Nadir-plus-margin reference point, ``objectives.max(axis=0) + margin``.

    Memoized on the point set's (shape, bytes, margin) identity: anytime
    callers recompute hypervolume against the *same* front every epoch
    (monotonicity checks, the portfolio's exchange telemetry), and the
    repeated ``max`` reductions show up in profiles.  The returned array
    is the cached object, marked read-only — copy before mutating.
    """
    objs = np.ascontiguousarray(objectives, dtype=np.float64)
    if objs.ndim == 1:
        objs = objs[np.newaxis, :]
    if objs.ndim != 2 or objs.shape[0] == 0:
        raise ValidationError(
            f"objectives must be a non-empty 2-D array, got shape {objs.shape}"
        )
    return _reference_from_bytes(objs.shape, objs.tobytes(), float(margin))


def reference_point_cache_info():
    """The memo's ``lru_cache`` statistics (hits/misses/currsize)."""
    return _reference_from_bytes.cache_info()


def hypervolume(objectives: FloatArray, reference: FloatArray) -> float:
    """Dominated hypervolume of a point set w.r.t. ``reference``.

    Points not strictly below the reference in every coordinate are
    ignored.  Supports 2 or 3 objectives (all this library needs).
    """
    objs = np.asarray(objectives, dtype=np.float64)
    ref = np.asarray(reference, dtype=np.float64)
    if objs.ndim != 2:
        raise ValidationError(f"objectives must be 2-D, got {objs.shape}")
    k = objs.shape[1]
    if ref.shape != (k,):
        raise ValidationError(f"reference shape {ref.shape}, expected ({k},)")
    inside = np.all(objs < ref, axis=1)
    objs = objs[inside]
    if objs.shape[0] == 0:
        return 0.0
    objs = objs[non_dominated_mask(objs)]
    if k == 2:
        return _hv2d(objs, ref)
    if k == 3:
        return _hv3d(objs, ref)
    raise ValidationError(f"hypervolume supports 2 or 3 objectives, got {k}")


def _hv2d(front: FloatArray, ref: FloatArray) -> float:
    """Sweep in x; the front is mutually nondominated so y decreases."""
    order = np.argsort(front[:, 0], kind="stable")
    pts = front[order]
    total = 0.0
    prev_y = ref[1]
    for x, y in pts:
        total += (ref[0] - x) * (prev_y - y)
        prev_y = y
    return float(total)


def _hv3d(front: FloatArray, ref: FloatArray) -> float:
    """Slice along z: between consecutive z-levels the dominated area in
    the (x, y) plane is a 2-D hypervolume of the points at or below the
    slice."""
    order = np.argsort(front[:, 2], kind="stable")
    pts = front[order]
    zs = pts[:, 2]
    total = 0.0
    for i in range(len(pts)):
        z_lo = zs[i]
        z_hi = zs[i + 1] if i + 1 < len(pts) else ref[2]
        if z_hi <= z_lo:
            continue
        active = pts[: i + 1, :2]
        keep = non_dominated_mask(active)
        area = _hv2d(active[keep], ref[:2])
        total += area * (z_hi - z_lo)
    return float(total)
