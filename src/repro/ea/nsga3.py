"""NSGA-III (Deb & Jain 2014; the paper cites the unified U-NSGA-III).

Mating selection is uniform-random (selection pressure lives in the
reference-point survival step); the partial last front is split by
niche-preserving association with the Das-Dennis reference directions.
"""

from __future__ import annotations

import numpy as np

from repro.ea.config import NSGAConfig
from repro.ea.constraint_handling import ConstraintHandler
from repro.ea.nsga_base import NSGABase
from repro.ea.operators.selection import binary_tournament, random_mating_pool
from repro.ea.population import Population
from repro.ea.reference_points import niching_for
from repro.types import FloatArray, IntArray

__all__ = ["NSGA3"]


class NSGA3(NSGABase):
    """The unmodified NSGA-III baseline (or constrained, per handler)."""

    algorithm_name = "nsga3"

    def __init__(
        self,
        config: NSGAConfig | None = None,
        handler: ConstraintHandler | None = None,
        track_history: bool = False,
        n_objectives: int = 3,
    ) -> None:
        super().__init__(config=config, handler=handler, track_history=track_history)
        # Memoized by lattice shape: repeated runs (sweeps, windows)
        # share one lattice + niching operator instead of re-deriving.
        self.niching = niching_for(
            n_objectives, self.config.reference_point_divisions
        )

    def _select_parents(
        self,
        population: Population,
        effective_objectives: FloatArray,
        rng: np.random.Generator,
    ) -> IntArray:
        if self.handler.uses_feasibility_tiers:
            # Feasibility-aware tournament keeps repaired individuals in
            # the mating pool ahead of violators.
            tiers = np.where(
                population.violations == 0, 0, 1 + population.violations
            )
            ranks = np.zeros(len(population), dtype=np.int64)
            return binary_tournament(
                ranks,
                None,
                n_parents=self.config.population_size,
                tiers=tiers,
                seed=rng,
            )
        return random_mating_pool(
            len(population), self.config.population_size, seed=rng
        )

    def _split_last_front(
        self,
        effective_objectives: FloatArray,
        confirmed: IntArray,
        last_front: IntArray,
        n_select: int,
        rng: np.random.Generator,
    ) -> IntArray:
        return self.niching.select(
            effective_objectives,
            confirmed,
            last_front,
            n_select,
            seed=rng,
        )
