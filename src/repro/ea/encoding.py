"""Genome initialization.

A genome assigns each of the n requested resources a server id in
``[0, m)``.  :func:`random_population` draws uniformly;``greedy_seed``
produces one capacity-aware genome (first-fit over shuffled servers) so
callers can optionally seed the population with a decent starting point
— the EA chapters of the paper start from random populations, so
seeding is off by default everywhere.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.model.infrastructure import Infrastructure
from repro.model.request import Request
from repro.types import IntArray, SeedLike
from repro.utils.rng import as_generator

__all__ = ["random_population", "greedy_seed"]


def random_population(
    pop_size: int, n: int, m: int, seed: SeedLike = None
) -> IntArray:
    """Uniform random genome matrix of shape (pop_size, n), genes in [0, m)."""
    if pop_size < 1 or n < 1 or m < 1:
        raise ValidationError(
            f"pop_size, n and m must be >= 1 (got {pop_size}, {n}, {m})"
        )
    rng = as_generator(seed)
    return rng.integers(0, m, size=(pop_size, n), dtype=np.int64)


def greedy_seed(
    infrastructure: Infrastructure,
    request: Request,
    seed: SeedLike = None,
) -> IntArray:
    """One first-fit genome: place each resource on the first shuffled
    server with room.  Falls back to a random server when nothing fits
    (the genome stays fully placed; feasibility is not guaranteed)."""
    rng = as_generator(seed)
    m = infrastructure.m
    remaining = infrastructure.effective_capacity.copy()
    order = rng.permutation(m)
    genome = np.empty(request.n, dtype=np.int64)
    for k in range(request.n):
        demand = request.demand[k]
        placed = False
        for j in order:
            if np.all(demand <= remaining[j]):
                genome[k] = j
                remaining[j] -= demand
                placed = True
                break
        if not placed:
            genome[k] = rng.integers(0, m)
    return genome
