"""U-NSGA-III (Seada & Deb 2014) — the unified NSGA-III the paper cites.

Reference [28] of the paper is the *unified* NSGA-III: identical to
NSGA-III except for mating selection, where a niching-based binary
tournament restores selection pressure that plain random mating lacks
(and makes the algorithm degrade gracefully to single-objective
optimization).  Tournament rules, in order:

1. feasible beats infeasible; among infeasible, fewer violations wins
   (only when a constraint handler requests feasibility tiers);
2. if both candidates associate with the *same* reference direction,
   the one closer to it (smaller perpendicular distance) wins;
3. otherwise the winner is random.

Provided as a drop-in sibling of :class:`~repro.ea.nsga3.NSGA3`; the
allocator layer accepts it anywhere NSGA3 is accepted.
"""

from __future__ import annotations

import numpy as np

from repro.ea.nsga3 import NSGA3
from repro.ea.population import Population
from repro.types import FloatArray, IntArray

__all__ = ["UNSGA3"]


class UNSGA3(NSGA3):
    """NSGA-III with the unified niching tournament for mating."""

    algorithm_name = "unsga3"

    def _select_parents(
        self,
        population: Population,
        effective_objectives: FloatArray,
        rng: np.random.Generator,
    ) -> IntArray:
        pop = len(population)
        n_parents = self.config.population_size
        normalized = self.niching.normalize(effective_objectives)
        niche, distance = self.niching.associate(normalized)

        a = rng.integers(0, pop, size=n_parents)
        b = rng.integers(0, pop, size=n_parents)

        if self.handler.uses_feasibility_tiers:
            tiers = np.where(
                population.violations == 0, 0, 1 + population.violations
            )
        else:
            tiers = np.zeros(pop, dtype=np.int64)

        a_wins = tiers[a] < tiers[b]
        b_wins = tiers[b] < tiers[a]

        undecided = ~(a_wins | b_wins)
        same_niche = undecided & (niche[a] == niche[b])
        a_wins |= same_niche & (distance[a] < distance[b])
        b_wins |= same_niche & (distance[b] < distance[a])

        undecided = ~(a_wins | b_wins)
        coin = rng.random(n_parents) < 0.5
        winners = np.where(a_wins | (undecided & coin), a, b)
        return winners.astype(np.int64)
