"""Backtracking search engine with MRV ordering and optional bounding.

The engine enumerates assignments depth-first.  At every node it picks
the undecided VM with the fewest remaining candidates (minimum
remaining values — fail-first), tries its candidate servers in a
configurable value order, applies forward checking, and backtracks on
wipe-out.  An optional cost bound turns the same machinery into the
branch-and-bound optimizer used by :class:`~repro.cp.solver.CPSolver`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.cp.domains import DomainStore
from repro.cp.propagation import (
    groups_by_member,
    initial_prune,
    propagate_assignment,
)
from repro.errors import ValidationError
from repro.model.infrastructure import Infrastructure
from repro.model.request import Request
from repro.telemetry import get_registry
from repro.types import FloatArray, IntArray

__all__ = ["SearchLimits", "SearchStats", "CPSearch"]


@dataclass(frozen=True)
class SearchLimits:
    """Exploration budget; exceeded limits abort the search cleanly."""

    max_nodes: int = 200_000
    time_limit: float | None = None

    def __post_init__(self) -> None:
        if self.max_nodes < 1:
            raise ValidationError("max_nodes must be >= 1")
        if self.time_limit is not None and self.time_limit <= 0:
            raise ValidationError("time_limit must be > 0 when set")


@dataclass
class SearchStats:
    """Counters for reporting and tests."""

    nodes: int = 0
    backtracks: int = 0
    solutions: int = 0
    exhausted: bool = False
    aborted: bool = False
    elapsed: float = 0.0


class CPSearch:
    """One search over one problem instance.

    Parameters
    ----------
    infrastructure, request:
        The instance.
    base_usage:
        Committed usage (shrinks the free capacity).
    value_order:
        ``"index"`` (first-fit flavour), ``"cheapest"`` (by E+U rate) or
        ``"spread"`` (most residual room first).
    limits:
        Node/time budget.
    compiled:
        Optional :class:`~repro.engine.CompiledProblem` of the same
        instance; supplies the effective-capacity matrix, the E+U rate
        vector and the per-VM group index without recomputation.
    """

    def __init__(
        self,
        infrastructure: Infrastructure,
        request: Request,
        base_usage: FloatArray | None = None,
        value_order: str = "cheapest",
        limits: SearchLimits | None = None,
        compiled=None,
    ) -> None:
        if value_order not in ("index", "cheapest", "spread"):
            raise ValidationError(
                f"value_order must be index/cheapest/spread, got {value_order!r}"
            )
        self.infrastructure = infrastructure
        self.request = request
        self.value_order = value_order
        self.limits = limits or SearchLimits()
        effective = (
            compiled.effective_capacity
            if compiled is not None
            else infrastructure.effective_capacity
        )
        if base_usage is not None:
            free = effective - np.asarray(base_usage, dtype=np.float64)
        else:
            free = effective.copy()
        self.free_capacity = free
        if compiled is not None:
            self._rate = compiled.per_resource_rate
            self._member_groups = [list(ids) for ids in compiled.member_groups]
        else:
            self._rate = infrastructure.operating_cost + infrastructure.usage_cost
            self._member_groups = groups_by_member(request)
        self.stats = SearchStats()

    # ------------------------------------------------------------------
    def _ordered_candidates(
        self, domains: DomainStore, residual: FloatArray, vm: int
    ) -> IntArray:
        candidates = domains.candidates(vm)
        if self.value_order == "index" or candidates.size <= 1:
            return candidates
        if self.value_order == "cheapest":
            return candidates[np.argsort(self._rate[candidates], kind="stable")]
        # "spread": prefer the roomiest server (availability-oriented).
        headroom = residual[candidates].sum(axis=1)
        return candidates[np.argsort(-headroom, kind="stable")]

    def _select_vm(self, domains: DomainStore, assignment: IntArray) -> int:
        sizes = domains.domain_sizes()
        undecided = assignment < 0
        sizes = np.where(undecided, sizes, np.iinfo(np.int64).max)
        return int(np.argmin(sizes))

    # ------------------------------------------------------------------
    def solve(
        self,
        best_cost: float = np.inf,
        find_all_improving: bool = False,
    ) -> tuple[IntArray | None, float]:
        """Depth-first search.

        Parameters
        ----------
        best_cost:
            Branch-and-bound incumbent: subtrees whose optimistic cost
            reaches it are pruned.  ``inf`` means pure feasibility.
        find_all_improving:
            When True, keep searching after a solution for cheaper ones
            (full branch & bound); when False, return the first
            feasible placement.

        Returns
        -------
        ``(assignment, cost)`` of the best solution found (None if
        none); check ``stats.aborted`` to distinguish *proved
        infeasible* from *ran out of budget*.
        """
        n, m = self.request.n, self.infrastructure.m
        domains = DomainStore(n, m)
        start = time.perf_counter()
        self.stats = SearchStats()

        if not initial_prune(
            domains, self.infrastructure, self.request, self.free_capacity
        ):
            self.stats.exhausted = True
            self.stats.elapsed = time.perf_counter() - start
            registry = get_registry()
            registry.count("cp.solves")
            registry.observe("cp.solve_seconds", self.stats.elapsed)
            return None, np.inf

        assignment = np.full(n, -1, dtype=np.int64)
        residual = self.free_capacity.copy()
        best: IntArray | None = None
        incumbent = best_cost

        # Optimistic completion bound: each undecided VM pays at least
        # the cheapest rate still in its domain.
        def lower_bound(partial_cost: float) -> float:
            undecided = np.flatnonzero(assignment < 0)
            if undecided.size == 0:
                return partial_cost
            mins = [
                self._rate[domains.candidates(int(k))].min()
                if domains.domain_size(int(k))
                else np.inf
                for k in undecided
            ]
            return partial_cost + float(np.sum(mins))

        def recurse(partial_cost: float) -> bool:
            """Returns True to abort the whole search (budget hit)."""
            nonlocal best, incumbent
            self.stats.nodes += 1
            if self.stats.nodes >= self.limits.max_nodes:
                self.stats.aborted = True
                return True
            if (
                self.limits.time_limit is not None
                and time.perf_counter() - start >= self.limits.time_limit
            ):
                self.stats.aborted = True
                return True

            if np.all(assignment >= 0):
                self.stats.solutions += 1
                if partial_cost < incumbent:
                    incumbent = partial_cost
                    best = assignment.copy()
                return not find_all_improving

            if np.isfinite(incumbent) and lower_bound(partial_cost) >= incumbent:
                return False  # pruned

            vm = self._select_vm(domains, assignment)
            candidates = self._ordered_candidates(domains, residual, vm)
            demand = self.request.demand[vm]
            for server in candidates:
                server = int(server)
                if np.any(demand > residual[server] + 1e-9):
                    continue
                cost = partial_cost + float(self._rate[server])
                if np.isfinite(incumbent) and cost >= incumbent:
                    continue
                domains.push()
                assignment[vm] = server
                residual[server] -= demand
                ok = domains.assign(vm, server) and propagate_assignment(
                    domains,
                    self.infrastructure,
                    self.request,
                    self._member_groups,
                    assignment,
                    residual,
                    vm,
                    server,
                )
                if ok:
                    if recurse(cost):
                        return True
                    if best is not None and not find_all_improving:
                        # First solution requested and found: unwind.
                        residual[server] += demand
                        assignment[vm] = -1
                        domains.pop()
                        return False
                residual[server] += demand
                assignment[vm] = -1
                domains.pop()
                self.stats.backtracks += 1
            return False

        aborted = recurse(0.0)
        self.stats.exhausted = not aborted
        self.stats.elapsed = time.perf_counter() - start
        # Counters are recorded once per solve (never per node): the
        # propagation/backtrack hot path stays untouched.
        registry = get_registry()
        registry.count("cp.solves")
        registry.count("cp.nodes", self.stats.nodes)
        registry.count("cp.backtracks", self.stats.backtracks)
        registry.count("cp.solutions", self.stats.solutions)
        if self.stats.aborted:
            registry.count("cp.aborts")
        registry.observe("cp.solve_seconds", self.stats.elapsed)
        return best, (incumbent if best is not None else np.inf)
