"""Per-variable domains with trail-based backtracking.

Each of the n VMs has a boolean candidate mask over the m servers.
Search proceeds by *frames*: :meth:`DomainStore.push` opens a frame,
removals are logged, and :meth:`DomainStore.pop` undoes everything the
frame removed — the classic CP trail, so backtracking costs only what
the failed subtree actually pruned (no matrix copies).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.types import BoolArray, IntArray

__all__ = ["DomainStore"]


class DomainStore:
    """Trailed boolean domain matrix of shape (n, m)."""

    def __init__(self, n: int, m: int, initial: BoolArray | None = None) -> None:
        if n < 1 or m < 1:
            raise ValidationError(f"n and m must be >= 1 (got {n}, {m})")
        self.n = int(n)
        self.m = int(m)
        if initial is None:
            self.mask = np.ones((n, m), dtype=bool)
        else:
            initial = np.asarray(initial, dtype=bool)
            if initial.shape != (n, m):
                raise ValidationError(
                    f"initial domains shape {initial.shape}, expected {(n, m)}"
                )
            self.mask = initial.copy()
        # Trail: one list of (vm, removed-server-indices) per frame.
        self._trail: list[list[tuple[int, IntArray]]] = []

    # ------------------------------------------------------------------
    # Frames
    # ------------------------------------------------------------------
    def push(self) -> None:
        """Open a new backtracking frame."""
        self._trail.append([])

    def pop(self) -> None:
        """Undo every removal of the newest frame."""
        if not self._trail:
            raise ValidationError("pop() without a matching push()")
        for vm, removed in reversed(self._trail.pop()):
            self.mask[vm, removed] = True

    @property
    def depth(self) -> int:
        """Number of open frames."""
        return len(self._trail)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def candidates(self, vm: int) -> IntArray:
        """Current candidate servers of ``vm`` (ascending ids)."""
        return np.flatnonzero(self.mask[vm]).astype(np.int64)

    def domain_size(self, vm: int) -> int:
        """Number of candidates left for ``vm``."""
        return int(self.mask[vm].sum())

    def domain_sizes(self) -> IntArray:
        """Domain size per VM (vectorized, for MRV ordering)."""
        return self.mask.sum(axis=1).astype(np.int64)

    def contains(self, vm: int, server: int) -> bool:
        """Whether ``server`` is still a candidate for ``vm``."""
        return bool(self.mask[vm, server])

    def is_empty(self, vm: int) -> bool:
        """True when ``vm`` has no candidates (dead end)."""
        return not self.mask[vm].any()

    # ------------------------------------------------------------------
    # Updates (logged to the current frame)
    # ------------------------------------------------------------------
    def _log(self, vm: int, removed: IntArray) -> None:
        if removed.size and self._trail:
            self._trail[-1].append((vm, removed))

    def remove_value(self, vm: int, server: int) -> bool:
        """Remove one candidate; returns False if the domain died."""
        if self.mask[vm, server]:
            self.mask[vm, server] = False
            self._log(vm, np.asarray([server], dtype=np.int64))
        return bool(self.mask[vm].any())

    def remove_where(self, vm: int, condition: BoolArray) -> bool:
        """Remove every candidate where ``condition`` (length m) holds."""
        condition = np.asarray(condition, dtype=bool)
        removed = np.flatnonzero(self.mask[vm] & condition).astype(np.int64)
        if removed.size:
            self.mask[vm, removed] = False
            self._log(vm, removed)
        return bool(self.mask[vm].any())

    def restrict_to(self, vm: int, allowed: BoolArray) -> bool:
        """Intersect the domain with ``allowed`` (length m mask)."""
        return self.remove_where(vm, ~np.asarray(allowed, dtype=bool))

    def assign(self, vm: int, server: int) -> bool:
        """Collapse the domain of ``vm`` to a single server."""
        if not self.mask[vm, server]:
            return False
        only = np.zeros(self.m, dtype=bool)
        only[server] = True
        return self.restrict_to(vm, only)
