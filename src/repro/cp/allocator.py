"""Constraint-programming allocator (the paper's "Constraint
Programming" bar in Figures 7-11).

Requests are solved sequentially: each one gets a complete CP search
against the residual capacity left by its predecessors, and is rejected
when that search proves infeasible (or exhausts its budget — the
scaling failure Figure 8 shows).  Accepted placements are optimal in
usage/operating cost when ``optimize=True``, or first-feasible when
speed matters.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.allocator import Allocator, BatchOutcome
from repro.cp.search import SearchLimits
from repro.cp.solver import CPSolver
from repro.model.infrastructure import Infrastructure
from repro.model.placement import UNPLACED
from repro.model.request import Request
from repro.types import AlgorithmKind, FloatArray, IntArray
from repro.utils.timers import Stopwatch

__all__ = ["CPAllocator"]


class CPAllocator(Allocator):
    """Sequential complete search per request.

    Parameters
    ----------
    optimize:
        Branch & bound for minimal cost per request (True) or first
        feasible placement (False).
    limits:
        Per-request search budget.
    value_order:
        Candidate ordering heuristic (see :class:`~repro.cp.search.CPSearch`).
    """

    name = "constraint_programming"
    kind = AlgorithmKind.CONSTRAINT_PROGRAMMING

    def __init__(
        self,
        optimize: bool = True,
        limits: SearchLimits | None = None,
        value_order: str = "cheapest",
    ) -> None:
        self.optimize = bool(optimize)
        self.limits = limits or SearchLimits(max_nodes=50_000, time_limit=10.0)
        self.value_order = value_order

    def allocate(
        self,
        infrastructure: Infrastructure,
        requests: Sequence[Request],
        base_usage: FloatArray | None = None,
        previous_assignment: IntArray | None = None,
    ) -> BatchOutcome:
        """Solve each request exactly via CP; see :meth:`Allocator.allocate`."""
        merged, owner = self.merge_requests(requests)
        stopwatch = Stopwatch().start()

        usage = (
            np.zeros((infrastructure.m, infrastructure.h))
            if base_usage is None
            else np.asarray(base_usage, dtype=np.float64).copy()
        )
        assignment = np.full(merged.n, UNPLACED, dtype=np.int64)
        total_nodes = 0
        proved_rejections = 0
        budget_rejections = 0

        offset = 0
        for request in requests:
            # Per-request compilation: cached across windows, so a
            # re-submitted or re-optimized request skips the group-index
            # and capacity precomputation entirely.
            solver = CPSolver(
                infrastructure,
                request,
                base_usage=usage,
                limits=self.limits,
                value_order=self.value_order,
                compiled=self.compile_problem(infrastructure, request),
            )
            solution = solver.optimize() if self.optimize else solver.find_feasible()
            total_nodes += solution.stats.nodes
            if solution.found:
                local = solution.assignment
                assignment[offset : offset + request.n] = local
                np.add.at(usage, local, request.demand)
            elif solution.proved:
                proved_rejections += 1
            else:
                budget_rejections += 1
            offset += request.n

        stopwatch.stop()
        return self.finalize(
            infrastructure,
            merged,
            owner,
            assignment,
            elapsed=stopwatch.elapsed,
            base_usage=base_usage,
            previous_assignment=previous_assignment,
            extra={
                "nodes": total_nodes,
                "proved_rejections": proved_rejections,
                "budget_rejections": budget_rejections,
            },
        )
