"""Constraint-programming allocator (the paper's "Constraint
Programming" bar in Figures 7-11).

Requests are solved sequentially: each one gets a complete CP search
against the residual capacity left by its predecessors, and is rejected
when that search proves infeasible (or exhausts its budget — the
scaling failure Figure 8 shows).  Accepted placements are optimal in
usage/operating cost when ``optimize=True``, or first-feasible when
speed matters.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.allocator import Allocator, AnytimeRun, BatchOutcome
from repro.cp.search import SearchLimits
from repro.cp.solver import CPSolver
from repro.model.infrastructure import Infrastructure
from repro.model.placement import UNPLACED
from repro.model.request import Request
from repro.types import AlgorithmKind, FloatArray, IntArray
from repro.utils.scatter import scatter_rows

__all__ = ["CPAllocator"]


class _CPAnytimeRun(AnytimeRun):
    """Request-granular anytime CP solve.

    One work unit = one request's complete search against the residual
    capacity, so the incumbent between steps is always a *consistent*
    partial batch: every request processed so far is either optimally
    placed or rejected, the rest are pending (UNPLACED, hence counted
    as rejections if the run is frozen now — the honest reading of an
    interrupted sequential solve).  A wall-clock deadline converts the
    still-pending tail into budget rejections, mirroring what the
    per-request ``SearchLimits`` budget does inside a single search.
    """

    def __init__(
        self,
        allocator: "CPAllocator",
        infrastructure: Infrastructure,
        requests: Sequence[Request],
        base_usage: FloatArray | None = None,
        previous_assignment: IntArray | None = None,
    ) -> None:
        merged, owner = Allocator.merge_requests(requests)
        super().__init__(
            allocator,
            infrastructure,
            merged,
            owner,
            base_usage=base_usage,
            previous_assignment=previous_assignment,
        )
        self._requests = list(requests)
        self._usage = (
            np.zeros((infrastructure.m, infrastructure.h))
            if base_usage is None
            else np.asarray(base_usage, dtype=np.float64).copy()
        )
        self._assignment = np.full(merged.n, UNPLACED, dtype=np.int64)
        self._next = 0
        self._offset = 0
        self._nodes = 0
        self._proved_rejections = 0
        self._budget_rejections = 0
        self._deadline: float | None = None

    def _solve_one(self) -> None:
        allocator: CPAllocator = self.allocator
        request = self._requests[self._next]
        limits = allocator.limits
        if self._deadline is not None:
            # Never let one request's search outlive the global clock:
            # its per-request time budget shrinks to the remaining wall
            # time (the node budget still applies unchanged).
            remaining = self._deadline - time.perf_counter()
            if remaining <= 0.0:
                self._reject_pending()
                return
            if limits.time_limit is None or limits.time_limit > remaining:
                limits = SearchLimits(
                    max_nodes=limits.max_nodes, time_limit=remaining
                )
        # Per-request compilation: cached across windows, so a
        # re-submitted or re-optimized request skips the group-index
        # and capacity precomputation entirely.
        solver = CPSolver(
            self.infrastructure,
            request,
            base_usage=self._usage,
            limits=limits,
            value_order=allocator.value_order,
            compiled=allocator.compile_problem(self.infrastructure, request),
        )
        solution = solver.optimize() if allocator.optimize else solver.find_feasible()
        self._nodes += solution.stats.nodes
        if solution.found:
            local = solution.assignment
            self._assignment[self._offset : self._offset + request.n] = local
            self._usage += scatter_rows(
                local, request.demand, self._usage.shape[0]
            )
        elif solution.proved:
            self._proved_rejections += 1
        else:
            self._budget_rejections += 1
        self._offset += request.n
        self._next += 1

    def _reject_pending(self) -> None:
        """Deadline hit: the unprocessed tail becomes budget rejections."""
        self._budget_rejections += len(self._requests) - self._next
        self._next = len(self._requests)

    def step(self, budget: int = 1) -> bool:
        for _ in range(int(budget)):
            if self._next >= len(self._requests):
                return False
            if (
                self._deadline is not None
                and time.perf_counter() >= self._deadline
            ):
                self._reject_pending()
                return False
            self._solve_one()
        return self._next < len(self._requests)

    def best_solution(self) -> IntArray:
        return self._assignment.copy()

    def set_deadline(self, deadline: float) -> None:
        self._deadline = float(deadline)

    def _extra(self) -> dict:
        return {
            "nodes": self._nodes,
            "proved_rejections": self._proved_rejections,
            "budget_rejections": self._budget_rejections,
        }

    # ------------------------------------------------------------------
    # Portfolio checkpoint plumbing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-able snapshot of the sequential solve's cursor state."""
        return {
            "next": self._next,
            "offset": self._offset,
            "assignment": self._assignment.tolist(),
            "usage": self._usage.tolist(),
            "nodes": self._nodes,
            "proved_rejections": self._proved_rejections,
            "budget_rejections": self._budget_rejections,
            "elapsed": self.stopwatch.elapsed,
        }

    def load_state_dict(self, payload: dict) -> None:
        """Restore a :meth:`state_dict` snapshot byte-identically.

        The search itself is deterministic per request, so restoring
        the cursor plus the committed usage reproduces the remaining
        solve exactly."""
        from repro.utils.timers import Stopwatch

        self._next = int(payload["next"])
        self._offset = int(payload["offset"])
        self._assignment = np.asarray(payload["assignment"], dtype=np.int64)
        self._usage = np.asarray(payload["usage"], dtype=np.float64)
        self._nodes = int(payload["nodes"])
        self._proved_rejections = int(payload["proved_rejections"])
        self._budget_rejections = int(payload["budget_rejections"])
        self.stopwatch = Stopwatch(elapsed=float(payload["elapsed"])).start()


class CPAllocator(Allocator):
    """Sequential complete search per request.

    Parameters
    ----------
    optimize:
        Branch & bound for minimal cost per request (True) or first
        feasible placement (False).
    limits:
        Per-request search budget.
    value_order:
        Candidate ordering heuristic (see :class:`~repro.cp.search.CPSearch`).
    """

    name = "constraint_programming"
    kind = AlgorithmKind.CONSTRAINT_PROGRAMMING

    def __init__(
        self,
        optimize: bool = True,
        limits: SearchLimits | None = None,
        value_order: str = "cheapest",
    ) -> None:
        self.optimize = bool(optimize)
        self.limits = limits or SearchLimits(max_nodes=50_000, time_limit=10.0)
        self.value_order = value_order

    def start(
        self,
        infrastructure: Infrastructure,
        requests: Sequence[Request],
        base_usage: FloatArray | None = None,
        previous_assignment: IntArray | None = None,
    ) -> _CPAnytimeRun:
        """Begin a request-granular anytime solve; see :class:`AnytimeRun`."""
        return _CPAnytimeRun(
            self,
            infrastructure,
            requests,
            base_usage=base_usage,
            previous_assignment=previous_assignment,
        )

    def allocate(
        self,
        infrastructure: Infrastructure,
        requests: Sequence[Request],
        base_usage: FloatArray | None = None,
        previous_assignment: IntArray | None = None,
    ) -> BatchOutcome:
        """Solve each request exactly via CP; see :meth:`Allocator.allocate`."""
        run = self.start(
            infrastructure,
            requests,
            base_usage=base_usage,
            previous_assignment=previous_assignment,
        )
        while run.step():
            pass
        return run.finish()
