"""Constraint-programming solver — the reproduction's Choco substitute.

The paper's baseline drives a Java constraint solver (Choco) over the
matrix model of Section III.  This package implements the same
capability from scratch: per-VM server domains
(:class:`DomainStore`), forward-checking propagation of the capacity
and affinity/anti-affinity constraints (:mod:`propagation`), a
backtracking search with minimum-remaining-values variable ordering
(:class:`CPSearch`) and a branch-and-bound optimization mode over the
usage/operating cost (:class:`CPSolver`).

Like the original, it is complete: on small instances it either finds
a feasible (or cost-optimal) placement or proves none exists.  Also
like the original, it does not scale — Figure 8's blow-up is the
expected behaviour, so searches accept node and time limits.
"""

from repro.cp.domains import DomainStore
from repro.cp.search import CPSearch, SearchLimits, SearchStats
from repro.cp.solver import CPSolver, CPSolution
from repro.cp.allocator import CPAllocator

__all__ = [
    "DomainStore",
    "CPSearch",
    "SearchLimits",
    "SearchStats",
    "CPSolver",
    "CPSolution",
    "CPAllocator",
]
