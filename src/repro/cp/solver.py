"""CPSolver: the user-facing constraint-programming facade.

Mirrors how the paper drives Choco: feed it the matrix model, ask for
either any feasible placement or the cost-minimal one, and accept that
the search is complete but exponential.  The solver also doubles as
the repair engine of the "NSGA-III with constraint solver" baseline:
:meth:`CPSolver.repair_population` re-solves each infeasible genome
while pinning as many genes as possible to their current values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cp.search import CPSearch, SearchLimits, SearchStats
from repro.errors import ValidationError
from repro.model.infrastructure import Infrastructure
from repro.model.request import Request
from repro.telemetry import RepairInvoked, get_bus, get_registry
from repro.types import FloatArray, IntArray

__all__ = ["CPSolution", "CPSolver"]


@dataclass(frozen=True)
class CPSolution:
    """Result of one CP solve.

    ``assignment`` is None when no placement was found; ``proved``
    tells whether that is a proof of infeasibility (search exhausted)
    or merely budget exhaustion.
    """

    assignment: IntArray | None
    cost: float
    stats: SearchStats

    @property
    def found(self) -> bool:
        """Whether a feasible placement was produced."""
        return self.assignment is not None

    @property
    def proved(self) -> bool:
        """Whether the search ran to completion (no budget abort)."""
        return self.stats.exhausted


class CPSolver:
    """Complete solver for one (infrastructure, request) instance.

    Parameters
    ----------
    infrastructure, request:
        The instance.
    base_usage:
        Committed usage from earlier windows.
    limits:
        Node/time budget per solve call.
    value_order:
        Candidate ordering heuristic (see :class:`CPSearch`).
    compiled:
        Optional :class:`~repro.engine.CompiledProblem` of the same
        instance, shared with every :class:`CPSearch` this solver
        spawns (each repair call otherwise recompiles the group index).
    """

    def __init__(
        self,
        infrastructure: Infrastructure,
        request: Request,
        base_usage: FloatArray | None = None,
        limits: SearchLimits | None = None,
        value_order: str = "cheapest",
        compiled=None,
    ) -> None:
        self.infrastructure = infrastructure
        self.request = request
        self.base_usage = base_usage
        self.limits = limits or SearchLimits()
        self.value_order = value_order
        self.compiled = compiled

    def _search(self) -> CPSearch:
        return CPSearch(
            self.infrastructure,
            self.request,
            base_usage=self.base_usage,
            value_order=self.value_order,
            limits=self.limits,
            compiled=self.compiled,
        )

    # ------------------------------------------------------------------
    def find_feasible(self) -> CPSolution:
        """First feasible placement (or proof of infeasibility)."""
        search = self._search()
        assignment, cost = search.solve(find_all_improving=False)
        return CPSolution(assignment=assignment, cost=cost, stats=search.stats)

    def optimize(self) -> CPSolution:
        """Cost-minimal placement via branch & bound."""
        search = self._search()
        assignment, cost = search.solve(find_all_improving=True)
        return CPSolution(assignment=assignment, cost=cost, stats=search.stats)

    # ------------------------------------------------------------------
    def repair_genome(self, assignment: IntArray) -> IntArray:
        """CP-based repair: keep the genome where it is consistent,
        re-solve the rest.

        Strategy: seed the search's value order so each VM tries its
        current server first, then run a feasibility search.  If the
        search fails (or the budget dies), the genome is returned
        unchanged — matching the paper's observation that the CP-repair
        variant "remains too weak to repair genes".
        """
        assignment = np.asarray(assignment, dtype=np.int64)
        if assignment.shape != (self.request.n,):
            raise ValidationError(
                f"genome shape {assignment.shape}, expected ({self.request.n},)"
            )

        search = self._search()

        original_order = search._ordered_candidates

        def seeded_order(domains, residual, vm):  # type: ignore[no-untyped-def]
            candidates = original_order(domains, residual, vm)
            current = int(assignment[vm])
            if current in candidates:
                rest = candidates[candidates != current]
                return np.concatenate(([current], rest))
            return candidates

        search._ordered_candidates = seeded_order  # type: ignore[method-assign]
        solved, _cost = search.solve(find_all_improving=False)
        moves = (
            0 if solved is None else int(np.count_nonzero(solved != assignment))
        )
        get_registry().count("cp.repair.individuals", repairer="cp")
        get_registry().count("cp.repair.moves", moves, repairer="cp")
        bus = get_bus()
        if bus.enabled:
            bus.emit(
                RepairInvoked(
                    repairer="cp", moves=moves, repaired=solved is not None
                )
            )
        return assignment.copy() if solved is None else solved

    def repair_population(self, population: IntArray) -> IntArray:
        """Repair hook compatible with
        :class:`~repro.ea.constraint_handling.RepairHandling`."""
        population = np.asarray(population, dtype=np.int64)
        if population.ndim == 1:
            return self.repair_genome(population)
        if self.compiled is not None:
            constraints = self.compiled.constraint_set(
                base_usage=self.base_usage, include_assignment=False
            )
        else:
            from repro.constraints.registry import ConstraintSet

            constraints = ConstraintSet(
                self.infrastructure,
                self.request,
                base_usage=self.base_usage,
                include_assignment=False,
            )
        feasible = constraints.batch_feasible(population)
        if feasible.all():
            return population
        repaired = population.copy()
        for i in np.flatnonzero(~feasible):
            repaired[i] = self.repair_genome(population[i])
        return repaired
