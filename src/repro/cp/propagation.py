"""Constraint propagation: initial pruning and forward checking.

Two layers, as in any CP solver:

* :func:`initial_prune` — node-consistency before search: a server
  that cannot fit a VM's demand even when empty leaves that VM's
  domain; anti-affinity groups larger than the number of distinct
  locations are detected as trivially infeasible.
* :func:`propagate_assignment` — forward checking after ``vm = server``
  is decided: the changed server's residual capacity filters the
  domains of unassigned VMs, and the decided VM's groups tighten its
  partners' domains (same-server partners collapse to the server,
  same-datacenter partners restrict to the datacenter, different-*
  partners lose the location).
"""

from __future__ import annotations

import numpy as np

from repro.cp.domains import DomainStore
from repro.model.infrastructure import Infrastructure
from repro.model.request import Request
from repro.types import FloatArray, PlacementRule

__all__ = ["initial_prune", "propagate_assignment", "groups_by_member"]


def groups_by_member(request: Request) -> list[list[int]]:
    """Index: for each VM, the group ids it belongs to."""
    index: list[list[int]] = [[] for _ in range(request.n)]
    for gi, group in enumerate(request.groups):
        for member in group.members:
            index[member].append(gi)
    return index


def initial_prune(
    domains: DomainStore,
    infrastructure: Infrastructure,
    request: Request,
    free_capacity: FloatArray,
) -> bool:
    """Node consistency; returns False when some domain died.

    ``free_capacity`` is effective capacity minus committed usage —
    per-(server, attribute) room available to this request.
    """
    # Capacity: server j can ever host VM k only if demand fits the
    # (initially) free room.  One broadcast comparison covers all pairs.
    fits = np.all(
        request.demand[:, None, :] <= free_capacity[None, :, :] + 1e-9, axis=2
    )  # (n, m)
    for vm in range(request.n):
        if not domains.restrict_to(vm, fits[vm]):
            return False

    # Anti-affinity pigeonhole: a DIFFERENT_DATACENTERS group larger
    # than g (or DIFFERENT_SERVERS larger than m) cannot be satisfied.
    for group in request.groups:
        if group.rule is PlacementRule.DIFFERENT_DATACENTERS:
            if group.size > infrastructure.g:
                return False
        elif group.rule is PlacementRule.DIFFERENT_SERVERS:
            if group.size > infrastructure.m:
                return False
    return True


def propagate_assignment(
    domains: DomainStore,
    infrastructure: Infrastructure,
    request: Request,
    member_groups: list[list[int]],
    assignment: np.ndarray,
    residual: FloatArray,
    vm: int,
    server: int,
) -> bool:
    """Forward checking after deciding ``vm = server``.

    ``assignment`` holds -1 for undecided VMs; ``residual`` is the
    remaining free capacity *after* the decision was applied.  Returns
    False on any domain wipe-out.
    """
    # Capacity: only `server`'s residual changed; drop it from the
    # domains of undecided VMs it can no longer fit.
    room = residual[server]
    undecided = np.flatnonzero(assignment < 0)
    if undecided.size:
        too_big = np.any(request.demand[undecided] > room + 1e-9, axis=1)
        for k in undecided[too_big]:
            if int(k) == vm:
                continue
            if not domains.remove_value(int(k), server):
                return False

    # Group rules touching the decided VM.
    dc_of = infrastructure.server_datacenter
    server_dc = int(dc_of[server])
    for gi in member_groups[vm]:
        group = request.groups[gi]
        rule = group.rule
        for partner in group.members:
            if partner == vm or assignment[partner] >= 0:
                continue
            if rule is PlacementRule.SAME_SERVER:
                ok = domains.assign(partner, server)
            elif rule is PlacementRule.SAME_DATACENTER:
                ok = domains.restrict_to(partner, dc_of == server_dc)
            elif rule is PlacementRule.DIFFERENT_SERVERS:
                ok = domains.remove_value(partner, server)
            elif rule is PlacementRule.DIFFERENT_DATACENTERS:
                ok = domains.remove_where(partner, dc_of == server_dc)
            else:  # pragma: no cover - enum is exhaustive
                ok = True
            if not ok:
                return False
    return True
