"""Seeded random-scenario fuzzing over the whole conformance suite.

One fuzz iteration generates a random scenario (sizes cycle through
``FuzzConfig.sizes``; tightness, heterogeneity and affinity density are
drawn per scenario), then drives the three conformance layers:

1. **differential oracle** — a random walk of moves over the merged
   instance, replayed through the incremental evaluator and
   cross-checked against the reference evaluator (plus LP/CP backends
   when the instance qualifies);
2. **allocator invariants** — a real allocator (round robin by
   default: deterministic and fast) places the window and its
   :class:`~repro.allocator.BatchOutcome` must satisfy every invariant
   in the catalog;
3. **metamorphic laws** — the outcome's placement is pushed through
   all four transformation laws.

Everything is derived from one seed, so a failing iteration is
reproducible from the ``(seed, index)`` pair printed in its failure
record.  ``python -m repro verify --fuzz N --seed S`` is a thin shell
around :func:`run_fuzz`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.allocator import Allocator
from repro.engine import CompiledProblem
from repro.model.placement import UNPLACED
from repro.model.request import Request
from repro.telemetry import get_registry
from repro.verify.invariants import CheckContext, run_invariants
from repro.verify.metamorphic import ALL_LAWS, run_laws
from repro.verify.oracle import DifferentialOracle
from repro.workloads.generator import ScenarioGenerator, ScenarioSpec

__all__ = ["FuzzConfig", "FuzzFailure", "FuzzReport", "run_fuzz"]


def _default_allocator() -> Allocator:
    from repro.baselines.round_robin import RoundRobinAllocator

    return RoundRobinAllocator()


@dataclass(frozen=True)
class FuzzConfig:
    """Knobs of one fuzzing campaign.

    Parameters
    ----------
    scenarios:
        Iterations to run (``--fuzz N``).
    seed:
        Master seed; every iteration derives its own stream from it.
    sizes:
        (servers, vms) pairs cycled across iterations.
    walk_detours:
        Random intermediate moves per VM in the oracle's replay walk.
    checkpoint_every:
        Oracle parity checkpoint cadence along the walk.
    allocator_factory:
        Builds the allocator whose outcomes feed the invariant and
        metamorphic layers.
    perturb:
        Fault-injection ``(term, delta)`` forwarded to the oracle
        (self-test: the campaign must then fail).
    dynamic_scenarios:
        Registered dynamic scenario names (``--scenario NAME``, see
        :mod:`repro.workloads.scenarios`).  When non-empty, each fuzz
        iteration also compiles one of them (cycled, at an
        iteration-derived seed) and checks the dynamic metamorphic
        laws of :mod:`repro.verify.dynamic` against its stream.
    """

    scenarios: int = 20
    seed: int = 0
    sizes: tuple[tuple[int, int], ...] = ((4, 8), (8, 16), (16, 32))
    walk_detours: int = 2
    checkpoint_every: int = 40
    allocator_factory: Callable[[], Allocator] = field(
        default=_default_allocator
    )
    perturb: tuple[str, float] | None = None
    dynamic_scenarios: tuple[str, ...] = ()


@dataclass(frozen=True)
class FuzzFailure:
    """One reproducible conformance failure."""

    index: int
    seed: int
    servers: int
    vms: int
    stage: str  #: "oracle", "invariants", "metamorphic" or "dynamic"
    message: str

    def __str__(self) -> str:
        return (
            f"scenario {self.index} (seed={self.seed}, "
            f"{self.servers}x{self.vms}) {self.stage}:\n{self.message}"
        )


@dataclass
class FuzzReport:
    """Outcome of one :func:`run_fuzz` campaign."""

    config: FuzzConfig
    scenarios_run: int = 0
    oracle_checks: int = 0
    invariant_checks: int = 0
    law_checks: int = 0
    dynamic_checks: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the campaign found nothing."""
        return not self.failures

    def format(self) -> str:
        """Campaign summary plus every failure's diagnosis."""
        dynamic = (
            f"{self.dynamic_checks} dynamic-law checks, "
            if self.dynamic_checks
            else ""
        )
        lines = [
            f"verify: {self.scenarios_run} scenario(s), "
            f"{self.oracle_checks} oracle checks, "
            f"{self.invariant_checks} invariant checks, "
            f"{self.law_checks} metamorphic checks, "
            f"{dynamic}"
            f"{len(self.failures)} failure(s)"
        ]
        lines.extend(str(f) for f in self.failures)
        return "\n".join(lines)


def _random_spec(
    rng: np.random.Generator, servers: int, vms: int
) -> ScenarioSpec:
    return ScenarioSpec(
        servers=servers,
        datacenters=min(servers, int(rng.integers(1, 4))),
        vms=vms,
        tightness=float(rng.uniform(0.4, 1.1)),
        heterogeneity=float(rng.uniform(0.0, 0.5)),
        affinity_probability=float(rng.uniform(0.3, 0.9)),
    )


def run_fuzz(config: FuzzConfig | None = None) -> FuzzReport:
    """Run one fuzzing campaign; see the module docstring for shape."""
    config = config or FuzzConfig()
    report = FuzzReport(config=config)
    registry = get_registry()
    master = np.random.SeedSequence(config.seed)

    for index, child in enumerate(master.spawn(config.scenarios)):
        rng = np.random.default_rng(child)
        servers, vms = config.sizes[index % len(config.sizes)]
        spec = _random_spec(rng, servers, vms)
        scenario = ScenarioGenerator(
            spec, seed=np.random.default_rng(child.spawn(1)[0])
        ).generate()
        merged, owner = Request.concatenate(scenario.requests)
        compiled = CompiledProblem.compile(scenario.infrastructure, merged)

        def fail(stage: str, message: str) -> None:
            report.failures.append(
                FuzzFailure(
                    index=index,
                    seed=config.seed,
                    servers=servers,
                    vms=vms,
                    stage=stage,
                    message=message,
                )
            )

        # 1. Differential oracle over a random target assignment (some
        # genes deliberately unplaced) reached through a move walk.
        target = rng.integers(0, scenario.infrastructure.m, size=merged.n)
        target[rng.random(merged.n) < 0.1] = UNPLACED
        with_previous = bool(rng.random() < 0.5)
        previous = (
            rng.integers(0, scenario.infrastructure.m, size=merged.n)
            if with_previous
            else None
        )
        oracle = DifferentialOracle(
            scenario.infrastructure,
            merged,
            previous_assignment=previous,
            downtime_mode="literal" if rng.random() < 0.3 else "shortfall",
            per_server_operating=bool(rng.random() < 0.3),
            compiled=compiled,
            perturb=config.perturb,
        )
        oracle_report = oracle.replay(
            target,
            seed=rng,
            detours=config.walk_detours,
            checkpoint_every=config.checkpoint_every,
        )
        report.oracle_checks += oracle_report.checks
        if not oracle_report.ok:
            fail("oracle", oracle_report.format())

        # 2. A real allocator's outcome must satisfy every invariant.
        allocator = config.allocator_factory()
        try:
            outcome = allocator.allocate(
                scenario.infrastructure, scenario.requests
            )
        finally:
            allocator.close()
        ctx = CheckContext(
            infrastructure=scenario.infrastructure,
            requests=scenario.requests,
            outcome=outcome,
        )
        invariant_report = run_invariants(ctx)
        report.invariant_checks += len(invariant_report.checked)
        if not invariant_report.ok:
            fail("invariants", invariant_report.format())

        # 2b. Fully placed outcomes also go through the oracle with the
        # default scoring modes, where the LP relaxation bound and the
        # CP optimum cross-checks apply.
        if np.all(outcome.assignment != UNPLACED):
            outcome_oracle = DifferentialOracle(
                scenario.infrastructure,
                merged,
                compiled=compiled,
                perturb=config.perturb,
            )
            outcome_report = outcome_oracle.replay(
                outcome.assignment,
                seed=rng,
                detours=config.walk_detours,
                checkpoint_every=config.checkpoint_every,
            )
            report.oracle_checks += outcome_report.checks
            if not outcome_report.ok:
                fail("oracle", outcome_report.format())

        # 3. Metamorphic laws over that same placement.
        law_violations = run_laws(
            scenario.infrastructure,
            scenario.requests,
            outcome.assignment,
            rng=rng,
            previous_assignment=previous,
        )
        report.law_checks += len(ALL_LAWS)
        if law_violations:
            fail(
                "metamorphic",
                "\n".join(str(v) for v in law_violations),
            )

        # 4. Optional dynamic stage: compile one registered scenario at
        # an iteration-derived seed and check the stream-level laws.
        if config.dynamic_scenarios:
            from repro.verify.dynamic import check_dynamic_laws

            name = config.dynamic_scenarios[
                index % len(config.dynamic_scenarios)
            ]
            dynamic_report = check_dynamic_laws(
                name,
                seed=int(rng.integers(2**31)),
                allocator_factory=config.allocator_factory,
            )
            report.dynamic_checks += dynamic_report.checks
            if not dynamic_report.ok:
                fail("dynamic", dynamic_report.format())

        report.scenarios_run += 1
        registry.count("verify.fuzz.scenarios")

    registry.count("verify.fuzz.failures", len(report.failures))
    return report
