"""Service conformance: the live control plane vs the batch scheduler.

The service's claim (``docs/SERVICE.md``) is that live admission is
just the paper's cyclic time-window model run in micro-batches: every
mutation lands in a replayable admission log, and replaying that log
through a *fresh* batch :class:`~repro.scheduler.window.TimeWindowScheduler`
with the same seeded admission allocator must reproduce the live
state byte for byte — residents, genes, committed-usage ledger, clock.
This module is that differential oracle:

1. obtain a live session — either synthetically (drive a seeded trace
   through :class:`~repro.service.state.ServiceState` in-process, plus
   one real background-style reoptimization pass) or from a service
   checkpoint directory written by ``python -m repro serve``;
2. replay its admission log through
   :func:`~repro.service.state.replay_admission_log`;
3. compare per-record decisions and final state bytes, then run the
   PR 3 invariant catalog over the replayed placements.

``python -m repro verify --check-service [DIR]`` runs this from the
CLI; telemetry lands in ``verify.service.*``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ea.config import NSGAConfig
from repro.model.request import Request
from repro.telemetry import get_registry
from repro.verify.invariants import CheckContext, run_invariants
from repro.workloads.generator import ScenarioSpec
from repro.workloads.traces import TraceGenerator, TraceSpec

__all__ = [
    "ServiceMismatch",
    "ServiceConformanceReport",
    "check_service_conformance",
]

#: Invariants meaningful for a committed (all-accepted) placement.
_PLACEMENT_INVARIANTS = (
    "assignment_well_formed",
    "capacity_respected",
    "group_closure",
)


@dataclass(frozen=True)
class ServiceMismatch:
    """One divergence between the live session and its replay."""

    field: str
    message: str

    def __str__(self) -> str:
        return f"{self.field}: {self.message}"


@dataclass
class ServiceConformanceReport:
    """Outcome of one :func:`check_service_conformance` pass."""

    source: str  #: "synthetic" or the checkpoint directory
    records: int = 0
    windows: int = 0
    reoptimizations: int = 0
    residents: int = 0
    comparisons: int = 0
    invariants_checked: int = 0
    mismatches: list[ServiceMismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the replay reproduced the live session exactly."""
        return not self.mismatches

    def format(self) -> str:
        """Human-readable summary plus each mismatch."""
        header = (
            f"service conformance [{self.source}]: {self.records} log records "
            f"({self.windows} windows, {self.reoptimizations} reoptimizations) "
            f"→ {self.residents} residents, {self.comparisons} comparisons, "
            f"{self.invariants_checked} invariants, "
            f"{len(self.mismatches)} mismatches"
        )
        if self.ok:
            return header + "\nreplay reproduces the live ledger byte-for-byte"
        return "\n".join([header, *map(str, self.mismatches)])


def _flag(report: ServiceConformanceReport, field_name: str, message: str) -> None:
    get_registry().count("verify.service.mismatches")
    report.mismatches.append(ServiceMismatch(field=field_name, message=message))


def _synthetic_session(
    seed: int, servers: int, vms: int, windows: int
):
    """Drive a seeded trace through a live ServiceState in-process."""
    from repro.service.reoptimizer import shadow_reoptimize
    from repro.service.state import ServiceState

    from repro.workloads.generator import ScenarioGenerator

    scenario_spec = ScenarioSpec(
        servers=servers, datacenters=2, vms=max(vms, 8), max_request_size=3
    )
    estate = ScenarioGenerator(scenario_spec, seed=seed).generate().infrastructure
    trace, _ = TraceGenerator(
        TraceSpec(horizon=float(windows), arrival_rate=3.0, mean_lifetime=4.0),
        scenario_spec,
        seed=seed,
    ).generate(key_prefix=f"svc-{seed}")
    state = ServiceState(estate, seed=seed)

    # Bucket trace events into admission micro-batches by unit time,
    # exactly as the live admission worker would close them.
    events = sorted(
        [("arrival", e.time, e.key, e.request) for e in trace.arrivals]
        + [("departure", e.time, e.key, None) for e in trace.departures],
        key=lambda item: item[1],
    )
    hosted: set[str] = set()
    for window in range(windows):
        arrivals = []
        departures = []
        for kind, at, key, request in events:
            if not window <= at < window + 1:
                continue
            if kind == "arrival":
                arrivals.append((key, request))
            elif key in hosted:
                departures.append(key)
        report = state.admit(arrivals=arrivals, departures=departures)
        hosted |= set(report.accepted)
        hosted -= set(report.departures)

        # One mid-session background-style reoptimization pass.  The
        # production hypervolume guard is deliberately skipped here:
        # conformance is about the log replaying exactly, and a
        # reoptimize record must be part of what gets replayed.
        if window == windows // 2 and state.tenant_count():
            payload, epoch = state.snapshot()
            result = shadow_reoptimize(
                estate,
                payload,
                NSGAConfig(population_size=12, max_evaluations=144, seed=seed),
            )
            if result["feasible"]:
                state.apply_reoptimization(result["assignments"], epoch)
    return estate, state


def _live_from_checkpoint(checkpoint_dir: str):
    """Load the live side from a ``repro serve`` checkpoint directory."""
    from repro.runtime.checkpoint import CheckpointManager
    from repro.serialization import infrastructure_from_dict
    from repro.service.app import SERVICE_CHECKPOINT_KIND, SERVICE_CHECKPOINT_NAME
    from repro.service.state import ServiceState

    payload = CheckpointManager(checkpoint_dir).load_state(
        SERVICE_CHECKPOINT_NAME, SERVICE_CHECKPOINT_KIND
    )
    estate = infrastructure_from_dict(payload["infrastructure"])
    state = ServiceState(
        estate,
        window_length=float(payload.get("window_length", 1.0)),
        seed=int(payload["seed"]),
    )
    state.restore_payload(payload)
    return estate, state


def check_service_conformance(
    checkpoint_dir: str | None = None,
    *,
    seed: int = 0,
    servers: int = 8,
    vms: int = 24,
    windows: int = 8,
) -> ServiceConformanceReport:
    """Prove live-vs-batch equivalence of the service's admission log.

    Without ``checkpoint_dir`` a synthetic session is generated
    in-process (seeded trace, one reoptimization pass); with it, the
    service checkpoint written by ``python -m repro serve`` is loaded.
    Either way the session's admission log is replayed through a fresh
    batch scheduler and every decision and final byte is compared.
    """
    from repro.service.state import replay_admission_log

    registry = get_registry()
    registry.count("verify.service.checks")
    if checkpoint_dir is None:
        source = "synthetic"
        estate, live = _synthetic_session(seed, servers, vms, windows)
    else:
        source = str(checkpoint_dir)
        estate, live = _live_from_checkpoint(checkpoint_dir)

    report = ServiceConformanceReport(source=source, records=len(live.log))
    report.windows = sum(1 for r in live.log if r.get("type") == "window")
    report.reoptimizations = sum(
        1 for r in live.log if r.get("type") == "reoptimize"
    )

    replayed = replay_admission_log(
        estate,
        live.log,
        seed=live.seed,
        window_length=live.scheduler.window_length,
    )

    # Per-record decision equivalence: the replay's own log must agree
    # with the live log on every accept/reject/displace verdict.
    for index, (lrec, rrec) in enumerate(zip(live.log, replayed.log)):
        for field_name in ("accepted", "rejected", "displaced"):
            if field_name not in lrec:
                continue
            report.comparisons += 1
            registry.count("verify.service.comparisons")
            if list(lrec[field_name]) != list(rrec.get(field_name, [])):
                _flag(
                    report,
                    f"log[{index}].{field_name}",
                    f"live {lrec[field_name]!r} != replay "
                    f"{rrec.get(field_name)!r}",
                )

    # Final-state byte identity.
    live_residents = live.residents()
    replay_residents = replayed.residents()
    report.residents = len(live_residents)
    report.comparisons += 1
    if sorted(live_residents) != sorted(replay_residents):
        _flag(
            report,
            "residents",
            f"live keys {sorted(live_residents)} != replay "
            f"{sorted(replay_residents)}",
        )
    else:
        for key, genes in live_residents.items():
            report.comparisons += 1
            if genes != replay_residents[key]:
                _flag(
                    report,
                    f"residents[{key}]",
                    f"live genes {genes} != replay {replay_residents[key]}",
                )
    live_usage = live.scheduler.state.committed_usage
    replay_usage = replayed.scheduler.state.committed_usage
    report.comparisons += 1
    if live_usage.tobytes() != replay_usage.tobytes():
        drift = int(np.count_nonzero(live_usage != replay_usage))
        _flag(
            report,
            "committed_usage",
            f"{drift} of {live_usage.size} ledger entries differ",
        )
    report.comparisons += 1
    if (live.scheduler.clock, live.scheduler.window_index) != (
        replayed.scheduler.clock,
        replayed.scheduler.window_index,
    ):
        _flag(
            report,
            "clock",
            f"live (t={live.scheduler.clock}, w={live.scheduler.window_index})"
            f" != replay (t={replayed.scheduler.clock}, "
            f"w={replayed.scheduler.window_index})",
        )

    # The replayed placements must satisfy the PR 3 invariant catalog.
    if replay_residents:
        keys = sorted(replay_residents)
        requests = [replayed.scheduler.request_for(key) for key in keys]
        merged, _ = Request.concatenate(requests)
        assignment = np.concatenate(
            [np.asarray(replay_residents[key], dtype=np.int64) for key in keys]
        )
        inv = run_invariants(
            CheckContext(
                infrastructure=estate,
                requests=requests,
                assignment=assignment,
            ),
            names=_PLACEMENT_INVARIANTS,
        )
        report.invariants_checked = len(inv.checked)
        for violation in inv.violations:
            _flag(report, f"invariant[{violation.invariant}]", str(violation))

    if report.ok:
        registry.count("verify.service.passes")
    return report
