"""Differential oracle: replay one placement through every scorer.

The reproduction has four independent views of what a placement is
worth: the reference :class:`~repro.objectives.evaluator.PopulationEvaluator`
(the paper's Figure 3 evaluation box), the
:class:`~repro.engine.incremental.IncrementalEvaluator` move path (the
fast scorer every search layer now rides on), the sparse ILP encoding
of Section III (and its LP relaxation bound), and — on small instances
— the complete CP search.  They implement the same mathematics through
entirely different code paths, which makes them ideal mutual oracles:
any disagreement is a bug in one of them, and the per-term deltas say
which term drifted.

:class:`DifferentialOracle` runs those comparisons for one instance:

* **incremental vs reference** — the target assignment is *reached by
  applying moves* (never by resetting), so the delta path itself is
  exercised; per-term parity is asserted at checkpoints along the walk
  and at the end via :meth:`IncrementalEvaluator.verify`;
* **LP encoding vs constraint set** — a complete, constraint-feasible
  assignment must satisfy every row of the sparse ILP, and the LP
  relaxation optimum must lower-bound its usage/operating cost;
* **CP vs reference** — the CP search's returned placement must be
  feasible under the reference constraints; a CP infeasibility *proof*
  contradicts any feasible complete assignment we hold; a proved
  optimum lower-bounds the cost of ours.

``perturb=(term, delta)`` injects a deliberate fault into the
incremental candidate's term before comparison — the self-test hook
behind ``python -m repro verify --perturb`` proving the oracle actually
fires.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine import CompiledProblem
from repro.engine.incremental import (
    CONSTRAINT_TERMS,
    OBJECTIVE_TERMS,
    IncrementalEvaluator,
)
from repro.model.infrastructure import Infrastructure
from repro.model.placement import UNPLACED
from repro.model.request import Request
from repro.telemetry import get_registry
from repro.types import FloatArray, IntArray

__all__ = ["DifferentialOracle", "OracleMismatch", "OracleReport", "TermDelta"]


@dataclass(frozen=True)
class TermDelta:
    """One term compared between a candidate backend and the reference."""

    term: str
    reference: float
    candidate: float

    @property
    def delta(self) -> float:
        """Signed drift (candidate minus reference)."""
        return self.candidate - self.reference


@dataclass(frozen=True)
class OracleMismatch:
    """One disagreement between two scoring backends."""

    backend: str  #: "incremental", "lp" or "cp"
    kind: str  #: e.g. "objective", "constraint", "bound", "feasibility"
    message: str
    deltas: tuple[TermDelta, ...] = ()

    def __str__(self) -> str:
        lines = [f"[{self.backend}/{self.kind}] {self.message}"]
        lines.extend(
            f"    {d.term}: reference={d.reference:.12g} "
            f"candidate={d.candidate:.12g} delta={d.delta:+.3g}"
            for d in self.deltas
        )
        return "\n".join(lines)


@dataclass
class OracleReport:
    """Everything one :meth:`DifferentialOracle.replay` call concluded."""

    backends: tuple[str, ...] = ()
    checks: int = 0
    mismatches: list[OracleMismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every backend agreed."""
        return not self.mismatches

    def format(self) -> str:
        """Diagnosis text: backends consulted, then each mismatch."""
        head = (
            f"backends={','.join(self.backends)} checks={self.checks} "
            f"mismatches={len(self.mismatches)}"
        )
        return "\n".join([head, *(str(m) for m in self.mismatches)])


class DifferentialOracle:
    """Cross-checks every scoring backend on one problem instance.

    Parameters
    ----------
    infrastructure, request:
        The (merged) instance.
    base_usage, previous_assignment, downtime_mode,
    per_server_operating, qos_strict:
        Evaluation options, forwarded to every backend identically.
    compiled:
        Optional shared compilation.
    rtol, atol:
        Objective-parity tolerances; bound checks add ``bound_slack``
        absolute slack for LP/CP solver tolerances.
    cp_max_variables:
        CP cross-check only runs when ``n * m`` is at most this (the
        search is complete but exponential).
    cp_limits:
        Budget for the CP cross-check (defaults are generous for the
        small instances the gate admits; proofs are only trusted when
        the search ran to completion).
    perturb:
        Optional ``(term, delta)`` fault injection into the incremental
        candidate — the oracle must then report a mismatch on ``term``.
    """

    def __init__(
        self,
        infrastructure: Infrastructure,
        request: Request,
        *,
        base_usage: FloatArray | None = None,
        previous_assignment: IntArray | None = None,
        downtime_mode: str = "shortfall",
        per_server_operating: bool = False,
        qos_strict: bool = False,
        compiled: CompiledProblem | None = None,
        rtol: float = 1e-9,
        atol: float = 1e-9,
        bound_slack: float = 1e-6,
        cp_max_variables: int = 400,
        cp_limits=None,
        perturb: tuple[str, float] | None = None,
    ) -> None:
        self.infrastructure = infrastructure
        self.request = request
        self.base_usage = base_usage
        self.previous_assignment = previous_assignment
        self.downtime_mode = downtime_mode
        self.per_server_operating = bool(per_server_operating)
        self.qos_strict = bool(qos_strict)
        self.compiled = compiled or CompiledProblem.compile(infrastructure, request)
        self.rtol = float(rtol)
        self.atol = float(atol)
        self.bound_slack = float(bound_slack)
        self.cp_max_variables = int(cp_max_variables)
        self.cp_limits = cp_limits
        if perturb is not None:
            term = perturb[0]
            if term not in CONSTRAINT_TERMS + OBJECTIVE_TERMS:
                raise ValueError(
                    f"unknown perturbation term {term!r}; expected one of "
                    f"{CONSTRAINT_TERMS + OBJECTIVE_TERMS}"
                )
        self.perturb = perturb

    # ------------------------------------------------------------------
    def _evaluator(self):
        return self.compiled.evaluator(
            base_usage=self.base_usage,
            previous_assignment=self.previous_assignment,
            downtime_mode=self.downtime_mode,
            per_server_operating=self.per_server_operating,
            include_assignment_constraint=True,
            qos_strict=self.qos_strict,
        )

    def _incremental(self, assignment: IntArray) -> IncrementalEvaluator:
        return self.compiled.incremental(
            assignment,
            base_usage=self.base_usage,
            previous_assignment=self.previous_assignment,
            downtime_mode=self.downtime_mode,
            per_server_operating=self.per_server_operating,
            include_assignment=True,
            qos_strict=self.qos_strict,
        )

    def _reference_terms(self, assignment: IntArray) -> dict[str, float]:
        evaluator = self._evaluator()
        constraints = evaluator.constraints
        load_cap = (
            float(constraints.load_cap.violations(assignment))
            if constraints.load_cap is not None
            else 0.0
        )
        return {
            "capacity": float(constraints.capacity.violations(assignment)),
            "group": float(
                sum(c.violations(assignment) for c in constraints.group_constraints)
            ),
            "load_cap": load_cap,
            "unplaced": float(np.count_nonzero(assignment == UNPLACED)),
            "usage_cost": float(evaluator.usage_cost.value(assignment)),
            "downtime": float(evaluator.downtime.value(assignment)),
            "migration": float(evaluator.migration.value(assignment)),
        }

    def _compare_terms(
        self,
        reference: dict[str, float],
        candidate: dict[str, float],
        report: OracleReport,
        where: str,
    ) -> None:
        bad: list[TermDelta] = []
        for term in CONSTRAINT_TERMS:
            report.checks += 1
            if candidate[term] != reference[term]:
                bad.append(TermDelta(term, reference[term], candidate[term]))
        for term in OBJECTIVE_TERMS:
            report.checks += 1
            if not np.isclose(
                candidate[term], reference[term], rtol=self.rtol, atol=self.atol
            ):
                bad.append(TermDelta(term, reference[term], candidate[term]))
        if bad:
            report.mismatches.append(
                OracleMismatch(
                    backend="incremental",
                    kind="per-term",
                    message=f"delta state drifted from the reference ({where})",
                    deltas=tuple(bad),
                )
            )

    # ------------------------------------------------------------------
    # Incremental backend
    # ------------------------------------------------------------------
    def _check_incremental(
        self,
        target: IntArray,
        rng: np.random.Generator,
        report: OracleReport,
        detours: int,
        checkpoint_every: int,
    ) -> None:
        n, m = self.compiled.n, self.compiled.m
        start = np.full(n, UNPLACED, dtype=np.int64)
        state = self._incremental(start)

        moves: list[tuple[int, int]] = []
        for vm in rng.permutation(n):
            for _ in range(detours):
                moves.append((int(vm), int(rng.integers(0, m))))
            moves.append((int(vm), int(target[vm])))

        since_checkpoint = 0
        for vm, server in moves:
            preview = state.score_move(vm, server)
            committed = state.apply_move(vm, server)
            report.checks += 1
            if preview.violations != committed.violations or not np.allclose(
                preview.objectives, committed.objectives
            ):
                report.mismatches.append(
                    OracleMismatch(
                        backend="incremental",
                        kind="score-apply",
                        message=(
                            f"score_move({vm}, {server}) disagrees with the "
                            "committed apply_move totals"
                        ),
                    )
                )
            since_checkpoint += 1
            if checkpoint_every and since_checkpoint >= checkpoint_every:
                since_checkpoint = 0
                self._compare_terms(
                    self._reference_terms(state.assignment),
                    state.component_totals(),
                    report,
                    where=f"mid-walk after {len(moves)} moves",
                )

        if not np.array_equal(state.assignment, np.asarray(target, np.int64)):
            report.mismatches.append(
                OracleMismatch(
                    backend="incremental",
                    kind="replay",
                    message="move replay did not reach the target assignment",
                )
            )
            return

        candidate = state.component_totals()
        if self.perturb is not None:
            term, delta = self.perturb
            candidate[term] = candidate[term] + delta
        self._compare_terms(
            self._reference_terms(state.assignment),
            candidate,
            report,
            where="end of walk",
        )

    # ------------------------------------------------------------------
    # LP backend
    # ------------------------------------------------------------------
    def _encode(self, assignment: IntArray, n: int, m: int) -> FloatArray:
        x = np.zeros(n * m)
        x[np.arange(n) * m + assignment] = 1.0
        return x

    def _check_lp(
        self, assignment: IntArray, feasible: bool, usage_cost: float, report: OracleReport
    ) -> None:
        from repro.lp.model import ILPModel
        from scipy.optimize import linprog

        model = ILPModel.build(
            self.infrastructure, self.request, base_usage=self.base_usage
        )
        x = self._encode(assignment, model.n, model.m)
        report.checks += 1
        if feasible and not model.check(x):
            report.mismatches.append(
                OracleMismatch(
                    backend="lp",
                    kind="feasibility",
                    message=(
                        "assignment is feasible under the constraint set but "
                        "violates a row of the sparse ILP encoding"
                    ),
                )
            )
        integral_cost = float(model.objective @ x)
        report.checks += 1
        if not np.isclose(
            integral_cost, usage_cost, rtol=self.rtol, atol=self.atol
        ):
            report.mismatches.append(
                OracleMismatch(
                    backend="lp",
                    kind="objective",
                    message="ILP objective disagrees with Eq. 22 usage cost",
                    deltas=(TermDelta("usage_cost", usage_cost, integral_cost),),
                )
            )
        if not feasible:
            return
        relaxed = linprog(
            c=model.objective,
            A_ub=model.a_ub,
            b_ub=model.b_ub,
            A_eq=model.a_eq,
            b_eq=model.b_eq,
            bounds=(0, 1),
            method="highs",
        )
        if relaxed.status != 0:  # pragma: no cover - solver hiccup
            return
        report.checks += 1
        if relaxed.fun > usage_cost + self.bound_slack:
            report.mismatches.append(
                OracleMismatch(
                    backend="lp",
                    kind="bound",
                    message=(
                        "LP relaxation optimum exceeds the cost of a feasible "
                        "integral placement (bound violated)"
                    ),
                    deltas=(TermDelta("usage_cost", usage_cost, float(relaxed.fun)),),
                )
            )

    # ------------------------------------------------------------------
    # CP backend
    # ------------------------------------------------------------------
    def _check_cp(
        self, feasible: bool, usage_cost: float, report: OracleReport
    ) -> None:
        from repro.cp.search import SearchLimits
        from repro.cp.solver import CPSolver

        limits = self.cp_limits or SearchLimits(max_nodes=20_000, time_limit=5.0)
        solver = CPSolver(
            self.infrastructure,
            self.request,
            base_usage=self.base_usage,
            limits=limits,
        )
        solution = solver.optimize()
        if solution.found:
            cp_terms = self._reference_terms(np.asarray(solution.assignment))
            non_assignment = (
                cp_terms["capacity"] + cp_terms["group"] + cp_terms["load_cap"]
            )
            report.checks += 1
            if cp_terms["unplaced"] or (
                non_assignment and not self.qos_strict
            ):
                report.mismatches.append(
                    OracleMismatch(
                        backend="cp",
                        kind="feasibility",
                        message=(
                            "CP returned a placement the reference constraint "
                            "set rejects"
                        ),
                        deltas=tuple(
                            TermDelta(t, 0.0, cp_terms[t])
                            for t in ("capacity", "group", "unplaced")
                            if cp_terms[t]
                        ),
                    )
                )
            if feasible and solution.proved:
                report.checks += 1
                if solution.cost > usage_cost + self.bound_slack:
                    report.mismatches.append(
                        OracleMismatch(
                            backend="cp",
                            kind="bound",
                            message=(
                                "CP proved an optimum costlier than a feasible "
                                "placement we hold"
                            ),
                            deltas=(
                                TermDelta("usage_cost", usage_cost, solution.cost),
                            ),
                        )
                    )
        elif solution.proved and feasible:
            report.checks += 1
            report.mismatches.append(
                OracleMismatch(
                    backend="cp",
                    kind="feasibility",
                    message=(
                        "CP proved infeasibility, but the assignment under "
                        "test is feasible and complete"
                    ),
                )
            )

    # ------------------------------------------------------------------
    def replay(
        self,
        assignment: IntArray,
        *,
        seed=None,
        detours: int = 2,
        checkpoint_every: int = 50,
        lp: bool = True,
        cp: bool = True,
    ) -> OracleReport:
        """Cross-check ``assignment`` through every applicable backend.

        The incremental backend always runs (the assignment is reached
        through ``detours + 1`` moves per VM from an empty placement).
        The LP checks run for fully placed assignments when SciPy's LP
        stack imports and the scalar usage-cost mode is in effect; the
        CP check additionally requires ``n * m <= cp_max_variables``.
        """
        target = np.asarray(assignment, dtype=np.int64)
        rng = np.random.default_rng(seed)
        report = OracleReport()
        backends = ["incremental"]
        registry = get_registry()

        self._check_incremental(
            target, rng, report, detours=detours, checkpoint_every=checkpoint_every
        )

        reference = self._reference_terms(target)
        complete = reference["unplaced"] == 0
        feasible = complete and (
            reference["capacity"] + reference["group"] + reference["load_cap"] == 0
        )
        scalar_cost_mode = not self.per_server_operating and not self.qos_strict

        if lp and complete and scalar_cost_mode:
            try:
                self._check_lp(
                    target, feasible, reference["usage_cost"], report
                )
                backends.append("lp")
            except ImportError:  # pragma: no cover - scipy always bundled
                pass
        if (
            cp
            and scalar_cost_mode
            and self.compiled.n * self.compiled.m <= self.cp_max_variables
        ):
            self._check_cp(feasible, reference["usage_cost"], report)
            backends.append("cp")

        report.backends = tuple(backends)
        registry.count("verify.oracle.replays")
        registry.count("verify.oracle.checks", report.checks)
        for mismatch in report.mismatches:
            registry.count("verify.oracle.mismatches", backend=mismatch.backend)
        return report
