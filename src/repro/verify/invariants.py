"""Composable invariant checkers over placements and batch outcomes.

Every allocator in the comparison — greedy, CP, LP, the evolutionary
hybrids — reports through :class:`~repro.allocator.BatchOutcome`, and
the paper's figures are only meaningful if those reports obey the
model's ground rules regardless of which algorithm produced them.
This module states the rules as small, independently runnable
*invariants*:

* ``assignment_well_formed`` — every gene is a valid server id or
  :data:`~repro.model.placement.UNPLACED`, and the dense-tensor round
  trip preserves the genome (each accepted VM hosted exactly once);
* ``capacity_respected`` — servers hosting only *accepted* requests
  never exceed effective capacity (accepted work must actually fit);
* ``group_closure`` — no accepted request has a violated
  affinity/anti-affinity group;
* ``accepted_closure`` — the outcome's accepted mask equals the mask
  recomputed from the assignment (rejection semantics of Figure 9);
* ``objective_finiteness`` — the reported objective vector is finite
  and non-negative;
* ``pareto_front_non_domination`` — a reported front is mutually
  non-dominated.

Checkers receive a :class:`CheckContext` and *skip* (rather than fail)
when the context lacks what they need, so one ``run_invariants`` call
works for a bare genome, a full outcome, or a Pareto front.  Register
additional invariants with :func:`register_invariant`; see
``docs/VERIFY.md`` for the catalog and extension guide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.allocator import BatchOutcome, per_request_rejections
from repro.model.infrastructure import Infrastructure
from repro.model.placement import UNPLACED, Placement
from repro.model.request import Request
from repro.telemetry import get_registry
from repro.utils.pareto import dominance_matrix

__all__ = [
    "CheckContext",
    "InvariantReport",
    "InvariantViolation",
    "invariant_names",
    "register_invariant",
    "run_invariants",
]


@dataclass(frozen=True)
class InvariantViolation:
    """One broken invariant, with enough detail to reproduce it."""

    invariant: str
    message: str
    details: dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.invariant}] {self.message}"


@dataclass(frozen=True)
class InvariantReport:
    """Outcome of one :func:`run_invariants` sweep.

    ``checked`` lists the invariants that actually ran (checkers with
    missing context skip silently); ``violations`` the failures.
    """

    checked: tuple[str, ...]
    violations: tuple[InvariantViolation, ...]

    @property
    def ok(self) -> bool:
        """Whether every applicable invariant held."""
        return not self.violations

    def format(self) -> str:
        """Human-readable summary, one line per checked invariant."""
        broken = {v.invariant for v in self.violations}
        lines = [
            f"{'FAIL' if name in broken else 'ok  '} {name}"
            for name in self.checked
        ]
        lines.extend(f"  -> {v}" for v in self.violations)
        return "\n".join(lines)


@dataclass
class CheckContext:
    """Everything an invariant may inspect.  Only ``infrastructure`` is
    mandatory; checkers skip when a field they need is ``None``.

    Parameters
    ----------
    infrastructure:
        The provider estate the assignment refers to.
    requests:
        The window's request list (enables per-request semantics).
    merged, owner:
        The concatenated instance and resource→request map; derived
        from ``requests`` on demand when absent.
    assignment:
        Flat genome over the merged instance.
    outcome:
        A full :class:`~repro.allocator.BatchOutcome` (its assignment
        and accepted mask take precedence over the bare fields).
    base_usage:
        Committed usage from earlier windows.
    objectives:
        (3,) objective vector to sanity-check.
    front_objectives:
        (k, 3) matrix of a reported Pareto front.
    brokered:
        A :class:`~repro.market.broker.BrokeredOutcome` (enables the
        market-layer invariants).
    """

    infrastructure: Infrastructure
    requests: Sequence[Request] | None = None
    merged: Request | None = None
    owner: np.ndarray | None = None
    assignment: np.ndarray | None = None
    outcome: BatchOutcome | None = None
    base_usage: np.ndarray | None = None
    objectives: np.ndarray | None = None
    front_objectives: np.ndarray | None = None
    brokered: object | None = None

    def __post_init__(self) -> None:
        if self.outcome is not None:
            if self.assignment is None:
                self.assignment = self.outcome.assignment
            if self.objectives is None:
                self.objectives = self.outcome.objectives
        if self.merged is None and self.requests is not None:
            self.merged, self.owner = Request.concatenate(list(self.requests))

    @property
    def accepted_resources(self) -> np.ndarray | None:
        """Boolean mask over merged resources of *accepted* requests."""
        if self.outcome is None or self.owner is None:
            return None
        return self.outcome.accepted[self.owner]


_CHECKERS: dict[str, Callable[[CheckContext], list[InvariantViolation]]] = {}


def register_invariant(name: str):
    """Decorator adding a checker to the catalog under ``name``."""

    def wrap(fn: Callable[[CheckContext], list[InvariantViolation]]):
        _CHECKERS[name] = fn
        return fn

    return wrap


def invariant_names() -> tuple[str, ...]:
    """The registered invariant catalog, in registration order."""
    return tuple(_CHECKERS)


# ----------------------------------------------------------------------
# The built-in catalog
# ----------------------------------------------------------------------
@register_invariant("assignment_well_formed")
def _assignment_well_formed(ctx: CheckContext) -> list[InvariantViolation]:
    if ctx.assignment is None:
        return []
    out: list[InvariantViolation] = []
    assignment = np.asarray(ctx.assignment, dtype=np.int64)
    m = ctx.infrastructure.m
    bad = (assignment != UNPLACED) & ((assignment < 0) | (assignment >= m))
    if np.any(bad):
        out.append(
            InvariantViolation(
                "assignment_well_formed",
                f"genes outside [0, {m}) and not UNPLACED",
                {"genes": np.flatnonzero(bad)[:8].tolist()},
            )
        )
        return out
    # Exactly-once hosting: the dense X_ijk round trip must preserve
    # the genome (from_dense rejects multiply-hosted resources).
    placement = Placement(assignment=assignment, infrastructure=ctx.infrastructure)
    back = Placement.from_dense(placement.to_dense(), ctx.infrastructure)
    if not np.array_equal(back.assignment, assignment):
        out.append(
            InvariantViolation(
                "assignment_well_formed",
                "dense tensor round trip changed the genome",
                {},
            )
        )
    return out


@register_invariant("capacity_respected")
def _capacity_respected(ctx: CheckContext) -> list[InvariantViolation]:
    if ctx.assignment is None or ctx.merged is None:
        return []
    accepted = ctx.accepted_resources
    assignment = np.asarray(ctx.assignment, dtype=np.int64)
    demand = ctx.merged.demand
    if accepted is not None:
        # Accepted work must fit; rejected (violating) placements are
        # the EA baselines' documented behaviour, not an invariant break.
        assignment = np.where(accepted, assignment, UNPLACED)
    elif ctx.outcome is None:
        # A bare genome may legitimately overload servers.
        return []
    usage = np.zeros((ctx.infrastructure.m, ctx.infrastructure.h))
    mask = assignment != UNPLACED
    # Deliberately np.add.at, NOT repro.utils.scatter: the invariant
    # catalog stays independent of the code paths it audits.
    np.add.at(usage, assignment[mask], demand[mask])
    limit = ctx.infrastructure.effective_capacity.copy()
    if ctx.base_usage is not None:
        limit = limit - np.asarray(ctx.base_usage, dtype=np.float64)
    slack = 1e-9 * np.maximum(1.0, np.abs(limit))
    over = usage > limit + slack
    if np.any(over):
        servers, attrs = np.nonzero(over)
        return [
            InvariantViolation(
                "capacity_respected",
                "accepted placements overload "
                f"{np.unique(servers).size} server(s)",
                {
                    "cells": list(zip(servers[:8].tolist(), attrs[:8].tolist())),
                    "excess": (usage[over] - limit[over])[:8].tolist(),
                },
            )
        ]
    return []


@register_invariant("group_closure")
def _group_closure(ctx: CheckContext) -> list[InvariantViolation]:
    if ctx.assignment is None or ctx.merged is None or ctx.outcome is None:
        return []
    if ctx.owner is None:
        return []
    from repro.constraints.registry import make_group_constraint

    out: list[InvariantViolation] = []
    accepted = ctx.outcome.accepted
    for gi, group in enumerate(ctx.merged.groups):
        owner = int(ctx.owner[group.members[0]])
        if not accepted[owner]:
            continue
        constraint = make_group_constraint(group, ctx.infrastructure)
        violations = constraint.violations(np.asarray(ctx.assignment, np.int64))
        if violations > 0:
            out.append(
                InvariantViolation(
                    "group_closure",
                    f"accepted request {owner} has violated group {gi} "
                    f"({group.rule.value}, {violations} violation(s))",
                    {"group": gi, "request": owner, "rule": group.rule.value},
                )
            )
    return out


@register_invariant("accepted_closure")
def _accepted_closure(ctx: CheckContext) -> list[InvariantViolation]:
    if ctx.outcome is None or ctx.merged is None or ctx.owner is None:
        return []
    from repro.constraints.registry import ConstraintSet

    cons = ConstraintSet(
        ctx.infrastructure,
        ctx.merged,
        base_usage=ctx.base_usage,
        include_assignment=True,
    )
    recomputed = ~per_request_rejections(
        np.asarray(ctx.outcome.assignment, np.int64), ctx.merged, ctx.owner, cons
    )
    if not np.array_equal(recomputed, ctx.outcome.accepted):
        drift = np.flatnonzero(recomputed != ctx.outcome.accepted)
        return [
            InvariantViolation(
                "accepted_closure",
                "outcome accepted mask disagrees with the mask recomputed "
                f"from its assignment ({drift.size} request(s))",
                {"requests": drift[:8].tolist()},
            )
        ]
    return []


@register_invariant("objective_finiteness")
def _objective_finiteness(ctx: CheckContext) -> list[InvariantViolation]:
    if ctx.objectives is None:
        return []
    objectives = np.asarray(ctx.objectives, dtype=np.float64)
    out: list[InvariantViolation] = []
    if not np.all(np.isfinite(objectives)):
        out.append(
            InvariantViolation(
                "objective_finiteness",
                f"objective vector has non-finite entries: {objectives.tolist()}",
                {},
            )
        )
    elif np.any(objectives < 0):
        out.append(
            InvariantViolation(
                "objective_finiteness",
                f"objective vector has negative entries: {objectives.tolist()}",
                {},
            )
        )
    return out


@register_invariant("energy_bound")
def _energy_bound(ctx: CheckContext) -> list[InvariantViolation]:
    if ctx.assignment is None or ctx.merged is None:
        return []
    from repro.objectives.energy import EnergyCost

    cost = EnergyCost(
        ctx.infrastructure, ctx.merged.demand, base_usage=ctx.base_usage
    )
    assignment = np.asarray(ctx.assignment, dtype=np.int64)
    accepted = ctx.accepted_resources
    if accepted is not None:
        assignment = np.where(accepted, assignment, UNPLACED)
    value = cost.value(assignment)
    if not np.isfinite(value) or value < 0:
        return [
            InvariantViolation(
                "energy_bound",
                f"energy term is not finite and non-negative: {value}",
                {},
            )
        ]
    # When no host is oversubscribed (loads <= 1) the linear power
    # model is capped by every host running flat out.
    usage = np.zeros((ctx.infrastructure.m, ctx.infrastructure.h))
    mask = assignment != UNPLACED
    # Independent reference scatter (see the capacity invariant above).
    np.add.at(usage, assignment[mask], ctx.merged.demand[mask])
    base = (
        np.asarray(ctx.base_usage, dtype=np.float64)
        if ctx.base_usage is not None
        else 0.0
    )
    capacity = ctx.infrastructure.effective_capacity
    loads = np.where(capacity > 0, (usage + base) / np.where(capacity > 0, capacity, 1.0), 0.0)
    ceiling = cost.upper_bound()
    if np.all(loads <= 1.0 + 1e-9) and value > ceiling * (1.0 + 1e-9):
        return [
            InvariantViolation(
                "energy_bound",
                f"energy {value} exceeds the all-hosts-at-full-load "
                f"ceiling {ceiling} despite loads <= 1",
                {"value": float(value), "ceiling": float(ceiling)},
            )
        ]
    return []


@register_invariant("pareto_front_non_domination")
def _pareto_front_non_domination(ctx: CheckContext) -> list[InvariantViolation]:
    if ctx.front_objectives is None:
        return []
    front = np.asarray(ctx.front_objectives, dtype=np.float64)
    if front.ndim != 2 or front.shape[0] < 2:
        return []
    dom = dominance_matrix(front)
    if np.any(dom):
        i, j = np.nonzero(dom)
        return [
            InvariantViolation(
                "pareto_front_non_domination",
                f"front point {i[0]} dominates point {j[0]}",
                {"pairs": list(zip(i[:8].tolist(), j[:8].tolist()))},
            )
        ]
    return []


@register_invariant("provider_capacity_closure")
def _provider_capacity_closure(ctx: CheckContext) -> list[InvariantViolation]:
    if ctx.assignment is None or ctx.merged is None:
        return []
    if ctx.infrastructure.p < 2:
        return []  # single-provider estates have nothing extra to close
    assignment = np.asarray(ctx.assignment, dtype=np.int64)
    accepted = ctx.accepted_resources
    if accepted is not None:
        assignment = np.where(accepted, assignment, UNPLACED)
    elif ctx.outcome is None:
        return []
    provider = ctx.infrastructure.provider_of_server
    usage = np.zeros((ctx.infrastructure.m, ctx.infrastructure.h))
    mask = assignment != UNPLACED
    np.add.at(usage, assignment[mask], ctx.merged.demand[mask])
    if ctx.base_usage is not None:
        usage = usage + np.asarray(ctx.base_usage, dtype=np.float64)
    out: list[InvariantViolation] = []
    for k in range(ctx.infrastructure.p):
        servers = np.flatnonzero(provider == k)
        load = usage[servers].sum(axis=0)
        ceiling = ctx.infrastructure.effective_capacity[servers].sum(axis=0)
        slack = 1e-9 * np.maximum(1.0, np.abs(ceiling))
        if np.any(load > ceiling + slack):
            out.append(
                InvariantViolation(
                    "provider_capacity_closure",
                    f"aggregate accepted load exceeds provider {k}'s "
                    "total effective capacity",
                    {
                        "provider": k,
                        "load": load.tolist(),
                        "capacity": ceiling.tolist(),
                    },
                )
            )
    return out


@register_invariant("preference_selection_consistency")
def _preference_selection_consistency(
    ctx: CheckContext,
) -> list[InvariantViolation]:
    if ctx.front_objectives is None:
        return []
    front = np.asarray(ctx.front_objectives, dtype=np.float64)
    if front.ndim != 2 or front.shape[0] == 0:
        return []
    from repro.market.preferences import active_preference, select_index

    preference = active_preference()
    out: list[InvariantViolation] = []
    index = select_index(front, preference)
    if not 0 <= index < front.shape[0]:
        return [
            InvariantViolation(
                "preference_selection_consistency",
                f"selection index {index} outside the front of {front.shape[0]}",
                {},
            )
        ]
    if preference is None:
        # Independent ideal-point recomputation must agree.
        lo = front.min(axis=0)
        span = np.where(front.max(axis=0) - lo > 0, front.max(axis=0) - lo, 1.0)
        expected = int(
            np.argmin(np.sqrt((((front - lo) / span) ** 2).sum(axis=1)))
        )
        if index != expected:
            out.append(
                InvariantViolation(
                    "preference_selection_consistency",
                    "default selection drifted from the ideal-point pick "
                    f"({index} != {expected})",
                    {},
                )
            )
    else:
        # The *selected vector* must be invariant under row permutation.
        flipped = front[::-1]
        mirrored = select_index(flipped, preference)
        if not np.array_equal(front[index], flipped[mirrored]):
            out.append(
                InvariantViolation(
                    "preference_selection_consistency",
                    "selected objective vector changed under front "
                    "permutation",
                    {
                        "original": front[index].tolist(),
                        "permuted": flipped[mirrored].tolist(),
                    },
                )
            )
    return out


@register_invariant("brokered_front_non_domination")
def _brokered_front_non_domination(ctx: CheckContext) -> list[InvariantViolation]:
    if ctx.brokered is None:
        return []
    brokered = ctx.brokered
    out: list[InvariantViolation] = []
    front = np.asarray(brokered.front_objectives, dtype=np.float64)
    if front.shape[0] >= 2:
        dom = dominance_matrix(front)
        if np.any(dom):
            i, j = np.nonzero(dom)
            out.append(
                InvariantViolation(
                    "brokered_front_non_domination",
                    f"brokered plan {brokered.front[i[0]].route!r} dominates "
                    f"{brokered.front[j[0]].route!r} inside the front",
                    {"pairs": list(zip(i[:8].tolist(), j[:8].tolist()))},
                )
            )
    # Identity, not ==: plans hold numpy arrays, whose dataclass
    # equality is ambiguous.
    if not any(plan is brokered.deployed for plan in brokered.front):
        out.append(
            InvariantViolation(
                "brokered_front_non_domination",
                f"deployed plan {brokered.deployed.route!r} is not a front "
                "member",
                {},
            )
        )
    if any(plan.clean for plan in brokered.plans) and not all(
        plan.clean for plan in brokered.front
    ):
        out.append(
            InvariantViolation(
                "brokered_front_non_domination",
                "front contains market-violating plans although clean "
                "plans exist",
                {},
            )
        )
    return out


# ----------------------------------------------------------------------
def run_invariants(
    ctx: CheckContext, names: Sequence[str] | None = None
) -> InvariantReport:
    """Run (a subset of) the catalog over one context.

    Counts ``verify.invariants.checks`` / ``verify.invariants.violations``
    into the telemetry registry, labelled by invariant name.
    """
    registry = get_registry()
    checked: list[str] = []
    violations: list[InvariantViolation] = []
    for name in names if names is not None else _CHECKERS:
        checker = _CHECKERS[name]
        found = checker(ctx)
        checked.append(name)
        registry.count("verify.invariants.checks", invariant=name)
        if found:
            registry.count(
                "verify.invariants.violations", len(found), invariant=name
            )
            violations.extend(found)
    return InvariantReport(checked=tuple(checked), violations=tuple(violations))
