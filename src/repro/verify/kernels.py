"""Kernel-backend conformance verification.

The kernel layer's contract (``docs/PERFORMANCE.md``) is *bitwise*
equality: every backend registered in :mod:`repro.engine.kernels` must
produce byte-identical usage tensors, violation counts and objective
vectors to the ``reference`` backend — the pre-kernel code paths kept
verbatim.  ``np.bincount`` and ``np.add.at`` both accumulate duplicate
indices in input order, and the numba backend keeps its inner gene
loops serial, so exactness is achievable and therefore demanded: any
drift is a bug, not a tolerance question.

The checker drives fuzzed scenario instances plus the structural edge
cases vectorized code most often gets wrong — the empty population,
rows with every gene :data:`~repro.model.placement.UNPLACED`, the
single-server estate, and ``int32`` genomes — through every available
backend, comparing raw bytes against the reference at two levels:

1. **primitive level** — ``scatter_usage`` / ``batch_usage`` /
   ``batch_active`` / ``batch_over_counts`` / ``server_min_qos`` on the
   same inputs;
2. **evaluator level** — full ``evaluate_population`` objectives and
   violations (which also exercises the vectorized group scoring
   against the reference backend's per-constraint loop).

``python -m repro verify --check-kernels`` runs this from the CLI;
telemetry lands in ``verify.kernels.*``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.compiled import CompiledProblem
from repro.engine.kernels import active_kernel, available_kernels, use_kernel
from repro.model.placement import UNPLACED
from repro.model.request import Request
from repro.telemetry import get_registry
from repro.workloads.generator import ScenarioGenerator, ScenarioSpec

__all__ = [
    "KernelMismatch",
    "KernelConformanceReport",
    "check_kernel_conformance",
]


@dataclass(frozen=True)
class KernelMismatch:
    """One array that differed between a backend and the reference."""

    backend: str
    case: str  #: which fuzzed instance / edge case
    field: str  #: which compared array drifted
    message: str

    def __str__(self) -> str:
        return (
            f"[{self.backend}] {self.case}: {self.field} diverged from "
            f"reference — {self.message}"
        )


@dataclass
class KernelConformanceReport:
    """Outcome of one :func:`check_kernel_conformance` pass."""

    backends: tuple[str, ...]
    seed: int
    cases: tuple[str, ...] = ()
    comparisons: int = 0
    mismatches: list[KernelMismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every backend matched the reference byte for byte."""
        return not self.mismatches

    def format(self) -> str:
        """Human-readable summary plus each mismatch."""
        header = (
            f"kernel conformance: seed={self.seed} "
            f"backends={list(self.backends)} over {len(self.cases)} cases — "
            f"{self.comparisons} comparisons, "
            f"{len(self.mismatches)} mismatches"
        )
        if self.ok:
            return header + "\nall backends bitwise-identical to reference"
        return "\n".join([header, *map(str, self.mismatches)])


def _compare(
    report: KernelConformanceReport,
    backend: str,
    case: str,
    pairs: dict[str, tuple[np.ndarray, np.ndarray]],
) -> None:
    registry = get_registry()
    for name, (ref, got) in pairs.items():
        report.comparisons += 1
        registry.count("verify.kernels.comparisons")
        ref = np.asarray(ref)
        got = np.asarray(got)
        if ref.shape == got.shape and ref.tobytes() == got.tobytes():
            continue
        registry.count("verify.kernels.mismatches")
        if ref.shape != got.shape:
            message = f"shape {got.shape} != reference {ref.shape}"
        else:
            drift = int(np.count_nonzero(ref != got))
            message = f"{drift} of {ref.size} entries differ"
        report.mismatches.append(
            KernelMismatch(
                backend=backend, case=case, field=name, message=message
            )
        )


def _population(
    rng: np.random.Generator, pop: int, n: int, m: int, unplaced: float
) -> np.ndarray:
    population = rng.integers(0, m, size=(pop, n), dtype=np.int64)
    if unplaced > 0.0 and population.size:
        mask = rng.random(population.shape) < unplaced
        population[mask] = UNPLACED
    return population


def _cases(seed: int, instances: int):
    """(name, compiled, population) triples: fuzzed + structural edges."""
    rng = np.random.default_rng(seed)
    shapes = [(6, 14), (12, 30), (20, 48)]
    out = []
    for index in range(instances):
        servers, vms = shapes[index % len(shapes)]
        spec = ScenarioSpec(
            servers=servers,
            datacenters=max(1, servers // 4),
            vms=vms,
            tightness=0.9,
        )
        scenario = ScenarioGenerator(spec, seed=seed + index).generate()
        merged, _ = Request.concatenate(list(scenario.requests))
        compiled = CompiledProblem(scenario.infrastructure, merged)
        pop = int(rng.integers(3, 17))
        population = _population(
            rng, pop, merged.n, scenario.infrastructure.m, unplaced=0.05
        )
        out.append((f"fuzz[{index}] {servers}x{vms}", compiled, population))

    base = out[0][1]  # reuse the first fuzzed instance for edge shapes
    n, m = base.n, base.m
    out.append(("edge: empty population", base, np.empty((0, n), np.int64)))
    out.append(
        (
            "edge: all-unplaced rows",
            base,
            np.full((4, n), UNPLACED, dtype=np.int64),
        )
    )
    out.append(
        (
            "edge: int32 genomes",
            base,
            _population(rng, 6, n, m, unplaced=0.1).astype(np.int32),
        )
    )

    single = ScenarioGenerator(
        ScenarioSpec(servers=1, datacenters=1, vms=6, tightness=0.6),
        seed=seed + 101,
    ).generate()
    merged_single, _ = Request.concatenate(list(single.requests))
    compiled_single = CompiledProblem(single.infrastructure, merged_single)
    out.append(
        (
            "edge: single-server estate",
            compiled_single,
            _population(rng, 5, merged_single.n, 1, unplaced=0.2),
        )
    )
    return out


def _snapshot(compiled: CompiledProblem, population: np.ndarray) -> dict:
    """Everything one backend computes for (instance, population)."""
    evaluator = compiled.evaluator(include_assignment_constraint=True)
    capacity = evaluator.constraints.capacity
    infra = compiled.infrastructure
    kern = active_kernel()
    population64 = np.ascontiguousarray(population, dtype=np.int64)
    usage = capacity.batch_usage(population64)
    out = {
        "batch_usage": usage,
        "batch_over_counts": kern.batch_over_counts(
            usage, capacity._threshold
        ),
        "batch_active": kern.batch_active(population64, infra.m),
        "server_min_qos": kern.server_min_qos(
            usage,
            evaluator.downtime.base_usage,
            infra.capacity,
            infra.max_load,
            infra.max_qos,
        ),
    }
    if population64.shape[0]:
        row = population64[0]
        mask = row != UNPLACED
        out["scatter_usage"] = kern.scatter_usage(
            row[mask], compiled.demand[mask], infra.m
        )
    result = evaluator.evaluate_population(population)
    out["objectives"] = result.objectives
    out["violations"] = result.violations
    return out


def check_kernel_conformance(
    *,
    seed: int = 0,
    instances: int = 3,
    kernels: tuple[str, ...] | None = None,
) -> KernelConformanceReport:
    """Prove bitwise backend equality on fuzzed + edge-case inputs.

    ``kernels`` defaults to every registered backend (the numba backend
    participates exactly when numba is importable); the ``reference``
    backend is always the baseline and never compared against itself.
    """
    backends = tuple(kernels) if kernels is not None else available_kernels()
    others = tuple(b for b in backends if b != "reference")
    report = KernelConformanceReport(backends=backends, seed=seed)
    registry = get_registry()
    registry.count("verify.kernels.checks")

    cases = _cases(seed, instances)
    report.cases = tuple(name for name, _, _ in cases)
    for name, compiled, population in cases:
        with use_kernel("reference"):
            ref = _snapshot(compiled, population)
        for backend in others:
            with use_kernel(backend):
                got = _snapshot(compiled, population)
            _compare(
                report,
                backend,
                name,
                {key: (ref[key], got[key]) for key in ref},
            )
    return report
