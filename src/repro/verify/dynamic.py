"""Dynamic metamorphic laws: scenario-stream transformations with
known consequences.

The static laws (:mod:`repro.verify.metamorphic`) hold one window
fixed and transform the instance; these laws transform the *stream* a
:class:`~repro.scheduler.window.TimeWindowScheduler` consumes and state
what the trajectory must preserve.  All three are theorems of the
scheduler's batching semantics, not solver properties:

* :class:`WindowPermutationLaw` — permuting the request blocks of one
  window's batch (and its genome through the same permutation) leaves
  objectives and the violation breakdown identical and permutes the
  rejection mask.  The *evaluation* of a window is order-free even
  though greedy allocators are order-sensitive;
* :class:`TimeShiftLaw` — shifting every event by an integral number of
  windows shifts the decision sequence by exactly that many (empty)
  windows and reproduces the final ledger byte-for-byte: leading idle
  windows touch no allocator or platform state;
* :class:`DrainFailEquivalenceLaw` — relabelling every maintenance
  drain as an unplanned failure changes reporting only: decisions,
  displacements and the final ledger are identical, and the
  drain/failure classification swaps exactly.

Each law supports *fault injection* (``inject=...``) that deliberately
breaks its transformation — a misaligned shift, a dropped drain, a
half-applied permutation — so the regression suite can prove the law
would actually catch a violation (see
``tests/unit/test_scenario_metrics.py``).

Counted into telemetry as ``verify.dynamic.checks`` /
``verify.dynamic.violations`` per law.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

import numpy as np

from repro.allocator import Allocator
from repro.errors import ValidationError
from repro.scheduler.events import ServerFailureEvent
from repro.scheduler.window import TimeWindowScheduler, WindowReport
from repro.telemetry import get_registry
from repro.verify.metamorphic import LawViolation, _evaluate
from repro.workloads.scenarios import (
    CompiledScenario,
    DynamicScenarioSpec,
    compile_scenario,
    get_scenario,
)

__all__ = [
    "DYNAMIC_LAWS",
    "DrainFailEquivalenceLaw",
    "DynamicReport",
    "TimeShiftLaw",
    "WindowPermutationLaw",
    "check_dynamic_laws",
]


def _default_allocator() -> Allocator:
    from repro.baselines.round_robin import RoundRobinAllocator

    return RoundRobinAllocator()


def _drive(
    compiled: CompiledScenario, allocator: Allocator
) -> tuple[list[WindowReport], TimeWindowScheduler]:
    """Drain the whole stream; returns (reports, final scheduler)."""
    scheduler = compiled.build_scheduler(allocator)
    reports: list[WindowReport] = []
    while scheduler.pending_events:
        reports.append(scheduler.run_window())
    return reports, scheduler


def _ledger(scheduler: TimeWindowScheduler) -> str:
    """Canonical platform ledger: residents + committed usage bytes.

    Clock and window index are excluded on purpose — the time-shift law
    moves both while demanding everything here stays byte-identical.
    """
    residents = [
        [key, [int(g) for g in scheduler.state.previous_assignment(key)]]
        for key in sorted(scheduler.state.tenants())
    ]
    return json.dumps(
        {
            "residents": residents,
            "usage": scheduler.state.committed_usage.tolist(),
            "failed": sorted(scheduler.failed_servers),
        },
        sort_keys=True,
        separators=(",", ":"),
    )


def _decisions(report: WindowReport) -> dict:
    """The order-insensitive decision content of one window."""
    return {
        "arrivals": sorted(report.arrivals),
        "departures": sorted(report.departures),
        "accepted": sorted(report.accepted),
        "rejected": sorted(report.rejected),
        "displaced": sorted(report.displaced),
        "outage": sorted([*report.failures, *report.drains]),
        "recoveries": sorted(report.recoveries),
    }


class DynamicLaw:
    """One stream transformation with a checkable consequence."""

    name: str = "dynamic_law"

    def check(
        self,
        compiled: CompiledScenario,
        allocator_factory: Callable[[], Allocator],
        inject: str | None = None,
    ) -> list[LawViolation]:
        """Apply the transformation and verify the relationship."""
        raise NotImplementedError


class WindowPermutationLaw(DynamicLaw):
    """Batch-order permutation ⇒ identical evaluation, permuted mask."""

    name = "window_permutation"

    def check(self, compiled, allocator_factory, inject=None):
        """Check the law on one compiled scenario's densest window."""
        spec = compiled.spec
        # The arrivals of the first window holding at least two
        # requests form the batch under test.
        by_window: dict[int, list] = {}
        for event in compiled.arrivals:
            by_window.setdefault(
                int(event.time // spec.window_length), []
            ).append(event)
        batch = next(
            (
                events
                for _, events in sorted(by_window.items())
                if len(events) >= 2
            ),
            None,
        )
        if batch is None:
            raise ValidationError(
                f"scenario {spec.name!r} has no window with >= 2 arrivals"
            )
        requests = [event.request for event in batch]
        allocator = allocator_factory()
        try:
            outcome = allocator.allocate(compiled.infrastructure, requests)
        finally:
            allocator.close()

        if inject == "permute_requests_only":
            # The self-test needs a guaranteed non-identity permutation.
            perm = np.roll(np.arange(len(requests)), 1)
        else:
            rng = np.random.default_rng(compiled.seed)
            perm = rng.permutation(len(requests))
        blocks: list[np.ndarray] = []
        offset = 0
        for request in requests:
            blocks.append(outcome.assignment[offset : offset + request.n])
            offset += request.n
        permuted_requests = [requests[i] for i in perm]
        if inject == "permute_requests_only":
            permuted_assignment = outcome.assignment
        else:
            permuted_assignment = np.concatenate([blocks[i] for i in perm])

        before = _evaluate(
            compiled.infrastructure, requests, outcome.assignment
        )
        after = _evaluate(
            compiled.infrastructure, permuted_requests, permuted_assignment
        )
        out: list[LawViolation] = []
        if not np.allclose(before[0], after[0], rtol=1e-9, atol=1e-9):
            out.append(
                LawViolation(
                    self.name,
                    "objectives changed under batch-order permutation",
                    {"before": before[0].tolist(), "after": after[0].tolist()},
                )
            )
        if before[1] != after[1]:
            out.append(
                LawViolation(
                    self.name,
                    "violation breakdown changed under batch-order permutation",
                    {"before": before[1], "after": after[1]},
                )
            )
        if not np.array_equal(before[2][perm], after[2]):
            out.append(
                LawViolation(
                    self.name,
                    "rejection mask did not permute with the batch",
                    {},
                )
            )
        return out


class TimeShiftLaw(DynamicLaw):
    """Integral window shift ⇒ shifted decisions, identical ledger."""

    name = "time_shift"

    #: Windows to shift by (integral — the law's precondition).
    shift_windows: int = 2

    def check(self, compiled, allocator_factory, inject=None):
        """Check the law by replaying the stream shifted in time."""
        spec = compiled.spec
        shift = self.shift_windows * spec.window_length
        if inject == "shift_misalign":
            shift = 0.5 * spec.window_length
        offset = int(shift // spec.window_length)
        shifted = CompiledScenario(
            spec=spec,
            seed=compiled.seed,
            infrastructure=compiled.infrastructure,
            arrivals=[
                replace(e, time=e.time + shift) for e in compiled.arrivals
            ],
            departures=[
                replace(e, time=e.time + shift) for e in compiled.departures
            ],
            failures=[
                replace(e, time=e.time + shift) for e in compiled.failures
            ],
            drains=[replace(e, time=e.time + shift) for e in compiled.drains],
            recoveries=[
                replace(e, time=e.time + shift) for e in compiled.recoveries
            ],
        )
        base_reports, base_sched = _drive(compiled, allocator_factory())
        shift_reports, shift_sched = _drive(shifted, allocator_factory())

        out: list[LawViolation] = []
        for report in shift_reports[:offset]:
            if any(
                (
                    report.arrivals,
                    report.accepted,
                    report.rejected,
                    report.departures,
                    report.displaced,
                    report.failures,
                    report.drains,
                )
            ):
                out.append(
                    LawViolation(
                        self.name,
                        f"leading window {report.window_index} of the "
                        "shifted run was not idle",
                        {"decisions": _decisions(report)},
                    )
                )
        if len(shift_reports) != len(base_reports) + offset:
            out.append(
                LawViolation(
                    self.name,
                    "shifted run closed a different number of windows",
                    {
                        "base": len(base_reports),
                        "shifted": len(shift_reports),
                        "offset": offset,
                    },
                )
            )
        for index, base in enumerate(base_reports):
            if index + offset >= len(shift_reports):
                break
            mirrored = shift_reports[index + offset]
            if _decisions(base) != _decisions(mirrored):
                out.append(
                    LawViolation(
                        self.name,
                        f"window {index} decisions changed under a "
                        f"{shift:g}-unit time shift",
                        {
                            "base": _decisions(base),
                            "shifted": _decisions(mirrored),
                        },
                    )
                )
                break
        if _ledger(base_sched) != _ledger(shift_sched):
            out.append(
                LawViolation(
                    self.name,
                    "final platform ledger changed under time shift",
                    {},
                )
            )
        return out


class DrainFailEquivalenceLaw(DynamicLaw):
    """Drain→failure relabelling ⇒ identical trajectory, swapped report."""

    name = "drain_fail_equivalence"

    def check(self, compiled, allocator_factory, inject=None):
        """Check the law by relabelling every drain as a crash."""
        spec = compiled.spec
        if not compiled.drains:
            # The law needs maintenance events; synthesize them by
            # recompiling the spec with drains switched on.
            compiled = compile_scenario(
                replace(spec, drain_count=2), seed=compiled.seed
            )
        as_failures = [
            ServerFailureEvent(time=e.time, server=e.server, reason="failure")
            for e in compiled.drains
        ]
        if inject == "drain_drop":
            as_failures = []
        relabelled = CompiledScenario(
            spec=compiled.spec,
            seed=compiled.seed,
            infrastructure=compiled.infrastructure,
            arrivals=compiled.arrivals,
            departures=compiled.departures,
            failures=[*compiled.failures, *as_failures],
            drains=[],
            recoveries=compiled.recoveries,
        )
        drain_reports, drain_sched = _drive(compiled, allocator_factory())
        crash_reports, crash_sched = _drive(relabelled, allocator_factory())

        out: list[LawViolation] = []
        if len(drain_reports) != len(crash_reports):
            out.append(
                LawViolation(
                    self.name,
                    "relabelled run closed a different number of windows",
                    {
                        "drain": len(drain_reports),
                        "crash": len(crash_reports),
                    },
                )
            )
        for index, (a, b) in enumerate(zip(drain_reports, crash_reports)):
            if _decisions(a) != _decisions(b):
                out.append(
                    LawViolation(
                        self.name,
                        f"window {index} decisions changed when drains were "
                        "relabelled as failures",
                        {"drain": _decisions(a), "crash": _decisions(b)},
                    )
                )
                break
            if sorted(b.drains) != [] or sorted(
                [*a.failures, *a.drains]
            ) != sorted(b.failures):
                out.append(
                    LawViolation(
                        self.name,
                        f"window {index} outage classification did not swap "
                        "drains for failures",
                        {
                            "drain_run": {
                                "failures": list(a.failures),
                                "drains": list(a.drains),
                            },
                            "crash_run": {
                                "failures": list(b.failures),
                                "drains": list(b.drains),
                            },
                        },
                    )
                )
                break
        if _ledger(drain_sched) != _ledger(crash_sched):
            out.append(
                LawViolation(
                    self.name,
                    "final platform ledger changed under drain relabelling",
                    {},
                )
            )
        return out


#: The built-in dynamic laws, in documentation order.
DYNAMIC_LAWS: tuple[DynamicLaw, ...] = (
    WindowPermutationLaw(),
    TimeShiftLaw(),
    DrainFailEquivalenceLaw(),
)


@dataclass
class DynamicReport:
    """Outcome of one dynamic-law check over one scenario."""

    scenario: str
    seed: int | None
    checks: int = 0
    violations: list[LawViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every law held."""
        return not self.violations

    def format(self) -> str:
        """Summary plus every violation."""
        status = "ok" if self.ok else "FAILED"
        lines = [
            f"verify dynamic [{self.scenario}, seed={self.seed}]: "
            f"{self.checks} law check(s), "
            f"{len(self.violations)} violation(s) — {status}"
        ]
        lines.extend(f"  {violation}" for violation in self.violations)
        return "\n".join(lines)


def check_dynamic_laws(
    scenario: DynamicScenarioSpec | str = "steady_churn",
    seed: int = 0,
    *,
    allocator_factory: Callable[[], Allocator] | None = None,
    laws: Sequence[DynamicLaw] | None = None,
    inject: str | None = None,
) -> DynamicReport:
    """Run every dynamic law against one compiled scenario.

    ``inject`` deliberately breaks the matching law's transformation
    (``"shift_misalign"``, ``"drain_drop"``,
    ``"permute_requests_only"``) — the report must then come back
    non-ok, which the regression suite uses to prove each law has
    teeth.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    factory = allocator_factory or _default_allocator
    compiled = compile_scenario(scenario, seed=seed)
    report = DynamicReport(scenario=scenario.name, seed=seed)
    registry = get_registry()
    for law in laws if laws is not None else DYNAMIC_LAWS:
        found = law.check(compiled, factory, inject=inject)
        report.checks += 1
        registry.count("verify.dynamic.checks", law=law.name)
        if found:
            registry.count(
                "verify.dynamic.violations", len(found), law=law.name
            )
            report.violations.extend(found)
    return report
