"""Anytime-portfolio conformance verification.

The portfolio racer's contract (``docs/PORTFOLIO.md``) has three
provable halves, and this module proves all of them on one seeded
scenario the way :mod:`repro.verify.resume` proves the checkpoint
subsystem's — by running the real thing and comparing bytes:

1. **anytime monotonicity** — the pooled incumbent front's dominated
   hypervolume never shrinks as epochs accumulate: the
   :class:`~repro.portfolio.incumbents.IncumbentPool` only ever admits
   non-dominated feasible placements, so interrupting the race later
   can never hand back a worse plan;
2. **batch/stepwise parity and determinism** — ``allocate()`` (no
   deadline) is byte-identical to driving ``start()``/``step()`` to
   exhaustion and calling ``finish()``, and a second ``allocate()``
   with the same seed reproduces the first byte for byte;
3. **service wiring** — the background reoptimizer's shadow solve
   (:func:`~repro.service.reoptimizer.shadow_reoptimize`) really
   routes through the portfolio (its outcome reports
   ``algorithm="portfolio"``), not a leftover fixed-budget stack.

``python -m repro verify --check-anytime`` runs this from the CLI;
telemetry lands in ``verify.anytime.*``.  Deadlines stay unset here —
wall-clock cutoffs are legitimately non-deterministic, only the epoch
trajectory is byte-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ea.config import NSGAConfig
from repro.ea.hypervolume import hypervolume, reference_point
from repro.portfolio.racer import PortfolioAllocator
from repro.telemetry import get_registry
from repro.workloads.generator import ScenarioGenerator, ScenarioSpec

__all__ = [
    "AnytimeMismatch",
    "AnytimeReport",
    "check_anytime_conformance",
]


@dataclass(frozen=True)
class AnytimeMismatch:
    """One broken clause of the anytime contract."""

    check: str  #: "monotone", "parity", "determinism" or "reoptimizer"
    field: str  #: which compared quantity broke
    message: str

    def __str__(self) -> str:
        return f"[{self.check}] {self.field}: {self.message}"


@dataclass
class AnytimeReport:
    """Outcome of one :func:`check_anytime_conformance` pass."""

    seed: int
    servers: int
    vms: int
    members: str
    epochs: int = 0
    front_snapshots: int = 0
    comparisons: int = 0
    mismatches: list[AnytimeMismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every clause of the contract held."""
        return not self.mismatches

    def format(self) -> str:
        """Human-readable summary plus each mismatch."""
        header = (
            f"anytime conformance: {self.servers}x{self.vms} "
            f"seed={self.seed} members={self.members} — "
            f"{self.epochs} epochs, {self.front_snapshots} pooled-front "
            f"snapshots, {self.comparisons} comparisons, "
            f"{len(self.mismatches)} mismatches"
        )
        if self.ok:
            return (
                header
                + "\npooled front monotone; allocate ≡ stepwise ≡ rerun; "
                + "reoptimizer races the portfolio"
            )
        return "\n".join([header, *map(str, self.mismatches)])


def _flag(
    report: AnytimeReport, check: str, field_name: str, message: str
) -> None:
    get_registry().count("verify.anytime.mismatches")
    report.mismatches.append(
        AnytimeMismatch(check=check, field=field_name, message=message)
    )


def _compare_bytes(
    report: AnytimeReport,
    check: str,
    pairs: dict[str, tuple[np.ndarray, np.ndarray]],
) -> None:
    registry = get_registry()
    for name, (expected, actual) in pairs.items():
        report.comparisons += 1
        registry.count("verify.anytime.comparisons")
        expected = np.asarray(expected)
        actual = np.asarray(actual)
        if expected.tobytes() == actual.tobytes():
            continue
        drift = int(np.count_nonzero(expected != actual))
        _flag(
            report,
            check,
            name,
            f"{drift} of {expected.size} entries differ",
        )


def check_anytime_conformance(
    *,
    seed: int = 0,
    servers: int = 6,
    vms: int = 12,
    tightness: float = 0.8,
    population_size: int = 12,
    max_evaluations: int = 120,
    members: str = "nsga3_tabu+cp+tabu",
) -> AnytimeReport:
    """Prove the anytime portfolio contract on one seeded scenario.

    Three runs happen: a plain ``allocate()`` (the reference bytes), a
    manually stepped run recording the pooled front after every epoch
    (parity + monotonicity), and a second ``allocate()`` (determinism).
    A fourth, smaller solve goes through the live service's shadow
    reoptimizer to prove the wiring.
    """
    report = AnytimeReport(
        seed=seed, servers=servers, vms=vms, members=members
    )
    registry = get_registry()
    registry.count("verify.anytime.checks")

    spec = ScenarioSpec(
        servers=servers, datacenters=2, vms=vms, tightness=tightness
    )
    scenario = ScenarioGenerator(spec, seed=seed).generate()
    config = NSGAConfig(
        population_size=population_size,
        max_evaluations=max_evaluations,
        reference_point_divisions=4,
        seed=seed,
    )

    def solve_batch():
        allocator = PortfolioAllocator(config=config, members=members)
        try:
            return allocator.allocate(
                scenario.infrastructure, scenario.requests
            )
        finally:
            allocator.close()

    # 1. Reference bytes + 3. determinism.
    baseline = solve_batch()
    rerun = solve_batch()
    _compare_bytes(
        report,
        "determinism",
        {
            "outcome.assignment": (baseline.assignment, rerun.assignment),
            "outcome.objectives": (baseline.objectives, rerun.objectives),
            "outcome.accepted": (baseline.accepted, rerun.accepted),
        },
    )

    # 2. Stepwise drive: epoch-granular fronts + parity with allocate().
    allocator = PortfolioAllocator(config=config, members=members)
    fronts: list[np.ndarray] = []
    try:
        run = allocator.start(scenario.infrastructure, scenario.requests)
        try:
            while run.step():
                report.epochs += 1
                if len(run.pool):
                    fronts.append(np.array(run.best_front(), copy=True))
            report.epochs += 1
            if len(run.pool):
                fronts.append(np.array(run.best_front(), copy=True))
            stepwise = run.finish()
        finally:
            run.close()
    finally:
        allocator.close()
    _compare_bytes(
        report,
        "parity",
        {
            "outcome.assignment": (baseline.assignment, stepwise.assignment),
            "outcome.objectives": (baseline.objectives, stepwise.objectives),
            "outcome.accepted": (baseline.accepted, stepwise.accepted),
        },
    )

    # Monotone non-worsening pooled front: hypervolume under one shared
    # reference must never shrink from one epoch snapshot to the next.
    report.front_snapshots = len(fronts)
    if not fronts:
        _flag(
            report,
            "monotone",
            "pool",
            "incumbent pool never filled — no front to check",
        )
    else:
        reference = reference_point(np.vstack(fronts), margin=1.0)
        previous = None
        for index, front in enumerate(fronts):
            report.comparisons += 1
            registry.count("verify.anytime.comparisons")
            hv = hypervolume(front, reference)
            if previous is not None and hv < previous - 1e-9:
                _flag(
                    report,
                    "monotone",
                    f"snapshot[{index}]",
                    f"pooled-front hypervolume shrank {previous:.6f} -> "
                    f"{hv:.6f}",
                )
            previous = hv

    # 4. Service wiring: the shadow reoptimizer must race the portfolio.
    from repro.service.reoptimizer import shadow_reoptimize
    from repro.service.state import ServiceState

    state = ServiceState(scenario.infrastructure, seed=seed)
    state.admit(
        arrivals=[
            (f"vm-{index}", request)
            for index, request in enumerate(scenario.requests)
        ]
    )
    payload, _epoch = state.snapshot()
    report.comparisons += 1
    registry.count("verify.anytime.comparisons")
    result = shadow_reoptimize(
        scenario.infrastructure, payload, config, members=members
    )
    algorithm = result.get("algorithm")
    if algorithm != "portfolio":
        _flag(
            report,
            "reoptimizer",
            "algorithm",
            f"shadow solve reported {algorithm!r}, expected 'portfolio'",
        )
    return report
