"""Metamorphic laws: scenario transformations with known consequences.

Heuristic allocators have no ground truth to compare against on large
instances — but the *model* still obeys exact relationships under
controlled transformations of the instance.  Each law here transforms
an (infrastructure, requests, assignment) triple and states what must
hold afterwards.  All four laws are theorems of the Section III
equations, not empirical observations about particular solvers, so a
violation always indicts the evaluation stack:

* :class:`ServerPermutationLaw` — relabelling servers (and mapping the
  genome through the same permutation) leaves violations identical and
  objectives equal up to float re-association;
* :class:`CapacityInflationLaw` — scaling every capacity by f >= 1
  never increases capacity violations, never rejects a previously
  accepted request, and leaves the usage/operating objective untouched;
* :class:`CostScalingLaw` — scaling the cost vectors E and U by f
  scales the usage/operating objective by exactly f and leaves
  downtime, migration and every violation count unchanged;
* :class:`DuplicateRequestIdempotenceLaw` — appending a duplicate of a
  request whose copies stay unplaced changes nothing: objectives and
  non-assignment violations are identical and the original requests'
  accept/reject decisions are preserved.

Laws are checked end-to-end through the public evaluation machinery
(:class:`~repro.objectives.evaluator.PopulationEvaluator`,
:func:`~repro.allocator.per_request_rejections`), so they cover the
same code every :class:`~repro.allocator.Allocator` reports through.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from repro.allocator import per_request_rejections
from repro.constraints.registry import ConstraintSet
from repro.model.infrastructure import Infrastructure
from repro.model.placement import UNPLACED
from repro.model.request import Request
from repro.objectives.evaluator import PopulationEvaluator
from repro.telemetry import get_registry
from repro.types import FloatArray, IntArray

__all__ = [
    "ALL_LAWS",
    "CapacityInflationLaw",
    "CostScalingLaw",
    "DuplicateRequestIdempotenceLaw",
    "LawViolation",
    "MetamorphicLaw",
    "ServerPermutationLaw",
    "run_laws",
]


@dataclass(frozen=True)
class LawViolation:
    """One broken metamorphic relationship."""

    law: str
    message: str
    details: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return f"[{self.law}] {self.message}"


@dataclass(frozen=True)
class LawContext:
    """The triple a law transforms, plus per-window dynamics."""

    infrastructure: Infrastructure
    requests: tuple[Request, ...]
    assignment: IntArray
    base_usage: FloatArray | None = None
    previous_assignment: IntArray | None = None

    @property
    def merged(self) -> tuple[Request, IntArray]:
        """A copy of the base allocator kwargs with ``overrides`` applied."""
        return Request.concatenate(list(self.requests))


def _evaluate(
    infrastructure: Infrastructure,
    requests: Sequence[Request],
    assignment: IntArray,
    base_usage: FloatArray | None = None,
    previous_assignment: IntArray | None = None,
):
    """(objectives, breakdown, rejected) through the reference stack."""
    merged, owner = Request.concatenate(list(requests))
    constraints = ConstraintSet(
        infrastructure, merged, base_usage=base_usage, include_assignment=True
    )
    evaluator = PopulationEvaluator(
        infrastructure,
        merged,
        base_usage=base_usage,
        previous_assignment=previous_assignment,
        include_assignment_constraint=True,
        constraints=constraints,
    )
    assignment = np.asarray(assignment, dtype=np.int64)
    objectives = evaluator.evaluate(assignment).as_array()
    breakdown = constraints.breakdown(assignment)
    rejected = per_request_rejections(assignment, merged, owner, constraints)
    return objectives, breakdown, rejected


class MetamorphicLaw(abc.ABC):
    """One transformation with a checkable consequence."""

    name: str = "law"

    @abc.abstractmethod
    def check(
        self, ctx: LawContext, rng: np.random.Generator
    ) -> list[LawViolation]:
        """Apply the transformation and verify the relationship."""


class ServerPermutationLaw(MetamorphicLaw):
    """Server relabelling ⇒ identical scores up to relabeling."""

    name = "server_permutation"

    def check(self, ctx, rng):
        """Check the law on one scenario; see :class:`MetamorphicLaw`."""
        infra = ctx.infrastructure
        perm = rng.permutation(infra.m)
        permuted = Infrastructure(
            capacity=infra.capacity[perm],
            capacity_factor=infra.capacity_factor[perm],
            operating_cost=infra.operating_cost[perm],
            usage_cost=infra.usage_cost[perm],
            max_load=infra.max_load[perm],
            max_qos=infra.max_qos[perm],
            server_datacenter=infra.server_datacenter[perm],
            schema=infra.schema,
        )
        # inverse[old_server] = new index of that server after perm.
        inverse = np.empty(infra.m, dtype=np.int64)
        inverse[perm] = np.arange(infra.m)
        assignment = np.asarray(ctx.assignment, np.int64)
        mapped = np.where(
            assignment == UNPLACED, UNPLACED, inverse[assignment]
        )
        base = None if ctx.base_usage is None else ctx.base_usage[perm]
        previous = (
            None
            if ctx.previous_assignment is None
            else np.where(
                ctx.previous_assignment == UNPLACED,
                UNPLACED,
                inverse[ctx.previous_assignment],
            )
        )

        before = _evaluate(
            infra, ctx.requests, assignment, ctx.base_usage, ctx.previous_assignment
        )
        after = _evaluate(permuted, ctx.requests, mapped, base, previous)
        out: list[LawViolation] = []
        if before[1] != after[1]:
            out.append(
                LawViolation(
                    self.name,
                    "violation breakdown changed under server relabeling",
                    {"before": before[1], "after": after[1]},
                )
            )
        if not np.allclose(before[0], after[0], rtol=1e-9, atol=1e-9):
            out.append(
                LawViolation(
                    self.name,
                    "objective vector changed under server relabeling",
                    {"before": before[0].tolist(), "after": after[0].tolist()},
                )
            )
        if not np.array_equal(before[2], after[2]):
            out.append(
                LawViolation(
                    self.name,
                    "rejection mask changed under server relabeling",
                    {},
                )
            )
        return out


class CapacityInflationLaw(MetamorphicLaw):
    """Capacity inflation ⇒ rejections and overloads only shrink."""

    name = "capacity_inflation"

    def check(self, ctx, rng):
        """Check the law on one scenario; see :class:`MetamorphicLaw`."""
        factor = float(rng.uniform(1.0, 2.0))
        infra = ctx.infrastructure
        inflated = replace(infra, capacity=infra.capacity * factor)
        before = _evaluate(
            infra,
            ctx.requests,
            ctx.assignment,
            ctx.base_usage,
            ctx.previous_assignment,
        )
        after = _evaluate(
            inflated,
            ctx.requests,
            ctx.assignment,
            ctx.base_usage,
            ctx.previous_assignment,
        )
        out: list[LawViolation] = []
        if after[1].get("capacity", 0) > before[1].get("capacity", 0):
            out.append(
                LawViolation(
                    self.name,
                    f"capacity violations increased under x{factor:.3f} inflation",
                    {"before": before[1], "after": after[1]},
                )
            )
        if np.any(after[2] & ~before[2]):
            out.append(
                LawViolation(
                    self.name,
                    "a previously accepted request became rejected after "
                    f"x{factor:.3f} capacity inflation",
                    {"requests": np.flatnonzero(after[2] & ~before[2]).tolist()},
                )
            )
        if not np.isclose(after[0][0], before[0][0], rtol=1e-9):
            out.append(
                LawViolation(
                    self.name,
                    "usage/operating cost depends on capacity (it must not)",
                    {"before": before[0][0], "after": after[0][0]},
                )
            )
        return out


class CostScalingLaw(MetamorphicLaw):
    """Cost-coefficient scaling ⇒ proportional usage cost, rest fixed."""

    name = "cost_scaling"

    def check(self, ctx, rng):
        """Check the law on one scenario; see :class:`MetamorphicLaw`."""
        factor = float(rng.uniform(0.25, 4.0))
        infra = ctx.infrastructure
        scaled = replace(
            infra,
            operating_cost=infra.operating_cost * factor,
            usage_cost=infra.usage_cost * factor,
        )
        before = _evaluate(
            infra,
            ctx.requests,
            ctx.assignment,
            ctx.base_usage,
            ctx.previous_assignment,
        )
        after = _evaluate(
            scaled,
            ctx.requests,
            ctx.assignment,
            ctx.base_usage,
            ctx.previous_assignment,
        )
        out: list[LawViolation] = []
        if not np.isclose(after[0][0], factor * before[0][0], rtol=1e-9, atol=1e-12):
            out.append(
                LawViolation(
                    self.name,
                    f"usage cost did not scale by x{factor:.3f}",
                    {"before": before[0][0], "after": after[0][0]},
                )
            )
        if not np.allclose(after[0][1:], before[0][1:], rtol=1e-9, atol=1e-12):
            out.append(
                LawViolation(
                    self.name,
                    "downtime/migration objectives changed under cost scaling",
                    {"before": before[0].tolist(), "after": after[0].tolist()},
                )
            )
        if before[1] != after[1] or not np.array_equal(before[2], after[2]):
            out.append(
                LawViolation(
                    self.name,
                    "violations or rejections changed under cost scaling",
                    {"before": before[1], "after": after[1]},
                )
            )
        return out


class DuplicateRequestIdempotenceLaw(MetamorphicLaw):
    """Unplaced duplicate requests ⇒ scores unchanged."""

    name = "duplicate_request_idempotence"

    def check(self, ctx, rng):
        """Check the law on one scenario; see :class:`MetamorphicLaw`."""
        requests = ctx.requests
        duplicated = (*requests, requests[int(rng.integers(0, len(requests)))])
        extra = duplicated[-1].n
        assignment = np.asarray(ctx.assignment, np.int64)
        extended = np.concatenate(
            [assignment, np.full(extra, UNPLACED, dtype=np.int64)]
        )
        previous = (
            None
            if ctx.previous_assignment is None
            else np.concatenate(
                [
                    np.asarray(ctx.previous_assignment, np.int64),
                    np.full(extra, UNPLACED, dtype=np.int64),
                ]
            )
        )
        before = _evaluate(
            ctx.infrastructure,
            requests,
            assignment,
            ctx.base_usage,
            ctx.previous_assignment,
        )
        after = _evaluate(
            ctx.infrastructure, duplicated, extended, ctx.base_usage, previous
        )
        out: list[LawViolation] = []
        if not np.allclose(after[0], before[0], rtol=1e-9, atol=1e-12):
            out.append(
                LawViolation(
                    self.name,
                    "objectives changed after appending an unplaced duplicate",
                    {"before": before[0].tolist(), "after": after[0].tolist()},
                )
            )
        before_breakdown = dict(before[1])
        after_breakdown = dict(after[1])
        before_breakdown.pop("assignment", None)
        after_breakdown.pop("assignment", None)
        if before_breakdown != after_breakdown:
            out.append(
                LawViolation(
                    self.name,
                    "non-assignment violations changed after an unplaced "
                    "duplicate request",
                    {"before": before_breakdown, "after": after_breakdown},
                )
            )
        if not np.array_equal(before[2], after[2][: len(requests)]):
            out.append(
                LawViolation(
                    self.name,
                    "original requests' rejection decisions changed",
                    {},
                )
            )
        if not np.all(after[2][len(requests) :]):
            out.append(
                LawViolation(
                    self.name,
                    "an unplaced duplicate request was reported accepted",
                    {},
                )
            )
        return out


#: The built-in laws, in documentation order.
ALL_LAWS: tuple[MetamorphicLaw, ...] = (
    ServerPermutationLaw(),
    CapacityInflationLaw(),
    CostScalingLaw(),
    DuplicateRequestIdempotenceLaw(),
)


def run_laws(
    infrastructure: Infrastructure,
    requests: Sequence[Request],
    assignment: IntArray,
    *,
    rng: np.random.Generator | None = None,
    base_usage: FloatArray | None = None,
    previous_assignment: IntArray | None = None,
    laws: Sequence[MetamorphicLaw] | None = None,
) -> list[LawViolation]:
    """Check every law against one placement; returns all violations.

    Counts ``verify.metamorphic.checks`` / ``verify.metamorphic.violations``
    per law into the telemetry registry.
    """
    ctx = LawContext(
        infrastructure=infrastructure,
        requests=tuple(requests),
        assignment=np.asarray(assignment, dtype=np.int64),
        base_usage=base_usage,
        previous_assignment=previous_assignment,
    )
    rng = rng or np.random.default_rng()
    registry = get_registry()
    violations: list[LawViolation] = []
    for law in laws if laws is not None else ALL_LAWS:
        found = law.check(ctx, rng)
        registry.count("verify.metamorphic.checks", law=law.name)
        if found:
            registry.count(
                "verify.metamorphic.violations", len(found), law=law.name
            )
            violations.extend(found)
    return violations
