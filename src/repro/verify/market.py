"""Market-layer conformance verification.

The market layer (:mod:`repro.market`) promises two things at once:

1. **Byte-identity off the market path.**  A single-provider market is
   *exactly* the pre-market model: wrapping an estate in
   ``ProviderMarket.from_infrastructure(infra, 1)`` and compiling it
   must reproduce the original infrastructure's serialized form, its
   compiled-problem fingerprint, and — differentially — the exact
   allocation outcome any inner allocator produced before the market
   layer existed.  Likewise, selection with *no* preference order must
   be bit-for-bit the paper's ideal-point pick.
2. **Market semantics on the market path.**  On a multi-provider
   market, every ``provider:<name>`` plan confines accepted work to
   that provider's servers, the brokered front is mutually
   nondominated with the deployed plan a member, per-provider
   aggregate load closes under provider capacity, and preference
   selection is deterministic, total over any front, and invariant
   under front permutation.

``python -m repro verify --check-market`` runs this from the CLI;
telemetry lands in ``verify.market.*``.  Provider model and preference
grammar: ``docs/MARKET.md``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.baselines.round_robin import RoundRobinAllocator
from repro.engine.compiled import CompiledProblem
from repro.market.broker import BrokeredAllocator
from repro.market.preferences import parse_preference, select_index
from repro.market.providers import ProviderMarket
from repro.model.placement import UNPLACED
from repro.model.request import Request
from repro.serialization import infrastructure_to_dict
from repro.telemetry import get_registry
from repro.utils.pareto import dominance_matrix
from repro.workloads.generator import ScenarioGenerator, ScenarioSpec

__all__ = [
    "MarketMismatch",
    "MarketConformanceReport",
    "check_market_conformance",
]


@dataclass(frozen=True)
class MarketMismatch:
    """One broken market-layer promise."""

    check: str  #: which conformance check failed
    case: str  #: which instance / fixture
    message: str

    def __str__(self) -> str:
        return f"[{self.check}] {self.case}: {self.message}"


@dataclass
class MarketConformanceReport:
    """Outcome of one :func:`check_market_conformance` pass."""

    seed: int
    cases: tuple[str, ...] = ()
    comparisons: int = 0
    mismatches: list[MarketMismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every market promise held."""
        return not self.mismatches

    def format(self) -> str:
        """Human-readable summary plus each mismatch."""
        header = (
            f"market conformance: seed={self.seed} over "
            f"{len(self.cases)} cases — {self.comparisons} comparisons, "
            f"{len(self.mismatches)} mismatches"
        )
        if self.ok:
            return (
                header
                + "\nsingle-provider path byte-identical; brokered front and "
                "preference selection conform"
            )
        return "\n".join([header, *map(str, self.mismatches)])


def _note(
    report: MarketConformanceReport,
    ok: bool,
    check: str,
    case: str,
    message: str,
) -> None:
    registry = get_registry()
    report.comparisons += 1
    registry.count("verify.market.comparisons", check=check)
    if not ok:
        registry.count("verify.market.mismatches", check=check)
        report.mismatches.append(
            MarketMismatch(check=check, case=case, message=message)
        )


def _scenario(seed: int, servers: int = 12, vms: int = 10):
    spec = ScenarioSpec(
        servers=servers,
        datacenters=3,
        vms=vms,
        max_request_size=3,
        tightness=0.5,
    )
    return ScenarioGenerator(spec, seed=seed).generate()


# ----------------------------------------------------------------------
# Check 1: single-provider byte-identity (serialization, fingerprint,
# differential allocation outcome)
# ----------------------------------------------------------------------
def _check_identity(report: MarketConformanceReport, seed: int) -> None:
    scenario = _scenario(seed)
    infra = scenario.infrastructure
    requests = list(scenario.requests)
    case = f"identity[{seed}]"

    compiled = ProviderMarket.from_infrastructure(infra, 1).compile(at=9.0)
    _note(
        report,
        json.dumps(infrastructure_to_dict(infra), sort_keys=True)
        == json.dumps(infrastructure_to_dict(compiled.infrastructure), sort_keys=True),
        "single_provider_serialization",
        case,
        "1-provider market compile changed the serialized estate",
    )
    merged, _ = Request.concatenate(requests)
    _note(
        report,
        CompiledProblem.fingerprint_of(infra, merged)
        == CompiledProblem.fingerprint_of(compiled.infrastructure, merged),
        "single_provider_fingerprint",
        case,
        "1-provider market compile changed the problem fingerprint",
    )

    direct = RoundRobinAllocator().allocate(infra, list(requests))
    through = RoundRobinAllocator().allocate(
        compiled.infrastructure, list(requests)
    )
    _note(
        report,
        np.array_equal(direct.assignment, through.assignment)
        and np.array_equal(direct.accepted, through.accepted)
        and direct.objectives.tobytes() == through.objectives.tobytes(),
        "single_provider_outcome",
        case,
        "allocation through the 1-provider market diverged from the "
        "direct allocation",
    )


# ----------------------------------------------------------------------
# Check 2: brokered-market semantics on a 3-provider estate
# ----------------------------------------------------------------------
def _check_broker(report: MarketConformanceReport, seed: int) -> None:
    scenario = _scenario(seed + 17)
    market = ProviderMarket.from_infrastructure(scenario.infrastructure, 3)
    broker = BrokeredAllocator(market, lambda: RoundRobinAllocator())
    outcome = broker.allocate(list(scenario.requests), at=6.0)
    case = f"broker[{seed}]"

    front = outcome.front_objectives
    _note(
        report,
        front.shape[0] < 2 or not np.any(dominance_matrix(front)),
        "brokered_front_non_domination",
        case,
        "brokered front contains a dominated plan",
    )
    _note(
        report,
        any(plan is outcome.deployed for plan in outcome.front),
        "deployed_in_front",
        case,
        f"deployed plan {outcome.deployed.route!r} is not a front member",
    )

    infra = outcome.instance.infrastructure
    provider = infra.provider_of_server
    merged, owner = Request.concatenate(list(scenario.requests))
    for k, name in enumerate(market.names):
        plan = next(
            p for p in outcome.plans if p.route == f"provider:{name}"
        )
        genes = np.where(
            plan.outcome.accepted[owner], plan.outcome.assignment, UNPLACED
        )
        placed = genes[genes != UNPLACED]
        _note(
            report,
            placed.size == 0 or bool(np.all(provider[placed] == k)),
            "provider_confinement",
            case,
            f"route provider:{name} placed accepted work outside "
            f"provider {k}",
        )

    repeat = broker.allocate(list(scenario.requests), at=6.0)
    _note(
        report,
        repeat.deployed.route == outcome.deployed.route
        and repeat.deployed.objectives.tobytes()
        == outcome.deployed.objectives.tobytes(),
        "broker_determinism",
        case,
        "two identical brokered runs deployed different plans",
    )


# ----------------------------------------------------------------------
# Check 3: preference-selection consistency on fuzzed fronts
# ----------------------------------------------------------------------
def _check_preferences(report: MarketConformanceReport, seed: int) -> None:
    rng = np.random.default_rng(seed)
    orders = [
        None,
        parse_preference("provider_cost>qos>migration"),
        parse_preference("qos>migration"),
        parse_preference("migration"),
    ]
    for trial in range(6):
        front = rng.random((int(rng.integers(1, 12)), 3)) * 100.0
        case = f"front[{trial}] ({front.shape[0]} points)"
        for preference in orders:
            label = "ideal-point" if preference is None else preference.spec
            index = select_index(front, preference)
            _note(
                report,
                0 <= index < front.shape[0],
                "selection_total",
                case,
                f"{label}: index {index} outside the front",
            )
            _note(
                report,
                index == select_index(front, preference),
                "selection_deterministic",
                case,
                f"{label}: two selections over the same front disagreed",
            )
            if preference is None:
                lo = front.min(axis=0)
                span = np.where(
                    front.max(axis=0) - lo > 0, front.max(axis=0) - lo, 1.0
                )
                expected = int(
                    np.argmin(
                        np.sqrt((((front - lo) / span) ** 2).sum(axis=1))
                    )
                )
                _note(
                    report,
                    index == expected,
                    "selection_ideal_point_identity",
                    case,
                    "no-preference selection drifted from the ideal-point "
                    "pick",
                )
            else:
                permutation = rng.permutation(front.shape[0])
                mirrored = select_index(front[permutation], preference)
                _note(
                    report,
                    np.array_equal(
                        front[index], front[permutation][mirrored]
                    ),
                    "selection_permutation_invariant",
                    case,
                    f"{label}: selected vector changed under permutation",
                )


def check_market_conformance(*, seed: int = 0) -> MarketConformanceReport:
    """Prove the market layer's byte-identity and brokering promises.

    Runs the single-provider differential, the 3-provider brokered
    semantics and the preference-selection laws; see the module
    docstring for the full catalog.
    """
    report = MarketConformanceReport(seed=seed)
    registry = get_registry()
    registry.count("verify.market.checks")
    _check_identity(report, seed)
    _check_broker(report, seed)
    _check_preferences(report, seed)
    report.cases = (
        f"identity[{seed}]",
        f"broker[{seed}]",
        "preference fronts x6",
    )
    return report
