"""Kill-and-resume determinism verification.

The checkpoint subsystem's contract (``docs/RUNBOOK.md``) is byte
identity: a run killed at a checkpoint boundary and resumed from disk
finishes exactly as the uninterrupted run would have — same final
population bytes, same selected assignment, same evaluation counter.
This module proves the contract the way :mod:`repro.verify.parallel`
proves the engine's: run all three trajectories for real (baseline,
killed, resumed) and compare raw bytes.

The kill is simulated deterministically rather than with real signals:
the first run gets a truncated evaluation budget plus checkpointing, so
it stops at a generation boundary with a checkpoint on disk — exactly
the state a SIGTERM'd run flushes.  Because
:func:`~repro.runtime.checkpoint.trajectory_key` excludes stopping
criteria, a second run with the full budget and the same checkpoint
directory auto-resumes from that boundary.

Two layers are compared per worker count (0 = serial):

1. **engine level** — NSGA-III + tabu repair over a compiled instance;
   final population genomes/objectives/violations and the evaluation
   counter must match the uninterrupted baseline byte for byte, and the
   second run must actually have resumed;
2. **allocator level** — a full :class:`NSGA3TabuAllocator.allocate`,
   comparing assignment, objectives and acceptance mask.

``python -m repro verify --check-resume`` runs this from the CLI;
telemetry lands in ``verify.resume.*``.  ``time_limit`` must stay
unset here: deadline-bounded repair is wall-clock dependent and
legitimately breaks byte identity.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field

import numpy as np

from repro.ea.config import NSGAConfig
from repro.ea.constraint_handling import RepairHandling
from repro.ea.nsga3 import NSGA3
from repro.engine.compiled import CompiledProblem
from repro.engine.parallel import ParallelEngine
from repro.model.request import Request
from repro.runtime.checkpoint import CheckpointManager
from repro.tabu.repair import TabuRepair
from repro.telemetry import get_registry
from repro.workloads.generator import ScenarioGenerator, ScenarioSpec

__all__ = [
    "ResumeMismatch",
    "ResumeDeterminismReport",
    "check_resume_determinism",
]


@dataclass(frozen=True)
class ResumeMismatch:
    """One field where the resumed run drifted from the baseline."""

    n_workers: int
    layer: str  #: "engine" or "allocator"
    field: str  #: which compared quantity drifted
    message: str

    def __str__(self) -> str:
        return (
            f"[{self.layer}] n_workers={self.n_workers}: "
            f"{self.field} diverged after resume — {self.message}"
        )


@dataclass
class ResumeDeterminismReport:
    """Outcome of one :func:`check_resume_determinism` pass."""

    worker_counts: tuple[int, ...]
    seed: int
    servers: int
    vms: int
    comparisons: int = 0
    resumed_generations: list[int] = field(default_factory=list)
    mismatches: list[ResumeMismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every resumed run matched the uninterrupted bytes."""
        return not self.mismatches

    def format(self) -> str:
        """Human-readable summary plus each mismatch."""
        header = (
            f"resume determinism: {self.servers}x{self.vms} seed={self.seed} "
            f"workers={list(self.worker_counts)} — "
            f"{self.comparisons} comparisons, "
            f"resumed at generations {self.resumed_generations}, "
            f"{len(self.mismatches)} mismatches"
        )
        if self.ok:
            return header + "\nall resumed runs byte-identical to uninterrupted"
        return "\n".join([header, *map(str, self.mismatches)])


def _compare(
    report: ResumeDeterminismReport,
    n_workers: int,
    layer: str,
    pairs: dict[str, tuple[np.ndarray, np.ndarray]],
) -> None:
    registry = get_registry()
    for name, (baseline, resumed) in pairs.items():
        report.comparisons += 1
        registry.count("verify.resume.comparisons")
        baseline = np.asarray(baseline)
        resumed = np.asarray(resumed)
        if baseline.tobytes() == resumed.tobytes():
            continue
        registry.count("verify.resume.mismatches")
        drift = int(np.count_nonzero(baseline != resumed))
        report.mismatches.append(
            ResumeMismatch(
                n_workers=n_workers,
                layer=layer,
                field=name,
                message=f"{drift} of {baseline.size} entries differ",
            )
        )


def _flag(
    report: ResumeDeterminismReport, n_workers: int, layer: str, field_name: str, message: str
) -> None:
    get_registry().count("verify.resume.mismatches")
    report.mismatches.append(
        ResumeMismatch(
            n_workers=n_workers, layer=layer, field=field_name, message=message
        )
    )


def check_resume_determinism(
    worker_counts: tuple[int, ...] = (0, 2),
    *,
    seed: int = 0,
    servers: int = 6,
    vms: int = 12,
    tightness: float = 0.85,
    population_size: int = 12,
    max_evaluations: int = 144,
    checkpoint_every: int = 2,
) -> ResumeDeterminismReport:
    """Prove kill-and-resume byte-identity on one seeded scenario.

    For each worker count three trajectories run: the uninterrupted
    baseline (full budget, no checkpoints), the "killed" run (half
    budget, checkpointing every ``checkpoint_every`` generations) and
    the resumed run (full budget, same checkpoint directory).  The
    instance is kept tight so the repair path carries real state (the
    parallel batch counter) across the checkpoint.
    """
    worker_counts = tuple(int(w) for w in worker_counts)
    report = ResumeDeterminismReport(
        worker_counts=worker_counts, seed=seed, servers=servers, vms=vms
    )
    registry = get_registry()
    registry.count("verify.resume.checks")

    spec = ScenarioSpec(
        servers=servers, datacenters=2, vms=vms, tightness=tightness
    )
    scenario = ScenarioGenerator(spec, seed=seed).generate()
    merged, _ = Request.concatenate(scenario.requests)
    compiled = CompiledProblem(scenario.infrastructure, merged)
    truncated_budget = max(
        max_evaluations // 2, population_size * (checkpoint_every + 2)
    )

    def engine_run(
        engine: ParallelEngine | None,
        budget: int,
        manager: CheckpointManager | None,
    ):
        config = NSGAConfig(
            population_size=population_size,
            max_evaluations=budget,
            reference_point_divisions=4,
            checkpoint_every=checkpoint_every,
            seed=seed,
        )
        repair = TabuRepair(
            scenario.infrastructure,
            merged,
            seed=config.seed,
            compiled=compiled,
            engine=engine,
        )
        evaluator = compiled.evaluator()
        nsga = NSGA3(config=config, handler=RepairHandling(repair))
        return nsga.run(
            evaluator,
            checkpoint_manager=manager,
            fingerprint=compiled.fingerprint,
        )

    def allocator_run(n_workers: int, budget: int, directory: str | None):
        from repro.hybrid.nsga_allocators import NSGA3TabuAllocator

        config = NSGAConfig(
            population_size=population_size,
            max_evaluations=budget,
            reference_point_divisions=4,
            n_workers=n_workers,
            checkpoint_dir=directory,
            checkpoint_every=checkpoint_every,
            seed=seed,
        )
        allocator = NSGA3TabuAllocator(config=config)
        try:
            return allocator.allocate(scenario.infrastructure, scenario.requests)
        finally:
            allocator.close()

    for n_workers in worker_counts:
        def pooled() -> ParallelEngine | None:
            return ParallelEngine(n_workers) if n_workers >= 1 else None

        # Engine layer: baseline, killed (truncated budget), resumed.
        engine = pooled()
        try:
            baseline = engine_run(engine, max_evaluations, None)
        finally:
            if engine is not None:
                engine.close()
        with tempfile.TemporaryDirectory() as directory:
            manager = CheckpointManager(directory)
            engine = pooled()
            try:
                engine_run(engine, truncated_budget, manager)
            finally:
                if engine is not None:
                    engine.close()
            engine = pooled()
            try:
                resumed = engine_run(engine, max_evaluations, manager)
            finally:
                if engine is not None:
                    engine.close()
        if resumed.resumed_from is None:
            _flag(
                report,
                n_workers,
                "engine",
                "resumed_from",
                "second run did not pick up the checkpoint",
            )
        else:
            report.resumed_generations.append(resumed.resumed_from)
        _compare(
            report,
            n_workers,
            "engine",
            {
                "population.genomes": (
                    baseline.population.genomes,
                    resumed.population.genomes,
                ),
                "population.objectives": (
                    baseline.population.objectives,
                    resumed.population.objectives,
                ),
                "population.violations": (
                    baseline.population.violations,
                    resumed.population.violations,
                ),
                "evaluations": (
                    np.asarray(baseline.evaluations),
                    np.asarray(resumed.evaluations),
                ),
            },
        )

        # Allocator layer: the full merge/repair/select/post-process path.
        baseline_outcome = allocator_run(n_workers, max_evaluations, None)
        with tempfile.TemporaryDirectory() as directory:
            allocator_run(n_workers, truncated_budget, directory)
            resumed_outcome = allocator_run(n_workers, max_evaluations, directory)
        if "resumed_from" not in resumed_outcome.extra:
            _flag(
                report,
                n_workers,
                "allocator",
                "resumed_from",
                "second allocate did not pick up the checkpoint",
            )
        _compare(
            report,
            n_workers,
            "allocator",
            {
                "outcome.assignment": (
                    baseline_outcome.assignment,
                    resumed_outcome.assignment,
                ),
                "outcome.objectives": (
                    baseline_outcome.objectives,
                    resumed_outcome.objectives,
                ),
                "outcome.accepted": (
                    baseline_outcome.accepted,
                    resumed_outcome.accepted,
                ),
            },
        )
    return report
