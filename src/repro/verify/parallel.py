"""Serial-vs-parallel determinism verification.

The parallel execution engine's contract (``docs/PARALLEL.md``) is that
fanning tabu repair and population evaluation out over worker processes
changes *nothing* about the result: for a given seed the final
populations and the selected assignment are byte-identical to the
serial path at every worker count.  This module drives that contract
the way the oracle drives evaluator parity — run both paths for real,
compare raw bytes, diagnose any drift.

Two layers are compared per worker count:

1. **engine level** — an NSGA-III + tabu-repair run over a compiled
   instance, serial handler vs pool-backed handler; the final
   population's genomes, objectives and violations must match byte for
   byte;
2. **allocator level** — a full :class:`NSGA3TabuAllocator.allocate`
   (merge, repair, selection, post-process), comparing the returned
   assignment and objective vector.

``python -m repro verify --check-parallel 1,2,4`` runs this from the
CLI; telemetry lands in ``verify.parallel.*``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ea.config import NSGAConfig
from repro.ea.constraint_handling import RepairHandling
from repro.ea.nsga3 import NSGA3
from repro.engine.compiled import CompiledProblem
from repro.engine.parallel import ParallelEngine
from repro.model.request import Request
from repro.tabu.repair import TabuRepair
from repro.telemetry import get_registry
from repro.workloads.generator import ScenarioGenerator, ScenarioSpec

__all__ = [
    "ParallelMismatch",
    "ParallelDeterminismReport",
    "check_parallel_determinism",
]


@dataclass(frozen=True)
class ParallelMismatch:
    """One field that differed between the serial and parallel runs."""

    n_workers: int
    layer: str  #: "engine" or "allocator"
    field: str  #: which compared array drifted
    message: str

    def __str__(self) -> str:
        return (
            f"[{self.layer}] n_workers={self.n_workers}: "
            f"{self.field} diverged from serial — {self.message}"
        )


@dataclass
class ParallelDeterminismReport:
    """Outcome of one :func:`check_parallel_determinism` pass."""

    worker_counts: tuple[int, ...]
    seed: int
    servers: int
    vms: int
    comparisons: int = 0
    fallbacks: int = 0
    mismatches: list[ParallelMismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every parallel run matched the serial bytes."""
        return not self.mismatches

    def format(self) -> str:
        """Human-readable summary plus each mismatch."""
        header = (
            f"parallel determinism: {self.servers}x{self.vms} seed={self.seed} "
            f"workers={list(self.worker_counts)} — "
            f"{self.comparisons} comparisons, "
            f"{len(self.mismatches)} mismatches"
            + (f", {self.fallbacks} engine fallbacks" if self.fallbacks else "")
        )
        if self.ok:
            return header + "\nall parallel runs byte-identical to serial"
        return "\n".join([header, *map(str, self.mismatches)])


def _compare(
    report: ParallelDeterminismReport,
    n_workers: int,
    layer: str,
    pairs: dict[str, tuple[np.ndarray, np.ndarray]],
) -> None:
    registry = get_registry()
    for name, (serial, parallel) in pairs.items():
        report.comparisons += 1
        registry.count("verify.parallel.comparisons")
        if serial.tobytes() == parallel.tobytes():
            continue
        registry.count("verify.parallel.mismatches")
        drift = int(np.count_nonzero(np.asarray(serial) != np.asarray(parallel)))
        report.mismatches.append(
            ParallelMismatch(
                n_workers=n_workers,
                layer=layer,
                field=name,
                message=f"{drift} of {serial.size} entries differ",
            )
        )


def check_parallel_determinism(
    worker_counts: tuple[int, ...] = (1, 2, 4),
    *,
    seed: int = 0,
    servers: int = 6,
    vms: int = 12,
    tightness: float = 0.85,
    population_size: int = 12,
    max_evaluations: int = 120,
) -> ParallelDeterminismReport:
    """Prove serial/parallel byte-identity on one seeded scenario.

    The instance is kept deliberately tight so every generation carries
    infeasible offspring and the repair fan-out actually runs; each
    worker count gets a fresh :class:`ParallelEngine` (own pool, own
    shared-memory segments) and both layers are compared against the
    serial baseline computed once.
    """
    worker_counts = tuple(int(w) for w in worker_counts)
    report = ParallelDeterminismReport(
        worker_counts=worker_counts, seed=seed, servers=servers, vms=vms
    )
    registry = get_registry()
    registry.count("verify.parallel.checks")

    spec = ScenarioSpec(
        servers=servers, datacenters=2, vms=vms, tightness=tightness
    )
    scenario = ScenarioGenerator(spec, seed=seed).generate()
    merged, _ = Request.concatenate(scenario.requests)
    compiled = CompiledProblem(scenario.infrastructure, merged)
    config = NSGAConfig(
        population_size=population_size,
        max_evaluations=max_evaluations,
        reference_point_divisions=4,
        seed=seed,
    )

    def engine_run(engine: ParallelEngine | None):
        repair = TabuRepair(
            scenario.infrastructure,
            merged,
            seed=config.seed,
            compiled=compiled,
            engine=engine,
        )
        evaluator = compiled.evaluator()
        nsga = NSGA3(config=config, handler=RepairHandling(repair))
        return nsga.run(evaluator).population

    def allocator_run(n_workers: int):
        from repro.hybrid.nsga_allocators import NSGA3TabuAllocator

        allocator = NSGA3TabuAllocator(config=config.with_(n_workers=n_workers))
        try:
            return allocator.allocate(scenario.infrastructure, scenario.requests)
        finally:
            allocator.close()

    serial_population = engine_run(None)
    serial_outcome = allocator_run(0)

    for n_workers in worker_counts:
        with ParallelEngine(n_workers) as engine:
            population = engine_run(engine)
            if not engine.available:
                report.fallbacks += 1
        _compare(
            report,
            n_workers,
            "engine",
            {
                "population.genomes": (
                    serial_population.genomes,
                    population.genomes,
                ),
                "population.objectives": (
                    serial_population.objectives,
                    population.objectives,
                ),
                "population.violations": (
                    serial_population.violations,
                    population.violations,
                ),
            },
        )
        outcome = allocator_run(n_workers)
        _compare(
            report,
            n_workers,
            "allocator",
            {
                "outcome.assignment": (
                    serial_outcome.assignment,
                    outcome.assignment,
                ),
                "outcome.objectives": (
                    serial_outcome.objectives,
                    outcome.objectives,
                ),
            },
        )
    return report
