"""repro.verify — cross-solver conformance tooling.

The paper's claims are comparative (Figures 7-11), so the reproduction
stands or falls on every allocator scoring the same placement the same
way.  This package is that guarantee, in three layers:

* :mod:`repro.verify.invariants` — composable checkers of the model's
  ground rules (capacity respected by accepted work, exactly-once
  hosting, affinity closure, objective finiteness, Pareto-front mutual
  non-domination);
* :mod:`repro.verify.oracle` — a differential oracle replaying any
  placement through the reference evaluator, the incremental move
  path, the sparse ILP encoding + LP relaxation bound and (on small
  instances) the complete CP search, with per-term mismatch diagnoses;
* :mod:`repro.verify.metamorphic` + :mod:`repro.verify.fuzzer` —
  transformation laws with provable consequences, driven over seeded
  random scenarios (``python -m repro verify --fuzz N``);
* :mod:`repro.verify.dynamic` — stream-level metamorphic laws over the
  dynamic scenario registry: batch-permutation evaluation equivalence,
  integral time-shift invariance, drain-then-fail equivalence
  (``python -m repro verify --scenario NAME``);
* :mod:`repro.verify.kernels` — bitwise conformance of every kernel
  backend (reference/numpy/numba) on fuzzed and edge-case instances
  (``python -m repro verify --check-kernels``);
* :mod:`repro.verify.parallel` — serial-vs-parallel byte-identity of
  the execution engine's repair fan-out and chunked evaluation
  (``python -m repro verify --check-parallel 1,2,4``);
* :mod:`repro.verify.resume` — kill-and-resume byte-identity of the
  checkpoint subsystem: a run truncated at a checkpoint boundary and
  resumed from disk must finish exactly as the uninterrupted run
  (``python -m repro verify --check-resume``);
* :mod:`repro.verify.service` — live-vs-batch conformance of the
  allocation service: replaying a service admission log through a
  fresh batch scheduler reproduces residents, ledger and clock byte
  for byte (``python -m repro verify --check-service``);
* :mod:`repro.verify.anytime` — the anytime portfolio contract:
  monotone non-worsening pooled front, ``allocate()`` ≡ stepwise
  parity, seed determinism and the reoptimizer's portfolio wiring
  (``python -m repro verify --check-anytime``);
* :mod:`repro.verify.market` — the market layer's promises: a
  single-provider market is byte-identical to the pre-market model,
  brokered fronts are mutually nondominated with provider-confined
  routes, and preference selection is deterministic, total and
  permutation-invariant (``python -m repro verify --check-market``).

Telemetry lands in the ``verify.*`` namespace (see
``docs/OBSERVABILITY.md``); the checker catalog, oracle semantics and
extension guide live in ``docs/VERIFY.md``.
"""

from repro.verify.anytime import (
    AnytimeMismatch,
    AnytimeReport,
    check_anytime_conformance,
)
from repro.verify.dynamic import (
    DYNAMIC_LAWS,
    DrainFailEquivalenceLaw,
    DynamicReport,
    TimeShiftLaw,
    WindowPermutationLaw,
    check_dynamic_laws,
)
from repro.verify.fuzzer import FuzzConfig, FuzzFailure, FuzzReport, run_fuzz
from repro.verify.kernels import (
    KernelConformanceReport,
    KernelMismatch,
    check_kernel_conformance,
)
from repro.verify.invariants import (
    CheckContext,
    InvariantReport,
    InvariantViolation,
    invariant_names,
    register_invariant,
    run_invariants,
)
from repro.verify.market import (
    MarketConformanceReport,
    MarketMismatch,
    check_market_conformance,
)
from repro.verify.metamorphic import (
    ALL_LAWS,
    CapacityInflationLaw,
    CostScalingLaw,
    DuplicateRequestIdempotenceLaw,
    LawViolation,
    MetamorphicLaw,
    ServerPermutationLaw,
    run_laws,
)
from repro.verify.oracle import (
    DifferentialOracle,
    OracleMismatch,
    OracleReport,
    TermDelta,
)
from repro.verify.parallel import (
    ParallelDeterminismReport,
    ParallelMismatch,
    check_parallel_determinism,
)
from repro.verify.resume import (
    ResumeDeterminismReport,
    ResumeMismatch,
    check_resume_determinism,
)
from repro.verify.service import (
    ServiceConformanceReport,
    ServiceMismatch,
    check_service_conformance,
)

__all__ = [
    # invariants
    "CheckContext",
    "InvariantReport",
    "InvariantViolation",
    "invariant_names",
    "register_invariant",
    "run_invariants",
    # oracle
    "DifferentialOracle",
    "OracleMismatch",
    "OracleReport",
    "TermDelta",
    # metamorphic
    "ALL_LAWS",
    "MetamorphicLaw",
    "ServerPermutationLaw",
    "CapacityInflationLaw",
    "CostScalingLaw",
    "DuplicateRequestIdempotenceLaw",
    "LawViolation",
    "run_laws",
    # dynamic (stream-level) laws
    "DYNAMIC_LAWS",
    "DrainFailEquivalenceLaw",
    "DynamicReport",
    "TimeShiftLaw",
    "WindowPermutationLaw",
    "check_dynamic_laws",
    # fuzzing
    "FuzzConfig",
    "FuzzFailure",
    "FuzzReport",
    "run_fuzz",
    # kernel-backend conformance
    "KernelConformanceReport",
    "KernelMismatch",
    "check_kernel_conformance",
    # parallel determinism
    "ParallelDeterminismReport",
    "ParallelMismatch",
    "check_parallel_determinism",
    # kill-and-resume determinism
    "ResumeDeterminismReport",
    "ResumeMismatch",
    "check_resume_determinism",
    # live-service conformance
    "ServiceConformanceReport",
    "ServiceMismatch",
    "check_service_conformance",
    # anytime-portfolio conformance
    "AnytimeMismatch",
    "AnytimeReport",
    "check_anytime_conformance",
    # market-layer conformance
    "MarketConformanceReport",
    "MarketMismatch",
    "check_market_conformance",
]
