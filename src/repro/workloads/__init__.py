"""Synthetic scenario generation.

The paper evaluates on scenarios "randomly generated with parameter
configurations that reflect typical infrastructure sizes and cloud
provider practices", up to 800 servers and 1600 virtual machines.  The
authors' generator is not published; :class:`ScenarioGenerator` is our
documented substitute (see DESIGN.md substitutions): heterogeneous
server capacities and costs, VM demands drawn from flavour-like size
classes and scaled to a target *tightness* (fraction of estate capacity
demanded), and affinity/anti-affinity rules sampled per request.

:mod:`repro.workloads.profiles` pins the named size sweeps used by the
figure benches, and :mod:`repro.workloads.scenarios` is the registry of
named *dynamic* scenarios — seeded churn/traffic/failure event streams
replayable through the time-window scheduler (docs/SCENARIOS.md).
"""

from repro.workloads.generator import Scenario, ScenarioGenerator, ScenarioSpec
from repro.workloads.scenarios import (
    CompiledScenario,
    DynamicScenarioSpec,
    ScenarioResult,
    compile_scenario,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.workloads.traces import Trace, TraceGenerator, TraceSpec
from repro.workloads.profiles import (
    FIG7_SIZES,
    FIG8_SIZES,
    scenario_spec_for_size,
    sweep_specs,
)

__all__ = [
    "Scenario",
    "ScenarioGenerator",
    "ScenarioSpec",
    "CompiledScenario",
    "DynamicScenarioSpec",
    "ScenarioResult",
    "compile_scenario",
    "get_scenario",
    "register_scenario",
    "scenario_names",
    "Trace",
    "TraceGenerator",
    "TraceSpec",
    "FIG7_SIZES",
    "FIG8_SIZES",
    "scenario_spec_for_size",
    "sweep_specs",
]
