"""Named size sweeps pinning the paper's figure axes.

The paper sweeps problem size up to 800 servers / 1600 virtual
machines ("typical sizes that providers manage simultaneously as
clusters or blocks"), with a "few resources" regime (Figure 7) and a
"many resources" regime (Figure 8).  Each sweep point is
(servers, vms); the 1:2 server:VM ratio matches the paper's largest
configuration.
"""

from __future__ import annotations

from repro.errors import ValidationError
from repro.workloads.generator import ScenarioSpec

__all__ = ["FIG7_SIZES", "FIG8_SIZES", "scenario_spec_for_size", "sweep_specs"]

#: Figure 7 regime — "few resources".
FIG7_SIZES: tuple[tuple[int, int], ...] = (
    (10, 20),
    (20, 40),
    (40, 80),
    (80, 160),
)

#: Figure 8 regime — "many resources", up to the paper's 800/1600.
FIG8_SIZES: tuple[tuple[int, int], ...] = (
    (100, 200),
    (200, 400),
    (400, 800),
    (800, 1600),
)


def scenario_spec_for_size(
    servers: int,
    vms: int,
    *,
    tightness: float = 0.75,
    heterogeneity: float = 0.3,
    affinity_probability: float = 0.6,
    datacenters: int | None = None,
) -> ScenarioSpec:
    """The canonical spec for one sweep point.

    Datacenter count defaults to a gentle square-root-ish growth with
    estate size (2 DCs at 10-80 servers, 4 at hundreds), mirroring how
    providers split clusters.
    """
    if servers < 1 or vms < 1:
        raise ValidationError("servers and vms must be >= 1")
    if datacenters is None:
        datacenters = 2 if servers < 100 else 4
    datacenters = min(datacenters, servers)
    return ScenarioSpec(
        servers=servers,
        datacenters=datacenters,
        vms=vms,
        max_request_size=8,
        tightness=tightness,
        heterogeneity=heterogeneity,
        affinity_probability=affinity_probability,
    )


def sweep_specs(
    sizes: tuple[tuple[int, int], ...], **overrides
) -> list[ScenarioSpec]:
    """Specs for a whole sweep (Figure 7 or Figure 8 axis)."""
    return [
        scenario_spec_for_size(servers, vms, **overrides)
        for servers, vms in sizes
    ]
