"""Random scenario generation (the paper's evaluation substrate).

A *scenario* is one provider estate plus one window of consumer
requests.  Knobs:

* ``servers`` / ``datacenters`` — estate size (servers split evenly);
* ``vms`` — total requested virtual machines, partitioned into
  requests of 1..``max_request_size`` resources;
* ``tightness`` — the fraction of total effective capacity the whole
  window demands.  0.5 is comfortable, 0.8+ forces real packing
  decisions, > 1 guarantees rejections;
* ``heterogeneity`` — coefficient of variation of server capacity and
  cost (0 = the homogeneous estates of quick tests);
* ``affinity_probability`` — chance each request carries at least one
  placement rule (rules and group sizes sampled per request).

Everything is driven by one seed, so scenario i of an experiment is
identical across algorithms — the paper averages "over 100 runs across
all randomly generated scenarios" and fair comparison needs identical
instances per run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError
from repro.model.attributes import DEFAULT_ATTRIBUTES, AttributeSchema
from repro.model.infrastructure import Infrastructure
from repro.model.request import PlacementGroup, Request
from repro.types import PlacementRule, SeedLike
from repro.utils.rng import derive_sequence, root_sequence

__all__ = ["ScenarioSpec", "Scenario", "ScenarioGenerator"]

#: VM flavour mix: (cpu, ram GiB, disk GiB) and sampling weight —
#: loosely the small/medium/large/xlarge split of public IaaS catalogs.
_FLAVOURS = np.array(
    [
        [1.0, 2.0, 20.0],
        [2.0, 4.0, 40.0],
        [4.0, 16.0, 80.0],
        [8.0, 32.0, 160.0],
    ]
)
_FLAVOUR_WEIGHTS = np.array([0.4, 0.3, 0.2, 0.1])

#: Base server shape: a common 2-socket virtualization host.
_BASE_SERVER = np.array([32.0, 128.0, 2000.0])


@dataclass(frozen=True)
class ScenarioSpec:
    """Parameters of one random scenario family."""

    servers: int = 40
    datacenters: int = 2
    vms: int = 80
    max_request_size: int = 8
    tightness: float = 0.6
    heterogeneity: float = 0.3
    affinity_probability: float = 0.6
    max_vm_fraction: float = 0.35
    schema: AttributeSchema = field(default=DEFAULT_ATTRIBUTES)

    def __post_init__(self) -> None:
        if self.servers < 1 or self.vms < 1:
            raise ValidationError("servers and vms must be >= 1")
        if self.datacenters < 1 or self.datacenters > self.servers:
            raise ValidationError(
                "datacenters must lie in [1, servers] "
                f"(got {self.datacenters} for {self.servers} servers)"
            )
        if self.max_request_size < 1:
            raise ValidationError("max_request_size must be >= 1")
        if self.tightness <= 0:
            raise ValidationError("tightness must be > 0")
        if self.heterogeneity < 0:
            raise ValidationError("heterogeneity must be >= 0")
        if not (0.0 <= self.affinity_probability <= 1.0):
            raise ValidationError("affinity_probability must lie in [0, 1]")
        if not (0.0 < self.max_vm_fraction <= 1.0):
            raise ValidationError("max_vm_fraction must lie in (0, 1]")


@dataclass
class Scenario:
    """One generated instance: estate + request window."""

    infrastructure: Infrastructure
    requests: list[Request]
    spec: ScenarioSpec

    @property
    def n_vms(self) -> int:
        """Total virtual machines across the window."""
        return sum(r.n for r in self.requests)

    @property
    def n_requests(self) -> int:
        """Number of consumer requests in the window."""
        return len(self.requests)


#: Stream coordinates below each instance's sub-root.  Every stochastic
#: axis of a scenario draws from its own :func:`derive_sequence` child,
#: so toggling one axis (e.g. ``affinity_probability=0``) cannot shift
#: the draws of an unrelated one (the estate, the demand matrix, ...).
_STREAM_INFRA = 0
_STREAM_SIZES = 1
_STREAM_DEMAND = 2
_STREAM_ATTRS = 3
_STREAM_GROUPS = 4


class ScenarioGenerator:
    """Seeded factory for :class:`Scenario` instances.

    Each generated instance derives a sub-root at its generation index,
    and every stochastic axis (estate, request sizes, demand, QoS/cost
    attributes, placement groups) draws from its own child stream below
    that sub-root — so scenario *i* is identical across runs, and
    changing one axis's parameters leaves the other axes' draws
    untouched (regression-tested in
    ``tests/unit/test_generator_streams.py``).
    """

    def __init__(self, spec: ScenarioSpec, seed: SeedLike = None) -> None:
        self.spec = spec
        self._root = root_sequence(seed)
        self._index = 0

    # ------------------------------------------------------------------
    def _make_infrastructure(self, rng: np.random.Generator) -> Infrastructure:
        spec = self.spec
        m, h = spec.servers, spec.schema.h
        # Heterogeneity: lognormal spread around the base server, one
        # scale factor per server (all attributes scale together, as
        # real hardware generations do) plus mild per-attribute noise.
        sigma = spec.heterogeneity
        scale = rng.lognormal(mean=0.0, sigma=sigma, size=m)
        jitter = rng.lognormal(mean=0.0, sigma=sigma / 4, size=(m, h))
        capacity = _BASE_SERVER[None, :h] * scale[:, None] * jitter
        # Virtualization overhead: a few percent per attribute.
        factor = rng.uniform(0.90, 1.0, size=(m, h))
        # Costs grow with capacity (bigger boxes cost more to run) with
        # noise, so consolidation onto efficient servers pays off.
        operating = 1.0 + 2.0 * scale * rng.uniform(0.8, 1.2, size=m)
        usage = 0.5 + 0.5 * scale * rng.uniform(0.8, 1.2, size=m)
        max_load = rng.uniform(0.7, 0.9, size=(m, h))
        max_qos = rng.uniform(0.95, 0.999, size=(m, h))
        # Servers assigned to datacenters contiguously and evenly.
        per_dc = np.full(spec.datacenters, m // spec.datacenters)
        per_dc[: m % spec.datacenters] += 1
        server_dc = np.repeat(np.arange(spec.datacenters), per_dc)
        return Infrastructure(
            capacity=capacity,
            capacity_factor=factor,
            operating_cost=operating,
            usage_cost=usage,
            max_load=max_load,
            max_qos=max_qos,
            server_datacenter=server_dc,
            schema=spec.schema,
        )

    def _partition_vms(self, rng: np.random.Generator) -> list[int]:
        """Split ``vms`` into request sizes in [1, max_request_size]."""
        spec = self.spec
        sizes: list[int] = []
        remaining = spec.vms
        while remaining > 0:
            size = int(rng.integers(1, min(spec.max_request_size, remaining) + 1))
            sizes.append(size)
            remaining -= size
        return sizes

    def _sample_groups(
        self,
        rng: np.random.Generator,
        block_demand: np.ndarray,
        g: int,
        m: int,
        server_reference: np.ndarray,
    ) -> tuple[PlacementGroup, ...]:
        """Placement rules for one request.

        ``block_demand`` is the request's (size, h) demand block and
        ``server_reference`` a typical server's effective capacity;
        SAME_SERVER groups are kept small (<= 3 members) and their
        combined demand below 80% of that reference so the generator
        does not manufacture trivially infeasible instances.
        """
        spec = self.spec
        size = block_demand.shape[0]
        if size < 2 or rng.random() >= spec.affinity_probability:
            return ()
        groups: list[PlacementGroup] = []
        n_rules = 1 + int(rng.random() < 0.3)  # usually one, sometimes two
        members_pool = np.arange(size)
        for _ in range(n_rules):
            rule = PlacementRule(
                rng.choice([r.value for r in PlacementRule])
            )
            max_members = size
            if rule is PlacementRule.DIFFERENT_DATACENTERS:
                max_members = min(size, g)
            elif rule is PlacementRule.DIFFERENT_SERVERS:
                max_members = min(size, m)
            elif rule is PlacementRule.SAME_SERVER:
                max_members = min(size, 3)
            if max_members < 2:
                continue
            count = int(rng.integers(2, max_members + 1))
            members = tuple(
                int(x) for x in rng.choice(members_pool, size=count, replace=False)
            )
            if rule is PlacementRule.SAME_SERVER:
                combined = block_demand[list(members)].sum(axis=0)
                if np.any(combined > 0.8 * server_reference):
                    continue  # would not fit a typical host together
            groups.append(PlacementGroup(rule=rule, members=members))
        # Drop contradictory pairs (same members under same-server AND
        # different-servers would be trivially infeasible).
        pruned: list[PlacementGroup] = []
        for group in groups:
            clash = False
            for kept in pruned:
                overlap = set(group.members) & set(kept.members)
                if len(overlap) >= 2 and group.rule.is_affinity != kept.rule.is_affinity:
                    clash = True
                    break
            if not clash:
                pruned.append(group)
        return tuple(pruned)

    def _make_requests(
        self,
        rng_sizes: np.random.Generator,
        rng_demand: np.random.Generator,
        rng_attrs: np.random.Generator,
        rng_groups: np.random.Generator,
        infrastructure: Infrastructure,
    ) -> list[Request]:
        spec = self.spec
        h = spec.schema.h
        sizes = self._partition_vms(rng_sizes)
        total_vms = sum(sizes)

        flavours = rng_demand.choice(
            len(_FLAVOURS), size=total_vms, p=_FLAVOUR_WEIGHTS
        )
        demand = _FLAVOURS[flavours][:, :h] * rng_demand.uniform(
            0.8, 1.2, size=(total_vms, h)
        )
        # Scale the whole window to the requested tightness, keeping any
        # single VM below max_vm_fraction of the *median* server so the
        # instance stays a packing problem rather than a lottery of
        # whole-server-sized VMs.  Clipping sheds demand, so a few
        # scale-and-clip rounds re-approach the tightness target.
        effective = infrastructure.effective_capacity
        total_capacity = effective.sum(axis=0)
        target = spec.tightness * total_capacity
        ceiling = spec.max_vm_fraction * np.median(effective, axis=0)
        demand *= target / demand.sum(axis=0)
        demand = np.minimum(demand, ceiling[None, :])
        for _ in range(3):
            shortfall = target - demand.sum(axis=0)
            at_ceiling = np.isclose(demand, ceiling[None, :])
            free_mass = np.where(at_ceiling, 0.0, demand).sum(axis=0)
            factor = 1.0 + np.clip(shortfall, 0.0, None) / np.maximum(
                free_mass, 1e-12
            )
            demand = np.where(at_ceiling, demand, demand * factor[None, :])
            demand = np.minimum(demand, ceiling[None, :])

        server_reference = np.median(effective, axis=0)
        requests: list[Request] = []
        offset = 0
        for ridx, size in enumerate(sizes):
            block = demand[offset : offset + size]
            offset += size
            groups = self._sample_groups(
                rng_groups,
                block,
                infrastructure.g,
                infrastructure.m,
                server_reference,
            )
            requests.append(
                Request(
                    demand=block,
                    qos_guarantee=rng_attrs.uniform(0.85, 0.99, size=size),
                    downtime_cost=rng_attrs.uniform(1.0, 10.0, size=size),
                    migration_cost=rng_attrs.uniform(0.5, 5.0, size=size),
                    groups=groups,
                    schema=spec.schema,
                    name=f"req{ridx}",
                )
            )
        return requests

    # ------------------------------------------------------------------
    def _stream(self, base: np.random.SeedSequence, axis: int) -> np.random.Generator:
        """The generator of one stochastic axis of one instance."""
        return np.random.default_rng(derive_sequence(base, axis))

    def generate(self) -> Scenario:
        """Produce the next scenario from this generator's stream."""
        base = derive_sequence(self._root, self._index)
        self._index += 1
        infrastructure = self._make_infrastructure(
            self._stream(base, _STREAM_INFRA)
        )
        requests = self._make_requests(
            self._stream(base, _STREAM_SIZES),
            self._stream(base, _STREAM_DEMAND),
            self._stream(base, _STREAM_ATTRS),
            self._stream(base, _STREAM_GROUPS),
            infrastructure,
        )
        return Scenario(
            infrastructure=infrastructure, requests=requests, spec=self.spec
        )

    def generate_many(self, count: int) -> list[Scenario]:
        """A batch of independent scenarios from the same stream."""
        if count < 0:
            raise ValidationError(f"count must be >= 0, got {count}")
        return [self.generate() for _ in range(count)]
