"""Dynamic scenario universe: named, seeded churn/traffic/failure streams.

The static generator (:mod:`repro.workloads.generator`) produces one
window of requests; the paper's "cyclic time window" framing — and any
operations question about the allocator stack — needs *trajectories*:
tenants arriving and leaving, traffic that swells and recedes, servers
crashing or drained for maintenance, tenants that autoscale.  This
module is the registry of such trajectories:

* :class:`DynamicScenarioSpec` — the parameter set of one scenario
  family: estate shape, horizon, arrival curve (steady / diurnal /
  flash-crowd), lifetime distribution, failure and maintenance-drain
  processes, autoscaling behaviour;
* :func:`compile_scenario` — spec + seed → :class:`CompiledScenario`,
  a concrete estate plus a fully materialized, time-sorted event
  stream.  Compilation is deterministic per seed, and every stochastic
  axis draws from its own :func:`~repro.utils.rng.derive_sequence`
  child, so e.g. raising ``failure_rate`` cannot shift the arrival
  times (property-tested in ``tests/property/test_prop_scenarios.py``);
* :meth:`CompiledScenario.run` — replay the stream through a
  :class:`~repro.scheduler.window.TimeWindowScheduler` and fold the
  per-window reports into
  :class:`~repro.evaluation.metrics.ScenarioMetrics` (the paper's four
  criteria plus SLA violations and migration churn);
* :func:`register_scenario` / :func:`get_scenario` /
  :func:`scenario_names` — the named registry behind
  ``python -m repro scenario list|run`` and ``serve --scenario NAME``.

Trajectory-relevant parameters (rates, horizon, estate, seed) feed the
event stream; ``window_length`` and ``reoptimize_every`` only decide
how the *scheduler* batches and reconfigures, so
:meth:`CompiledScenario.event_fingerprint` is invariant under them —
the anchor of the dynamic metamorphic laws in
:mod:`repro.verify.dynamic`.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.allocator import Allocator
from repro.errors import ValidationError
from repro.evaluation.metrics import ScenarioMetrics, scenario_metrics
from repro.model.infrastructure import Infrastructure
from repro.scheduler.events import (
    ArrivalEvent,
    DepartureEvent,
    ServerFailureEvent,
    ServerRecoveryEvent,
)

if TYPE_CHECKING:  # pragma: no cover - cycle guard (window → serialization
    # → evaluation → runner → workloads); the scheduler is imported
    # lazily where instantiated.
    from repro.scheduler.window import TimeWindowScheduler, WindowReport
from repro.telemetry import get_registry
from repro.utils.rng import derive_sequence, root_sequence
from repro.workloads.generator import ScenarioGenerator, ScenarioSpec

__all__ = [
    "DynamicScenarioSpec",
    "CompiledScenario",
    "ScenarioResult",
    "compile_scenario",
    "register_scenario",
    "get_scenario",
    "scenario_names",
]

_TRAFFIC_SHAPES = ("steady", "diurnal", "flash")

#: Stream coordinates below ``root_sequence(seed)``.  One child per
#: stochastic axis: content (estate + request bodies, which itself
#: splits per-axis inside :class:`ScenarioGenerator`), arrival times,
#: lifetimes, failures, drains, autoscale decisions.
_S_CONTENT = 0
_S_ARRIVALS = 1
_S_LIFETIMES = 2
_S_FAILURES = 3
_S_DRAINS = 4
_S_AUTOSCALE = 5


@dataclass(frozen=True)
class DynamicScenarioSpec:
    """Parameters of one dynamic scenario family.

    Times are in the scheduler's logical unit; rates are events per
    unit time.  ``window_length`` and ``reoptimize_every`` shape how
    the stream is *scheduled*, not the stream itself — see the module
    docstring.
    """

    name: str
    description: str = ""
    # --- estate ---
    servers: int = 12
    datacenters: int = 2
    heterogeneity: float = 0.3
    # --- horizon and batching ---
    horizon: float = 8.0
    window_length: float = 1.0
    # --- arrival process ---
    arrival_rate: float = 2.0
    traffic: str = "steady"
    traffic_amplitude: float = 0.6
    traffic_period: float = 8.0
    flash_time: float = 4.0
    flash_width: float = 0.5
    flash_factor: float = 4.0
    # --- tenancy ---
    mean_lifetime: float = 4.0
    lifetime_sigma: float = 0.5
    # --- platform flow events ---
    failure_rate: float = 0.0
    mean_repair_time: float = 2.0
    drain_count: int = 0
    drain_duration: float = 2.0
    # --- autoscaling tenants ---
    autoscale_fraction: float = 0.0
    autoscale_replicas: int = 2
    autoscale_delay: float = 1.0
    autoscale_lifetime: float = 2.0
    # --- reconfiguration cadence (0 = never reoptimize) ---
    reoptimize_every: int = 0
    # --- request content ---
    max_request_size: int = 4
    tightness: float = 0.5
    affinity_probability: float = 0.4

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("scenario name must be non-empty")
        if self.servers < 1:
            raise ValidationError("servers must be >= 1")
        if self.datacenters < 1 or self.datacenters > self.servers:
            raise ValidationError("datacenters must lie in [1, servers]")
        if self.horizon <= 0 or self.window_length <= 0:
            raise ValidationError("horizon and window_length must be > 0")
        if self.arrival_rate <= 0:
            raise ValidationError("arrival_rate must be > 0")
        if self.traffic not in _TRAFFIC_SHAPES:
            raise ValidationError(
                f"traffic must be one of {_TRAFFIC_SHAPES}, got {self.traffic!r}"
            )
        if self.traffic_amplitude < 0 or self.traffic_amplitude >= 1:
            raise ValidationError("traffic_amplitude must lie in [0, 1)")
        if self.traffic_period <= 0 or self.flash_width <= 0:
            raise ValidationError("traffic_period and flash_width must be > 0")
        if self.flash_factor < 0:
            raise ValidationError("flash_factor must be >= 0")
        if self.mean_lifetime <= 0 or self.lifetime_sigma < 0:
            raise ValidationError(
                "mean_lifetime must be > 0 and lifetime_sigma >= 0"
            )
        if self.failure_rate < 0 or self.mean_repair_time <= 0:
            raise ValidationError(
                "failure_rate must be >= 0 and mean_repair_time > 0"
            )
        if self.drain_count < 0 or self.drain_duration <= 0:
            raise ValidationError(
                "drain_count must be >= 0 and drain_duration > 0"
            )
        if not (0.0 <= self.autoscale_fraction <= 1.0):
            raise ValidationError("autoscale_fraction must lie in [0, 1]")
        if self.autoscale_replicas < 1 or self.autoscale_delay <= 0:
            raise ValidationError(
                "autoscale_replicas must be >= 1 and autoscale_delay > 0"
            )
        if self.autoscale_lifetime <= 0:
            raise ValidationError("autoscale_lifetime must be > 0")
        if self.reoptimize_every < 0:
            raise ValidationError("reoptimize_every must be >= 0")

    @property
    def windows(self) -> int:
        """Number of scheduler windows covering the horizon."""
        return math.ceil(self.horizon / self.window_length)

    def intensity(self, time: float) -> float:
        """Instantaneous arrival rate of the traffic curve at ``time``."""
        if self.traffic == "diurnal":
            shape = 1.0 + self.traffic_amplitude * math.sin(
                2.0 * math.pi * time / self.traffic_period
            )
        elif self.traffic == "flash":
            shape = 1.0 + self.flash_factor * math.exp(
                -(((time - self.flash_time) / self.flash_width) ** 2)
            )
        else:
            shape = 1.0
        return self.arrival_rate * shape

    @property
    def peak_rate(self) -> float:
        """Upper bound of :meth:`intensity` (thinning envelope)."""
        if self.traffic == "diurnal":
            return self.arrival_rate * (1.0 + self.traffic_amplitude)
        if self.traffic == "flash":
            return self.arrival_rate * (1.0 + self.flash_factor)
        return self.arrival_rate


@dataclass(frozen=True)
class ScenarioResult:
    """One scenario run: per-window reports and the folded metrics."""

    name: str
    seed: int | None
    algorithm: str
    reports: tuple[WindowReport, ...]
    metrics: ScenarioMetrics
    #: blake2b over the final scheduler ``state_dict`` (canonical JSON) —
    #: the byte-identity anchor of the per-seed determinism tests.
    ledger_fingerprint: str


@dataclass
class CompiledScenario:
    """One spec + seed materialized: estate plus a concrete event stream."""

    spec: DynamicScenarioSpec
    seed: int | None
    infrastructure: Infrastructure
    arrivals: list[ArrivalEvent]
    departures: list[DepartureEvent]
    failures: list[ServerFailureEvent]
    drains: list[ServerFailureEvent]
    recoveries: list[ServerRecoveryEvent]

    def __len__(self) -> int:
        return (
            len(self.arrivals)
            + len(self.departures)
            + len(self.failures)
            + len(self.drains)
            + len(self.recoveries)
        )

    # ------------------------------------------------------------------
    # Stream access
    # ------------------------------------------------------------------
    def events_payload(self) -> list[dict]:
        """The stream as JSON-able records, time-sorted (stable).

        Request bodies are serialized in full, so two payloads are equal
        exactly when the streams would drive a scheduler identically.
        """
        from repro.serialization import request_to_dict

        records: list[tuple[float, int, dict]] = []
        for event in self.arrivals:
            records.append(
                (
                    event.time,
                    0,
                    {
                        "type": "arrival",
                        "time": event.time,
                        "key": event.key,
                        "request": request_to_dict(event.request),
                    },
                )
            )
        for event in self.departures:
            records.append(
                (
                    event.time,
                    1,
                    {"type": "departure", "time": event.time, "key": event.key},
                )
            )
        for event in [*self.failures, *self.drains]:
            records.append(
                (
                    event.time,
                    2,
                    {
                        "type": "failure",
                        "time": event.time,
                        "server": event.server,
                        "reason": event.reason,
                    },
                )
            )
        for event in self.recoveries:
            records.append(
                (
                    event.time,
                    3,
                    {
                        "type": "recovery",
                        "time": event.time,
                        "server": event.server,
                    },
                )
            )
        records.sort(key=lambda item: (item[0], item[1]))
        return [record for _, _, record in records]

    def event_fingerprint(self) -> str:
        """blake2b digest of the event stream alone (estate excluded).

        Invariant under every parameter that does not shape the
        trajectory — ``window_length``, ``reoptimize_every`` — which the
        property suite pins.
        """
        payload = json.dumps(
            self.events_payload(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.blake2b(payload.encode(), digest_size=16).hexdigest()

    def fingerprint(self) -> str:
        """blake2b digest of estate + event stream (full instance identity)."""
        from repro.serialization import infrastructure_to_dict

        payload = json.dumps(
            {
                "infrastructure": infrastructure_to_dict(self.infrastructure),
                "events": self.events_payload(),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.blake2b(payload.encode(), digest_size=16).hexdigest()

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def apply_to(self, scheduler: TimeWindowScheduler) -> None:
        """Submit the whole stream into ``scheduler``."""
        for event in self.arrivals:
            scheduler.submit(event.key, event.request, at=event.time)
        for event in self.departures:
            scheduler.schedule_departure(event.key, at=event.time)
        for event in self.failures:
            scheduler.schedule_failure(event.server, at=event.time)
        for event in self.drains:
            scheduler.schedule_drain(event.server, at=event.time)
        for event in self.recoveries:
            scheduler.schedule_recovery(event.server, at=event.time)

    def build_scheduler(
        self, allocator: Allocator, **kwargs
    ) -> TimeWindowScheduler:
        """A scheduler over this estate with the stream already enqueued."""
        from repro.scheduler.window import TimeWindowScheduler

        scheduler = TimeWindowScheduler(
            infrastructure=self.infrastructure,
            allocator=allocator,
            window_length=self.spec.window_length,
            **kwargs,
        )
        self.apply_to(scheduler)
        return scheduler

    def run(
        self,
        allocator: Allocator,
        *,
        max_windows: int | None = None,
        reoptimize_allocator: Allocator | None = None,
    ) -> ScenarioResult:
        """Replay the stream through a scheduler and fold the metrics.

        Migration churn is accounted here, where both sides of every
        move are visible: a displaced tenant's pre-failure placement is
        snapshotted before each window and diffed against its
        re-placement, and applied reoptimization plans contribute their
        ``plan.size``.  The allocator's lifecycle stays with the caller
        (``run`` does not :meth:`~TimeWindowScheduler.close` it).
        """
        spec = self.spec
        scheduler = self.build_scheduler(allocator)
        cap = max_windows if max_windows is not None else spec.windows + 2
        reports: list[WindowReport] = []
        moves = 0
        while scheduler.pending_events and len(reports) < cap:
            previous = {
                key: scheduler.state.previous_assignment(key).copy()
                for key in scheduler.state.tenants()
            }
            report = scheduler.run_window()
            reports.append(report)
            accepted = set(report.accepted)
            for key in report.displaced:
                if key in accepted and key in previous:
                    placed = scheduler.state.previous_assignment(key)
                    moves += int(np.count_nonzero(placed != previous[key]))
            if (
                spec.reoptimize_every
                and scheduler.window_index % spec.reoptimize_every == 0
                and scheduler.state.tenants()
            ):
                result = scheduler.reoptimize(reoptimize_allocator)
                if result is not None:
                    outcome, plan = result
                    applied = (
                        bool(outcome.accepted.all()) and outcome.violations == 0
                    )
                    if applied:
                        moves += plan.size
        if not reports:
            raise ValidationError(
                f"scenario {spec.name!r} compiled to an empty stream"
            )
        metrics = scenario_metrics(reports, migration_moves=moves)
        # Trajectory state only: the allocator entry carries its private
        # tie-break RNG, whose *state* is allocator identity, not
        # scenario identity (its decisions are already pinned through
        # residents and committed usage).
        state = scheduler.state_dict()
        state.pop("allocator", None)
        ledger = json.dumps(state, sort_keys=True, separators=(",", ":"))
        registry = get_registry()
        registry.count("scenario.runs", scenario=spec.name)
        registry.count("scenario.windows", metrics.windows, scenario=spec.name)
        registry.count("scenario.events", len(self), scenario=spec.name)
        registry.count(
            "scenario.migration_moves", moves, scenario=spec.name
        )
        registry.count(
            "scenario.sla_violations",
            metrics.sla_violations,
            scenario=spec.name,
        )
        return ScenarioResult(
            name=spec.name,
            seed=self.seed,
            algorithm=getattr(allocator, "name", type(allocator).__name__),
            reports=tuple(reports),
            metrics=metrics,
            ledger_fingerprint=hashlib.blake2b(
                ledger.encode(), digest_size=16
            ).hexdigest(),
        )


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------
def _lognormal_mu(mean: float, sigma: float) -> float:
    """The mu giving a lognormal distribution the requested mean."""
    return float(np.log(mean) - 0.5 * sigma**2)


def compile_scenario(
    spec: DynamicScenarioSpec | str, seed: int | None = 0
) -> CompiledScenario:
    """Materialize ``spec`` (or a registered name) at ``seed``.

    Arrivals follow the spec's traffic curve via Poisson thinning: a
    homogeneous process at :attr:`~DynamicScenarioSpec.peak_rate` is
    subsampled with probability ``intensity(t) / peak_rate``, so the
    same seed yields a superset-consistent stream across traffic shapes
    of equal peak.  Departures, repairs and autoscale replicas falling
    beyond the horizon are dropped — they could never be processed
    within the scenario's windows, and dropping them bounds every run.
    """
    if isinstance(spec, str):
        spec = get_scenario(spec)
    root = root_sequence(seed)
    rng_arrivals = np.random.default_rng(derive_sequence(root, _S_ARRIVALS))
    rng_lifetimes = np.random.default_rng(derive_sequence(root, _S_LIFETIMES))
    rng_failures = np.random.default_rng(derive_sequence(root, _S_FAILURES))
    rng_drains = np.random.default_rng(derive_sequence(root, _S_DRAINS))
    rng_autoscale = np.random.default_rng(derive_sequence(root, _S_AUTOSCALE))

    # Arrival times first (their count sizes the content request pool).
    peak = spec.peak_rate
    times: list[float] = []
    time = 0.0
    while True:
        time += float(rng_arrivals.exponential(1.0 / peak))
        if time >= spec.horizon:
            break
        if rng_arrivals.random() <= spec.intensity(time) / peak:
            times.append(time)

    # Request bodies from the static generator: one oversized window,
    # each body consumed in arrival order.  The content sub-root keeps
    # estate and bodies byte-stable against every trajectory knob.
    content = ScenarioGenerator(
        ScenarioSpec(
            servers=spec.servers,
            datacenters=spec.datacenters,
            vms=max(len(times), 1) * spec.max_request_size,
            max_request_size=spec.max_request_size,
            tightness=spec.tightness,
            heterogeneity=spec.heterogeneity,
            affinity_probability=spec.affinity_probability,
        ),
        seed=derive_sequence(root, _S_CONTENT),
    ).generate()
    bodies = content.requests

    arrivals: list[ArrivalEvent] = []
    departures: list[DepartureEvent] = []
    mu = _lognormal_mu(spec.mean_lifetime, spec.lifetime_sigma)
    for index, at in enumerate(times):
        if index >= len(bodies):
            break  # content pool exhausted (oversized, so effectively never)
        key = f"{spec.name}-{index}"
        body = bodies[index]
        arrivals.append(ArrivalEvent(time=at, key=key, request=body))
        lifetime = float(rng_lifetimes.lognormal(mu, spec.lifetime_sigma))
        if at + lifetime < spec.horizon:
            departures.append(DepartureEvent(time=at + lifetime, key=key))
        # Autoscaling tenants clone themselves: replicas of the same
        # body arrive staggered after the parent and retire on a short
        # scale-in lifetime.
        if (
            spec.autoscale_fraction > 0
            and rng_autoscale.random() < spec.autoscale_fraction
        ):
            for replica in range(spec.autoscale_replicas):
                scale_out = at + spec.autoscale_delay * (replica + 1)
                if scale_out >= spec.horizon:
                    break
                replica_key = f"{key}-as{replica}"
                arrivals.append(
                    ArrivalEvent(time=scale_out, key=replica_key, request=body)
                )
                scale_in = scale_out + spec.autoscale_lifetime
                if scale_in < spec.horizon:
                    departures.append(
                        DepartureEvent(time=scale_in, key=replica_key)
                    )

    failures: list[ServerFailureEvent] = []
    recoveries: list[ServerRecoveryEvent] = []
    if spec.failure_rate > 0:
        time = 0.0
        while True:
            time += float(rng_failures.exponential(1.0 / spec.failure_rate))
            if time >= spec.horizon:
                break
            server = int(rng_failures.integers(0, spec.servers))
            failures.append(ServerFailureEvent(time=time, server=server))
            repair = time + float(
                rng_failures.exponential(spec.mean_repair_time)
            )
            if repair < spec.horizon:
                recoveries.append(
                    ServerRecoveryEvent(time=repair, server=server)
                )

    drains: list[ServerFailureEvent] = []
    if spec.drain_count > 0:
        count = min(spec.drain_count, spec.servers)
        servers = rng_drains.choice(spec.servers, size=count, replace=False)
        starts = np.sort(
            rng_drains.uniform(
                0.25 * spec.horizon, 0.75 * spec.horizon, size=count
            )
        )
        for server, start in zip(servers, starts):
            drains.append(
                ServerFailureEvent(
                    time=float(start), server=int(server), reason="drain"
                )
            )
            back = float(start) + spec.drain_duration
            if back < spec.horizon:
                recoveries.append(
                    ServerRecoveryEvent(time=back, server=int(server))
                )

    return CompiledScenario(
        spec=spec,
        seed=seed,
        infrastructure=content.infrastructure,
        arrivals=arrivals,
        departures=departures,
        failures=failures,
        drains=drains,
        recoveries=recoveries,
    )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, DynamicScenarioSpec] = {}


def register_scenario(spec: DynamicScenarioSpec) -> DynamicScenarioSpec:
    """Add ``spec`` to the named registry (idempotent per name+spec)."""
    existing = _REGISTRY.get(spec.name)
    if existing is not None and existing != spec:
        raise ValidationError(
            f"scenario {spec.name!r} already registered with different "
            "parameters"
        )
    _REGISTRY[spec.name] = spec
    return spec


def get_scenario(name: str) -> DynamicScenarioSpec:
    """Look a registered scenario up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValidationError(
            f"unknown scenario {name!r}; choose from {scenario_names()}"
        ) from None


def scenario_names() -> list[str]:
    """Registered scenario names, sorted."""
    return sorted(_REGISTRY)


# ----------------------------------------------------------------------
# The built-in universe.  All deliberately small (8-24 servers, short
# horizons) so a full registry sweep stays test-suite fast; scale knobs
# are one `replace()` away for real studies.
# ----------------------------------------------------------------------
register_scenario(
    DynamicScenarioSpec(
        name="steady_churn",
        description="Poisson arrivals and lognormal tenancies at a "
        "comfortable load; the dynamic baseline.",
        servers=12,
        arrival_rate=2.5,
        mean_lifetime=3.0,
    )
)

register_scenario(
    DynamicScenarioSpec(
        name="diurnal",
        description="Sinusoidal day/night arrival curve over one full "
        "period; load peaks mid-horizon.",
        servers=12,
        traffic="diurnal",
        traffic_amplitude=0.7,
        traffic_period=8.0,
        arrival_rate=2.0,
        mean_lifetime=2.5,
    )
)

register_scenario(
    DynamicScenarioSpec(
        name="flash_crowd",
        description="Quiet baseline with a sharp Gaussian arrival spike "
        "mid-horizon (viral-event traffic).",
        servers=16,
        traffic="flash",
        flash_time=4.0,
        flash_width=0.5,
        flash_factor=5.0,
        arrival_rate=1.0,
        mean_lifetime=2.0,
    )
)

register_scenario(
    DynamicScenarioSpec(
        name="failure_storm",
        description="Steady churn under an aggressive server failure "
        "process with exponential repairs.",
        servers=16,
        arrival_rate=2.0,
        mean_lifetime=4.0,
        failure_rate=0.8,
        mean_repair_time=1.5,
    )
)

register_scenario(
    DynamicScenarioSpec(
        name="maintenance_drain",
        description="Planned maintenance: several servers drained "
        "mid-horizon (forced evacuation) and returned after a fixed "
        "downtime.",
        servers=12,
        arrival_rate=2.0,
        mean_lifetime=5.0,
        drain_count=3,
        drain_duration=2.0,
    )
)

register_scenario(
    DynamicScenarioSpec(
        name="autoscale_tenants",
        description="Half the tenants scale out clone replicas shortly "
        "after arriving and scale them back in (bursty per-tenant "
        "demand).",
        servers=16,
        arrival_rate=1.5,
        mean_lifetime=4.0,
        autoscale_fraction=0.5,
        autoscale_replicas=2,
        autoscale_delay=0.8,
        autoscale_lifetime=2.0,
    )
)

register_scenario(
    DynamicScenarioSpec(
        name="hetero_fleet",
        description="Strongly heterogeneous estate (mixed hardware "
        "generations) under steady churn with periodic reoptimization.",
        servers=16,
        heterogeneity=0.8,
        arrival_rate=2.0,
        mean_lifetime=3.5,
        reoptimize_every=4,
    )
)
