"""Arrival traces: driving the scheduler with realistic event streams.

The figure benches evaluate single windows; operating studies (and the
paper's "cyclic time window" framing) need *streams*: requests arriving
over time, staying for a lifetime, leaving — plus, for resilience
studies, server failures and recoveries.  :class:`TraceGenerator`
produces such streams from the standard queueing primitives:

* arrivals — Poisson process (exponential inter-arrival times);
* lifetimes — lognormal (long-tailed tenancy, as observed in public
  cloud traces);
* failures — optional Poisson failure process over uniformly chosen
  servers, each with an exponential repair time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError
from repro.model.request import Request
from repro.scheduler.events import (
    ArrivalEvent,
    DepartureEvent,
    ServerFailureEvent,
    ServerRecoveryEvent,
)
from repro.types import SeedLike
from repro.utils.rng import as_generator
from repro.workloads.generator import ScenarioGenerator, ScenarioSpec

__all__ = ["TraceSpec", "Trace", "TraceGenerator"]


@dataclass(frozen=True)
class TraceSpec:
    """Parameters of one event-stream family.

    Parameters
    ----------
    horizon:
        Simulated duration (same unit as the scheduler's windows).
    arrival_rate:
        Mean request arrivals per time unit (Poisson).
    mean_lifetime:
        Mean tenancy duration; lifetimes are lognormal with this mean
        and ``lifetime_sigma`` log-space spread.  ``inf`` disables
        departures.
    lifetime_sigma:
        Lognormal shape parameter.
    failure_rate:
        Mean server failures per time unit (0 disables failures).
    mean_repair_time:
        Mean time a failed server stays down (exponential).
    """

    horizon: float = 10.0
    arrival_rate: float = 2.0
    mean_lifetime: float = 5.0
    lifetime_sigma: float = 0.6
    failure_rate: float = 0.0
    mean_repair_time: float = 2.0

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ValidationError("horizon must be > 0")
        if self.arrival_rate <= 0:
            raise ValidationError("arrival_rate must be > 0")
        if self.mean_lifetime <= 0:
            raise ValidationError("mean_lifetime must be > 0")
        if self.lifetime_sigma < 0:
            raise ValidationError("lifetime_sigma must be >= 0")
        if self.failure_rate < 0:
            raise ValidationError("failure_rate must be >= 0")
        if self.mean_repair_time <= 0:
            raise ValidationError("mean_repair_time must be > 0")


@dataclass
class Trace:
    """A generated stream, ready to feed a scheduler."""

    arrivals: list[ArrivalEvent] = field(default_factory=list)
    departures: list[DepartureEvent] = field(default_factory=list)
    failures: list[ServerFailureEvent] = field(default_factory=list)
    recoveries: list[ServerRecoveryEvent] = field(default_factory=list)

    def all_events(self) -> list:
        """Every event, time-sorted (stable)."""
        events = [*self.arrivals, *self.departures, *self.failures, *self.recoveries]
        return sorted(events, key=lambda e: e.time)

    def apply_to(self, scheduler) -> None:
        """Submit the whole trace into a
        :class:`~repro.scheduler.window.TimeWindowScheduler`."""
        for event in self.arrivals:
            scheduler.submit(event.key, event.request, at=event.time)
        for event in self.departures:
            scheduler.schedule_departure(event.key, at=event.time)
        for event in self.failures:
            scheduler.schedule_failure(event.server, at=event.time)
        for event in self.recoveries:
            scheduler.schedule_recovery(event.server, at=event.time)

    def __len__(self) -> int:
        return (
            len(self.arrivals)
            + len(self.departures)
            + len(self.failures)
            + len(self.recoveries)
        )


class TraceGenerator:
    """Seeded factory for :class:`Trace` streams.

    Request *content* is drawn from the standard scenario generator
    (demand mixes, affinity rules), so a trace is "the same workload,
    spread over time".
    """

    def __init__(
        self,
        trace_spec: TraceSpec,
        scenario_spec: ScenarioSpec,
        seed: SeedLike = None,
    ) -> None:
        self.trace_spec = trace_spec
        self.scenario_spec = scenario_spec
        self._rng = as_generator(seed)

    def _lognormal_mean(self, mean: float, sigma: float) -> float:
        """The mu parameter giving a lognormal the requested mean."""
        return float(np.log(mean) - 0.5 * sigma**2)

    def generate(self, key_prefix: str = "req") -> tuple[Trace, list[Request]]:
        """Produce one trace plus the request objects it references."""
        spec = self.trace_spec
        rng = self._rng

        # Request bodies from one oversized scenario (estate discarded).
        expected = max(1, int(spec.horizon * spec.arrival_rate * 1.5))
        content = ScenarioGenerator(
            ScenarioSpec(
                servers=self.scenario_spec.servers,
                datacenters=self.scenario_spec.datacenters,
                vms=max(
                    self.scenario_spec.vms,
                    expected * self.scenario_spec.max_request_size // 2,
                ),
                max_request_size=self.scenario_spec.max_request_size,
                tightness=self.scenario_spec.tightness,
                heterogeneity=self.scenario_spec.heterogeneity,
                affinity_probability=self.scenario_spec.affinity_probability,
                max_vm_fraction=self.scenario_spec.max_vm_fraction,
            ),
            seed=rng,
        ).generate()
        bodies = content.requests

        trace = Trace()
        used: list[Request] = []
        time = 0.0
        index = 0
        mu = self._lognormal_mean(spec.mean_lifetime, spec.lifetime_sigma)
        while True:
            time += float(rng.exponential(1.0 / spec.arrival_rate))
            if time >= spec.horizon or index >= len(bodies):
                break
            key = f"{key_prefix}-{index}"
            request = bodies[index]
            trace.arrivals.append(
                ArrivalEvent(time=time, key=key, request=request)
            )
            used.append(request)
            if np.isfinite(spec.mean_lifetime):
                lifetime = float(rng.lognormal(mu, spec.lifetime_sigma))
                trace.departures.append(
                    DepartureEvent(time=time + lifetime, key=key)
                )
            index += 1

        if spec.failure_rate > 0:
            time = 0.0
            while True:
                time += float(rng.exponential(1.0 / spec.failure_rate))
                if time >= spec.horizon:
                    break
                server = int(rng.integers(0, self.scenario_spec.servers))
                trace.failures.append(
                    ServerFailureEvent(time=time, server=server)
                )
                repair = float(rng.exponential(spec.mean_repair_time))
                trace.recoveries.append(
                    ServerRecoveryEvent(time=time + repair, server=server)
                )
        return trace, used
