"""JSON (de)serialization of model objects and results.

Reproducibility tooling: scenarios, outcomes and run records can be
written to disk, shared, and re-loaded bit-exactly — the artifact
trail behind EXPERIMENTS.md.  Formats are plain JSON dictionaries with
a ``"kind"`` tag and explicit array fields (lists of lists), so they
are diffable and language-neutral.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.allocator import BatchOutcome
from repro.errors import ValidationError
from repro.evaluation.metrics import RunRecord
from repro.model.attributes import AttributeSchema
from repro.model.infrastructure import Infrastructure
from repro.model.request import PlacementGroup, Request
from repro.types import PlacementRule
from repro.workloads.generator import Scenario, ScenarioSpec

__all__ = [
    "infrastructure_to_dict",
    "infrastructure_from_dict",
    "request_to_dict",
    "request_from_dict",
    "scenario_to_dict",
    "scenario_from_dict",
    "outcome_to_dict",
    "run_record_to_dict",
    "run_record_from_dict",
    "save_json",
    "load_json",
]


def _check_kind(data: dict, expected: str) -> None:
    kind = data.get("kind")
    if kind != expected:
        raise ValidationError(f"expected kind={expected!r}, got {kind!r}")


# ----------------------------------------------------------------------
# Infrastructure
# ----------------------------------------------------------------------
def infrastructure_to_dict(infra: Infrastructure) -> dict[str, Any]:
    """Serialize every Table I provider matrix."""
    payload = {
        "kind": "infrastructure",
        "schema": {"names": list(infra.schema.names), "units": list(infra.schema.units)},
        "capacity": infra.capacity.tolist(),
        "capacity_factor": infra.capacity_factor.tolist(),
        "operating_cost": infra.operating_cost.tolist(),
        "usage_cost": infra.usage_cost.tolist(),
        "max_load": infra.max_load.tolist(),
        "max_qos": infra.max_qos.tolist(),
        "server_datacenter": infra.server_datacenter.tolist(),
        "datacenter_names": list(infra.datacenter_names),
        "server_names": list(infra.server_names),
    }
    # The market axis joins the payload only when servers are actually
    # tagged, so single-provider dumps stay byte-identical to pre-market
    # output (and old dumps load unchanged).
    if infra.p > 1:
        payload["server_provider"] = infra.provider_of_server.tolist()
    if infra.provider_names:
        payload["provider_names"] = list(infra.provider_names)
    return payload


def infrastructure_from_dict(data: dict[str, Any]) -> Infrastructure:
    """Inverse of :func:`infrastructure_to_dict`."""
    _check_kind(data, "infrastructure")
    schema = AttributeSchema(
        names=tuple(data["schema"]["names"]),
        units=tuple(data["schema"].get("units", ())),
    )
    return Infrastructure(
        capacity=np.asarray(data["capacity"], dtype=np.float64),
        capacity_factor=np.asarray(data["capacity_factor"], dtype=np.float64),
        operating_cost=np.asarray(data["operating_cost"], dtype=np.float64),
        usage_cost=np.asarray(data["usage_cost"], dtype=np.float64),
        max_load=np.asarray(data["max_load"], dtype=np.float64),
        max_qos=np.asarray(data["max_qos"], dtype=np.float64),
        server_datacenter=np.asarray(data["server_datacenter"], dtype=np.int64),
        schema=schema,
        datacenter_names=tuple(data.get("datacenter_names", ())),
        server_names=tuple(data.get("server_names", ())),
        server_provider=(
            np.asarray(data["server_provider"], dtype=np.int64)
            if data.get("server_provider") is not None
            else None
        ),
        provider_names=tuple(data.get("provider_names", ())),
    )


# ----------------------------------------------------------------------
# Request
# ----------------------------------------------------------------------
def request_to_dict(request: Request) -> dict[str, Any]:
    """Serialize a consumer request including its placement rules."""
    return {
        "kind": "request",
        "name": request.name,
        "schema": {
            "names": list(request.schema.names),
            "units": list(request.schema.units),
        },
        "demand": request.demand.tolist(),
        "qos_guarantee": request.qos_guarantee.tolist(),
        "downtime_cost": request.downtime_cost.tolist(),
        "migration_cost": request.migration_cost.tolist(),
        "groups": [
            {"rule": group.rule.value, "members": list(group.members)}
            for group in request.groups
        ],
    }


def request_from_dict(data: dict[str, Any]) -> Request:
    """Inverse of :func:`request_to_dict`."""
    _check_kind(data, "request")
    schema = AttributeSchema(
        names=tuple(data["schema"]["names"]),
        units=tuple(data["schema"].get("units", ())),
    )
    groups = tuple(
        PlacementGroup(
            rule=PlacementRule(group["rule"]),
            members=tuple(group["members"]),
        )
        for group in data.get("groups", [])
    )
    return Request(
        demand=np.asarray(data["demand"], dtype=np.float64),
        qos_guarantee=np.asarray(data["qos_guarantee"], dtype=np.float64),
        downtime_cost=np.asarray(data["downtime_cost"], dtype=np.float64),
        migration_cost=np.asarray(data["migration_cost"], dtype=np.float64),
        groups=groups,
        schema=schema,
        name=data.get("name", ""),
    )


# ----------------------------------------------------------------------
# Scenario
# ----------------------------------------------------------------------
def scenario_to_dict(scenario: Scenario) -> dict[str, Any]:
    """Serialize a whole generated scenario (estate + window + spec)."""
    spec = scenario.spec
    return {
        "kind": "scenario",
        "spec": {
            "servers": spec.servers,
            "datacenters": spec.datacenters,
            "vms": spec.vms,
            "max_request_size": spec.max_request_size,
            "tightness": spec.tightness,
            "heterogeneity": spec.heterogeneity,
            "affinity_probability": spec.affinity_probability,
            "max_vm_fraction": spec.max_vm_fraction,
        },
        "infrastructure": infrastructure_to_dict(scenario.infrastructure),
        "requests": [request_to_dict(r) for r in scenario.requests],
    }


def scenario_from_dict(data: dict[str, Any]) -> Scenario:
    """Inverse of :func:`scenario_to_dict`."""
    _check_kind(data, "scenario")
    infrastructure = infrastructure_from_dict(data["infrastructure"])
    spec = ScenarioSpec(schema=infrastructure.schema, **data["spec"])
    return Scenario(
        infrastructure=infrastructure,
        requests=[request_from_dict(r) for r in data["requests"]],
        spec=spec,
    )


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
def outcome_to_dict(outcome: BatchOutcome) -> dict[str, Any]:
    """Serialize an allocation outcome (one-way: outcomes reference no
    infrastructure, so they reload as plain dictionaries)."""
    return {
        "kind": "outcome",
        "algorithm": outcome.algorithm,
        "assignment": outcome.assignment.tolist(),
        "accepted": outcome.accepted.tolist(),
        "violations": outcome.violations,
        "violation_breakdown": dict(outcome.violation_breakdown),
        "objectives": outcome.objectives.tolist(),
        "elapsed": outcome.elapsed,
        "evaluations": outcome.evaluations,
        "rejection_rate": outcome.rejection_rate,
        "provider_cost": outcome.provider_cost,
    }


def run_record_to_dict(record: RunRecord) -> dict[str, Any]:
    """Serialize one evaluation-run record."""
    return {"kind": "run_record", **record.__dict__}


def run_record_from_dict(data: dict[str, Any]) -> RunRecord:
    """Inverse of :func:`run_record_to_dict`."""
    _check_kind(data, "run_record")
    fields = {k: v for k, v in data.items() if k != "kind"}
    return RunRecord(**fields)


# ----------------------------------------------------------------------
# Files
# ----------------------------------------------------------------------
def save_json(obj: dict[str, Any], path: str | Path) -> Path:
    """Write a serialized dictionary to ``path`` (pretty-printed)."""
    path = Path(path)
    path.write_text(json.dumps(obj, indent=2, sort_keys=True))
    return path


def load_json(path: str | Path) -> dict[str, Any]:
    """Read a serialized dictionary back from ``path``."""
    return json.loads(Path(path).read_text())
