"""Sparse assembly of the integer linear program of Section III.

Decision variables are the binaries x_{k,j} ("requested resource k is
hosted on server j"), flattened row-major as ``k * m + j``.  The
datacenter index i of the paper's X_ijk is implied by the server→
datacenter map, which keeps the variable count at n*m instead of
g*m*n.  Rows produced:

* assignment (Eq. 17): one equality per resource;
* capacity (Eq. 16): one inequality per (server, attribute);
* same-server (Eq. 10, linearized à la Eq. 13-14): per non-anchor
  member and server, ``x_{k,j} - x_{k0,j} = 0``;
* same-datacenter (Eq. 9): per non-anchor member and datacenter,
  the datacenter-summed difference is zero;
* different-servers (Eq. 12): per server, the group places at most one;
* different-datacenters (Eq. 11): per datacenter, at most one.

The objective is the literal Eq. 22: every hosted resource pays its
server's E_j + U_j.  The nonlinear downtime term (Eq. 23-24) is not
representable in an ILP and is deliberately omitted — the paper's own
constraint-solver baseline has the same limitation, which is part of
why the authors move to evolutionary search.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.errors import DimensionError
from repro.model.infrastructure import Infrastructure
from repro.model.request import Request
from repro.types import FloatArray, PlacementRule

__all__ = ["ILPModel"]


@dataclass
class ILPModel:
    """The assembled sparse ILP.

    Attributes
    ----------
    objective:
        (n*m,) cost vector c with c[k*m+j] = E_j + U_j.
    a_eq, b_eq:
        Equality system A_eq @ x == b_eq.
    a_ub, b_ub:
        Inequality system A_ub @ x <= b_ub.
    n, m:
        Problem sizes (for decoding).
    """

    objective: FloatArray
    a_eq: sparse.csr_matrix
    b_eq: FloatArray
    a_ub: sparse.csr_matrix
    b_ub: FloatArray
    n: int
    m: int

    @property
    def n_variables(self) -> int:
        """Total binary variables (n * m)."""
        return self.n * self.m

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        infrastructure: Infrastructure,
        request: Request,
        base_usage: FloatArray | None = None,
    ) -> "ILPModel":
        """Assemble the model for one instance."""
        n, m, h = request.n, infrastructure.m, infrastructure.h
        if request.h != h:
            raise DimensionError(
                f"request has {request.h} attributes, infrastructure {h}"
            )
        nv = n * m

        limit = infrastructure.effective_capacity
        if base_usage is not None:
            limit = limit - np.asarray(base_usage, dtype=np.float64)

        # Objective: rate[j] per placed resource.
        rate = infrastructure.operating_cost + infrastructure.usage_cost
        objective = np.tile(rate, n)

        eq_rows: list[sparse.coo_matrix] = []
        eq_rhs: list[np.ndarray] = []
        ub_rows: list[sparse.coo_matrix] = []
        ub_rhs: list[np.ndarray] = []

        # Assignment: sum_j x[k, j] == 1 for every k.
        k_idx = np.repeat(np.arange(n), m)
        cols = np.arange(nv)
        assign = sparse.coo_matrix(
            (np.ones(nv), (k_idx, cols)), shape=(n, nv)
        )
        eq_rows.append(assign)
        eq_rhs.append(np.ones(n))

        # Capacity: sum_k C[k, l] x[k, j] <= limit[j, l] per (j, l).
        # Row index = j * h + l; column k*m+j carries C[k, l].
        row_idx = np.empty(n * m * h, dtype=np.int64)
        col_idx = np.empty(n * m * h, dtype=np.int64)
        data = np.empty(n * m * h)
        pos = 0
        for l in range(h):
            rows = (np.arange(m) * h + l)  # (m,)
            row_block = np.tile(rows, n)  # k-major
            col_block = np.arange(nv)
            data_block = np.repeat(request.demand[:, l], m)
            row_idx[pos : pos + nv] = row_block
            col_idx[pos : pos + nv] = col_block
            data[pos : pos + nv] = data_block
            pos += nv
        capacity = sparse.coo_matrix(
            (data, (row_idx, col_idx)), shape=(m * h, nv)
        )
        ub_rows.append(capacity)
        ub_rhs.append(limit.reshape(-1))

        dc_of = infrastructure.server_datacenter
        g = infrastructure.g

        for group in request.groups:
            members = list(group.members)
            rule = group.rule
            if rule is PlacementRule.SAME_SERVER:
                anchor = members[0]
                for k in members[1:]:
                    rows = np.repeat(np.arange(m), 2)
                    cols2 = np.empty(2 * m, dtype=np.int64)
                    vals = np.empty(2 * m)
                    cols2[0::2] = k * m + np.arange(m)
                    vals[0::2] = 1.0
                    cols2[1::2] = anchor * m + np.arange(m)
                    vals[1::2] = -1.0
                    eq_rows.append(
                        sparse.coo_matrix((vals, (rows, cols2)), shape=(m, nv))
                    )
                    eq_rhs.append(np.zeros(m))
            elif rule is PlacementRule.SAME_DATACENTER:
                anchor = members[0]
                for k in members[1:]:
                    rows = np.concatenate([dc_of, dc_of])
                    cols2 = np.concatenate(
                        [k * m + np.arange(m), anchor * m + np.arange(m)]
                    )
                    vals = np.concatenate([np.ones(m), -np.ones(m)])
                    eq_rows.append(
                        sparse.coo_matrix((vals, (rows, cols2)), shape=(g, nv))
                    )
                    eq_rhs.append(np.zeros(g))
            elif rule is PlacementRule.DIFFERENT_SERVERS:
                rows = np.tile(np.arange(m), len(members))
                cols2 = np.concatenate([k * m + np.arange(m) for k in members])
                vals = np.ones(len(members) * m)
                ub_rows.append(
                    sparse.coo_matrix((vals, (rows, cols2)), shape=(m, nv))
                )
                ub_rhs.append(np.ones(m))
            elif rule is PlacementRule.DIFFERENT_DATACENTERS:
                rows = np.tile(dc_of, len(members))
                cols2 = np.concatenate([k * m + np.arange(m) for k in members])
                vals = np.ones(len(members) * m)
                ub_rows.append(
                    sparse.coo_matrix((vals, (rows, cols2)), shape=(g, nv))
                )
                ub_rhs.append(np.ones(g))

        a_eq = sparse.vstack(eq_rows).tocsr()
        b_eq = np.concatenate(eq_rhs)
        a_ub = sparse.vstack(ub_rows).tocsr()
        b_ub = np.concatenate(ub_rhs)
        return cls(
            objective=objective,
            a_eq=a_eq,
            b_eq=b_eq,
            a_ub=a_ub,
            b_ub=b_ub,
            n=n,
            m=m,
        )

    # ------------------------------------------------------------------
    def decode(self, x: FloatArray) -> np.ndarray:
        """Turn a 0/1 solution vector into a flat genome."""
        x = np.asarray(x, dtype=np.float64).reshape(self.n, self.m)
        return np.argmax(x, axis=1).astype(np.int64)

    def check(self, x: FloatArray, atol: float = 1e-6) -> bool:
        """Verify a solution vector satisfies every row (test oracle)."""
        x = np.asarray(x, dtype=np.float64).reshape(-1)
        eq_ok = np.allclose(self.a_eq @ x, self.b_eq, atol=atol)
        ub_ok = bool(np.all(self.a_ub @ x <= self.b_ub + atol))
        return eq_ok and ub_ok
