"""Integer-linear-programming backend.

Section III derives the allocation model "using a linear programming
approach"; this package assembles that model — binary variables
x_{k,j}, the capacity rows of Eq. 16, the assignment rows of Eq. 17
and the (linearized, Eq. 13-14 in spirit) affinity/anti-affinity rows
— into a sparse matrix form and solves it exactly with SciPy's HiGHS
``milp`` backend.

The exact solver serves two roles: the ground truth oracle for tests
(CP and ILP must agree on feasibility and optimal cost of small
instances) and the "how far from optimal is each heuristic?" yardstick
in the evaluation harness.  Like any exact method it does not scale;
instances are expected to stay small (n*m in the tens of thousands).
"""

from repro.lp.model import ILPModel
from repro.lp.solve import ILPSolution, solve_ilp

__all__ = ["ILPModel", "ILPSolution", "solve_ilp"]
