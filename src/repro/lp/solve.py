"""Exact ILP solving via SciPy's HiGHS ``milp`` backend.

The paper's role for exact optimization — establish the ground truth a
heuristic should approach — is served here: :func:`solve_ilp` returns
the optimal placement or a proof of infeasibility, within a time
budget.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.lp.model import ILPModel
from repro.model.infrastructure import Infrastructure
from repro.model.request import Request
from repro.types import FloatArray, IntArray
from repro.utils.timers import Stopwatch

__all__ = ["ILPSolution", "solve_ilp"]


@dataclass(frozen=True)
class ILPSolution:
    """Outcome of an exact solve.

    ``status`` follows HiGHS: 0 = optimal, 1 = iteration/time limit,
    2 = infeasible, 3 = unbounded, 4 = other.
    """

    assignment: IntArray | None
    cost: float
    status: int
    message: str
    elapsed: float

    @property
    def optimal(self) -> bool:
        """Whether the returned placement is proved optimal."""
        return self.status == 0 and self.assignment is not None

    @property
    def infeasible(self) -> bool:
        """Whether infeasibility was proved."""
        return self.status == 2


def solve_ilp(
    infrastructure: Infrastructure,
    request: Request,
    base_usage: FloatArray | None = None,
    time_limit: float | None = 60.0,
) -> ILPSolution:
    """Build and solve the Section III ILP for one instance."""
    model = ILPModel.build(infrastructure, request, base_usage=base_usage)
    constraints = [
        LinearConstraint(model.a_eq, model.b_eq, model.b_eq),
        LinearConstraint(model.a_ub, -np.inf, model.b_ub),
    ]
    bounds = Bounds(0, 1)
    integrality = np.ones(model.n_variables)

    options: dict = {}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)

    with Stopwatch() as stopwatch:
        result = milp(
            c=model.objective,
            constraints=constraints,
            bounds=bounds,
            integrality=integrality,
            options=options,
        )

    if result.x is not None and result.status in (0, 1):
        assignment = model.decode(result.x)
        cost = float(model.objective @ np.round(result.x))
    else:
        assignment = None
        cost = np.inf
    return ILPSolution(
        assignment=assignment,
        cost=cost,
        status=int(result.status),
        message=str(result.message),
        elapsed=stopwatch.elapsed,
    )
