"""The tabu-search repair process (the paper's Figures 4-6).

``Repair(I)`` scans an individual for servers whose constraints are
exceeded (``exceedingDetection``) and re-hosts every VM found on an
offending server via ``findNeighbor``.  We extend the scan to the
affinity/anti-affinity groups — the paper checks "each constraint
(capacities constraint, affinity and anti-affinity constraints)" during
evaluation and repairs whatever is invalid.

The repair runs for up to ``max_rounds`` full passes.  Every
intermediate state is scored, and — following the paper's Euclidean
rule ("we choose the solution that is found closer to the ideal point
where cost and rejection rate are the next to naught") — the state
returned is the one minimizing (violations, usage-cost) lexicographic
distance to the ideal: zero violations first, cheapest placement among
equals.
"""

from __future__ import annotations

import time

import numpy as np

from repro.constraints.registry import ConstraintSet
from repro.engine.kernels import active_kernel
from repro.engine.parallel import RepairParams
from repro.errors import ValidationError
from repro.model.infrastructure import Infrastructure
from repro.model.request import Request
from repro.tabu.neighborhood import NeighborFinder, TabuList
from repro.telemetry import RepairInvoked, get_bus, get_registry
from repro.types import FloatArray, IntArray
from repro.utils.rng import as_generator, derive_sequence, root_sequence

__all__ = ["TabuRepair"]


class TabuRepair:
    """Callable genome repairer; plugs into
    :class:`~repro.ea.constraint_handling.RepairHandling`.

    Parameters
    ----------
    infrastructure, request:
        The problem instance.
    base_usage:
        Committed usage from earlier windows.
    max_rounds:
        Full repair passes per individual before giving up.
    tenure:
        Tabu-list tenure (forbidden (vm, server) pairs remembered).
    order:
        Neighbour preference passed to :class:`NeighborFinder`.
    seed:
        RNG for the ``"random"`` order and VM scan shuffling.
    compiled:
        Optional :class:`~repro.engine.CompiledProblem` of the same
        instance; when given, the constraint set shares its prebuilt
        group constraints and the finder reuses its compiled indexes —
        one compilation then serves every repair call of a run.
    engine:
        Optional :class:`~repro.engine.parallel.ParallelEngine`.  When
        given (and ``compiled`` is too), population repair fans the
        infeasible rows out across the engine's worker pool.  Results
        are byte-identical to the serial path: each individual's RNG
        stream is derived from ``(seed, batch_index, row)`` whether it
        is repaired in-process or in a worker.
    """

    def __init__(
        self,
        infrastructure: Infrastructure,
        request: Request,
        base_usage: FloatArray | None = None,
        max_rounds: int = 4,
        tenure: int = 64,
        order: str = "first",
        allow_worsening_moves: bool = True,
        seed=None,
        compiled=None,
        engine=None,
    ) -> None:
        if max_rounds < 1:
            raise ValidationError(f"max_rounds must be >= 1, got {max_rounds}")
        self.infrastructure = infrastructure
        self.request = request
        self.compiled = compiled
        if compiled is not None:
            self.constraints = compiled.constraint_set(
                base_usage=base_usage, include_assignment=False
            )
        else:
            self.constraints = ConstraintSet(
                infrastructure, request, base_usage=base_usage, include_assignment=False
            )
        self.finder = NeighborFinder(
            infrastructure, request, base_usage=base_usage, compiled=compiled
        )
        self.max_rounds = int(max_rounds)
        self.tenure = int(tenure)
        self.order = order
        self.allow_worsening_moves = bool(allow_worsening_moves)
        self.engine = engine
        self._base_usage = base_usage
        self._rng = as_generator(seed)
        # Per-individual streams are addressed by (batch, row) under this
        # root — the determinism contract the parallel fan-out relies on.
        self._root_seq = root_sequence(seed)
        self._batch_counter = 0
        # E + U per server: the cheap cost proxy for ideal-point scoring.
        self._cost_rate = (
            compiled.per_resource_rate
            if compiled is not None
            else infrastructure.operating_cost + infrastructure.usage_cost
        )
        self.repaired_individuals = 0
        self.moves_performed = 0
        #: Optional wall-clock cutoff (``time.perf_counter`` stamp) set
        #: by the EA loop when its config carries a ``time_limit``; the
        #: repair rounds and the per-population row loop both stop once
        #: it has passed, so one pathological repair cannot blow through
        #: the run's budget.  NOTE: a deadline makes results timing-
        #: dependent — runs relying on byte-identical determinism
        #: (parallel/resume verification) leave ``time_limit`` unset.
        self.deadline: float | None = None

    # ------------------------------------------------------------------
    # Runtime hooks used by the EA loop (deadline propagation) and the
    # checkpoint subsystem (trajectory state across kill/resume).
    # ------------------------------------------------------------------
    def set_deadline(self, deadline: float | None) -> None:
        """Bound all subsequent repair work by a ``perf_counter`` stamp."""
        self.deadline = None if deadline is None else float(deadline)

    def _deadline_passed(self) -> bool:
        return self.deadline is not None and time.perf_counter() >= self.deadline

    def runtime_state(self) -> dict:
        """Checkpoint payload: the RNG batch counter plus run counters.

        ``batch_counter`` addresses the per-individual RNG streams of
        population repair — restoring it is what keeps a resumed run on
        the exact random trajectory of the uninterrupted one.
        """
        return {
            "batch_counter": int(self._batch_counter),
            "repaired_individuals": int(self.repaired_individuals),
            "moves_performed": int(self.moves_performed),
        }

    def restore_runtime_state(self, state: dict) -> None:
        """Inverse of :meth:`runtime_state` (resume path)."""
        self._batch_counter = int(state["batch_counter"])
        self.repaired_individuals = int(state.get("repaired_individuals", 0))
        self.moves_performed = int(state.get("moves_performed", 0))

    # ------------------------------------------------------------------
    # Fast fault/score paths.  These reuse the usage matrix the repair
    # loop maintains incrementally, and use Python sets for the tiny
    # member-server collections (np.unique on 2-8 element arrays is the
    # profiler-measured bottleneck otherwise).
    # ------------------------------------------------------------------
    def _group_violations(self, assignment: IntArray, group) -> int:
        dc_of = self.infrastructure.server_datacenter
        genes = [int(assignment[k]) for k in group.members if assignment[k] >= 0]
        if len(genes) <= 1:
            return 0
        rule = group.rule
        if rule.value == "same_server":
            return len(set(genes)) - 1
        if rule.value == "same_datacenter":
            return len({int(dc_of[j]) for j in genes}) - 1
        if rule.value == "different_servers":
            return len(genes) - len(set(genes))
        return len(genes) - len({int(dc_of[j]) for j in genes})

    def _overloaded_servers(self, usage: FloatArray) -> IntArray:
        capacity = self.constraints.capacity
        over = usage > capacity._threshold
        return np.flatnonzero(over.any(axis=1)).astype(np.int64)

    def _faulty_vms(self, assignment: IntArray, usage: FloatArray) -> IntArray:
        """VMs that must move: hosted on an overloaded server, or member
        of a violated affinity/anti-affinity group (Fig. 5, line 2)."""
        offenders = self._overloaded_servers(usage)
        faulty = np.zeros(self.request.n, dtype=bool)
        if offenders.size:
            faulty |= np.isin(assignment, offenders)
        for group in self.request.groups:
            if self._group_violations(assignment, group) > 0:
                faulty[list(group.members)] = True
        return np.flatnonzero(faulty).astype(np.int64)

    def _still_faulty(
        self, vm: int, assignment: IntArray, usage: FloatArray
    ) -> bool:
        """Re-check one VM against the *current* state: earlier moves in
        the same round may already have fixed its server or group, in
        which case moving it too would overshoot (drain a server that
        now fits, or split a group that just converged)."""
        server = int(assignment[vm])
        capacity = self.constraints.capacity
        if np.any(usage[server] > capacity._threshold[server]):
            return True
        for gi in self.finder._groups_of_vm[vm]:
            if self._group_violations(assignment, self.request.groups[gi]) > 0:
                return True
        return False

    def _score(
        self, assignment: IntArray, usage: FloatArray
    ) -> tuple[int, float]:
        """(violations, usage cost) — the lexicographic ideal-point key."""
        capacity = self.constraints.capacity
        violations = int(np.count_nonzero(usage > capacity._threshold))
        for group in self.request.groups:
            violations += self._group_violations(assignment, group)
        cost = float(self._cost_rate[assignment[assignment >= 0]].sum())
        return violations, cost

    def _least_overflow_move(
        self,
        usage: FloatArray,
        assignment: IntArray,
        vm: int,
        tabu: TabuList,
    ) -> int | None:
        """Worsening-tolerant tabu move: when no strictly valid server
        exists, relocate to the server that adds the least capacity
        overflow, preferring affinity-consistent targets.  This is what
        lets the walk escape local optima instead of stalling, at the
        price of temporarily shifted violations (bounded by the
        best-state tracking in :meth:`repair_genome`)."""
        demand = self.request.demand[vm]
        limit = self.finder.limit
        # Overflow added on each prospective target.
        after = np.maximum(0.0, usage + demand[None, :] - limit)
        before = np.maximum(0.0, usage - limit)
        added = (after - before).sum(axis=1)
        candidates = np.ones(limit.shape[0], dtype=bool)
        candidates[assignment[vm]] = False
        for server in tabu.forbidden_servers(vm):
            candidates[server] = False
        if not candidates.any():
            return None
        affinity_ok = self.finder.affinity_mask(assignment, vm) & candidates
        pool = affinity_ok if affinity_ok.any() else candidates
        idx = np.flatnonzero(pool)
        return int(idx[np.argmin(added[idx])])

    # ------------------------------------------------------------------
    def repair_genome(
        self,
        assignment: IntArray,
        rng=None,
        *,
        usage: FloatArray | None = None,
        known_infeasible: bool = False,
    ) -> IntArray:
        """Repair one genome (Fig. 5).  Returns a new array.

        ``rng`` overrides the repairer's own stream; population repair
        passes a per-individual generator derived from the root seed so
        the walk is a pure function of (seed, batch, row) — identical
        whether this runs in-process or in a pool worker.

        ``usage`` optionally supplies this genome's (m, h) usage matrix
        (one row of the batch tile population repair scores up front);
        it must equal ``capacity.server_usage(assignment)`` bitwise,
        which rows of :meth:`CapacityConstraint.batch_usage` do by the
        kernel conformance contract.  ``known_infeasible`` skips the
        redundant feasibility pre-check for callers that already
        batch-screened the population.
        """
        if rng is None:
            rng = self._rng
        assignment = np.asarray(assignment, dtype=np.int64).copy()
        if not known_infeasible and self.constraints.is_feasible(assignment):
            return assignment

        self.repaired_individuals += 1
        moves_before = self.moves_performed
        tabu = TabuList(tenure=self.tenure)
        if usage is None:
            usage = self.constraints.capacity.server_usage(assignment)
        else:
            usage = np.array(usage, dtype=np.float64)  # owned, mutated below
        best = assignment.copy()
        best_score = self._score(assignment, usage)
        stall_rounds = 0

        grouped = np.zeros(self.request.n, dtype=bool)
        for group in self.request.groups:
            grouped[list(group.members)] = True

        for _ in range(self.max_rounds):
            if self._deadline_passed():
                break
            faulty = self._faulty_vms(assignment, usage)
            if faulty.size == 0:
                break
            # Shuffle, then visit ungrouped VMs first: moving them never
            # perturbs an affinity rule, so capacity pressure drains off
            # overloaded servers without collateral group damage.
            rng.shuffle(faulty)
            faulty = faulty[np.argsort(grouped[faulty], kind="stable")]
            moved_any = False
            for scanned, vm in enumerate(faulty):
                # The round itself can be long on big instances; re-check
                # the budget every few dozen candidate moves.
                if scanned % 32 == 31 and self._deadline_passed():
                    break
                if not self._still_faulty(int(vm), assignment, usage):
                    continue
                target = self.finder.find(
                    usage,
                    assignment,
                    int(vm),
                    tabu=tabu,
                    order=self.order,
                    rng=rng,
                )
                if target is None and self.allow_worsening_moves:
                    target = self._least_overflow_move(
                        usage, assignment, int(vm), tabu
                    )
                if target is None:
                    continue  # findNeighbor fell through: leave the gene
                old = int(assignment[vm])
                demand = self.request.demand[vm]
                usage[old] -= demand
                usage[target] += demand
                assignment[vm] = target
                tabu.add(int(vm), old)
                self.moves_performed += 1
                moved_any = True
            score = self._score(assignment, usage)
            if score < best_score:
                best_score = score
                best = assignment.copy()
                stall_rounds = 0
            else:
                stall_rounds += 1
            if best_score[0] == 0:
                break
            if not moved_any or stall_rounds >= 3:
                break  # stuck (no move, or three rounds without progress)

        moves = self.moves_performed - moves_before
        registry = get_registry()
        registry.count("tabu.repair.individuals", repairer="tabu")
        registry.count("tabu.repair.moves", moves, repairer="tabu")
        bus = get_bus()
        if bus.enabled:
            bus.emit(
                RepairInvoked(
                    repairer="tabu", moves=moves, repaired=best_score[0] == 0
                )
            )
        return best

    # ------------------------------------------------------------------
    def __call__(self, population: IntArray) -> IntArray:
        """Repair a whole population matrix (infeasible rows only).

        Each batch call advances ``_batch_counter`` — the "generation"
        coordinate of the per-individual RNG streams.  The call order
        of population repairs within a run is fixed (init, parents,
        offspring per generation), so the counter is identical across
        serial and parallel executions of the same seed.
        """
        population = np.asarray(population, dtype=np.int64)
        if population.ndim == 1:
            return self.repair_genome(population)
        batch_index = self._batch_counter
        self._batch_counter += 1
        feasible = self.constraints.batch_feasible(population)
        if feasible.all():
            return population
        rows = np.flatnonzero(~feasible)
        repaired = population.copy()

        engine = self.engine
        if (
            engine is not None
            and engine.available
            and self.compiled is not None
            and rows.size >= engine.min_dispatch_rows
            and not self._deadline_passed()
        ):
            fanned = engine.repair_rows(
                self.compiled,
                RepairParams(
                    max_rounds=self.max_rounds,
                    tenure=self.tenure,
                    order=self.order,
                    allow_worsening_moves=self.allow_worsening_moves,
                    kernel=active_kernel().name,
                ),
                population[rows],
                rows,
                root=self._root_seq,
                batch_index=batch_index,
                base_usage=self._base_usage,
            )
            if fanned is not None:
                repaired[rows] = fanned
                return repaired
            # Engine degraded: fall through to the serial loop, which
            # derives the very same per-row streams — same bytes out.

        tile = self._usage_tile(population, rows)
        for local, i in enumerate(rows):
            if self._deadline_passed():
                break  # remaining rows pass through unrepaired
            rng = np.random.default_rng(
                derive_sequence(self._root_seq, batch_index, int(i))
            )
            repaired[i] = self.repair_genome(
                population[i],
                rng=rng,
                usage=None if tile is None else tile[local],
                known_infeasible=True,
            )
        return repaired

    def _usage_tile(
        self, population: IntArray, rows: IntArray
    ) -> FloatArray | None:
        """Score the whole infeasible batch's usage as one kernel tile.

        Rows of the tile are bitwise-equal to per-genome
        ``server_usage`` scatters (kernel conformance contract), so
        handing ``tile[local]`` to :meth:`repair_genome` changes no
        result — it only replaces ``rows`` individual scatter-adds
        with one vectorized pass.  Falls back to per-row scatters when
        the tile would be unreasonably large.
        """
        if rows.size == 0 or self._deadline_passed():
            return None
        capacity = self.constraints.capacity
        m, h = capacity.limit.shape
        if rows.size * m * h > 8_000_000:  # ~64 MB of float64: not worth it
            return None
        tile = capacity.batch_usage(population[rows])
        registry = get_registry()
        registry.count("engine.kernel.repair_tiles")
        registry.count("engine.kernel.repair_tile_rows", int(rows.size))
        return tile
