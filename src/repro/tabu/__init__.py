"""Tabu-search layer: the paper's repair process and a standalone search.

* :class:`TabuRepair` — the Fig. 5 ``Repair`` procedure: detect servers
  whose constraints are exceeded, then move each virtual machine hosted
  on an offending server to the nearest valid neighbour (Fig. 6),
  keeping a tabu list so the walk does not revisit assignments.
* :class:`NeighborFinder` — the Fig. 6 ``findNeighbor`` procedure plus
  the affinity-aware candidate ordering.
* :class:`TabuSearch` — a standalone tabu-search optimizer over whole
  placements (used by ablations and as a non-EA point of comparison).
"""

from repro.tabu.neighborhood import NeighborFinder, TabuList
from repro.tabu.repair import TabuRepair
from repro.tabu.search import TabuSearch

__all__ = ["NeighborFinder", "TabuList", "TabuRepair", "TabuSearch"]
