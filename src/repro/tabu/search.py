"""Standalone tabu search over whole placements.

The paper uses tabu search as the repair inside NSGA-III; this module
additionally exposes it as a self-contained local-search optimizer so
the ablation benches can ask "how far does the tabu component get on
its own?".  The move neighbourhood is single-VM relocation (the same
moves the repair performs); the aspiration criterion admits tabu moves
that improve the best score found so far.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.objectives.evaluator import PopulationEvaluator
from repro.tabu.neighborhood import TabuList
from repro.telemetry import TabuIteration, get_bus, get_registry, span
from repro.types import FloatArray, IntArray
from repro.utils.rng import as_generator
from repro.utils.timers import Stopwatch

__all__ = ["TabuSearch", "TabuSearchResult"]


@dataclass(frozen=True)
class TabuSearchResult:
    """Outcome of a standalone tabu-search run."""

    assignment: IntArray
    objectives: FloatArray
    violations: int
    iterations: int
    evaluations: int
    elapsed: float


class TabuSearch:
    """Single-solution tabu search with relocation moves.

    Parameters
    ----------
    evaluator:
        Problem instance wrapper providing objectives and violations.
    max_iterations:
        Outer iterations (one accepted move each).
    neighborhood_size:
        Candidate moves sampled per iteration.
    tenure:
        Tabu memory length.
    seed:
        RNG seed.
    """

    def __init__(
        self,
        evaluator: PopulationEvaluator,
        max_iterations: int = 200,
        neighborhood_size: int = 32,
        tenure: int = 32,
        seed=None,
    ) -> None:
        if max_iterations < 1:
            raise ValidationError("max_iterations must be >= 1")
        if neighborhood_size < 1:
            raise ValidationError("neighborhood_size must be >= 1")
        self.evaluator = evaluator
        self.max_iterations = int(max_iterations)
        self.neighborhood_size = int(neighborhood_size)
        self.tenure = int(tenure)
        self._rng = as_generator(seed)

    # ------------------------------------------------------------------
    @staticmethod
    def _iteration_event(
        iteration: int,
        moves_evaluated: int,
        accepted: bool,
        best_score: tuple[int, float],
    ) -> TabuIteration:
        return TabuIteration(
            iteration=iteration,
            moves_evaluated=moves_evaluated,
            accepted=accepted,
            best_violations=int(best_score[0]),
            best_aggregate=float(best_score[1]),
        )

    def _score(self, assignment: IntArray) -> tuple[int, float]:
        violations = self.evaluator.violations(assignment)
        aggregate = float(self.evaluator.evaluate(assignment).aggregate())
        return violations, aggregate

    def run(self, initial: IntArray) -> TabuSearchResult:
        """Search from ``initial``; returns the best placement visited."""
        n = self.evaluator.request.n
        m = self.evaluator.infrastructure.m
        current = np.asarray(initial, dtype=np.int64).copy()
        if current.shape != (n,):
            raise ValidationError(
                f"initial assignment shape {current.shape}, expected ({n},)"
            )

        stopwatch = Stopwatch().start()
        tabu = TabuList(tenure=self.tenure)
        evaluations = 0
        bus = get_bus()

        current_score = self._score(current)
        evaluations += 1
        best = current.copy()
        best_score = current_score

        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            vms = self._rng.integers(0, n, size=self.neighborhood_size)
            servers = self._rng.integers(0, m, size=self.neighborhood_size)
            # Build the candidate batch, skipping no-op moves.
            moves = [
                (int(vm), int(srv))
                for vm, srv in zip(vms, servers)
                if srv != current[vm]
            ]
            if not moves:
                if bus.enabled:
                    bus.emit(
                        self._iteration_event(iterations, 0, False, best_score)
                    )
                continue
            batch = np.tile(current, (len(moves), 1))
            for row, (vm, srv) in enumerate(moves):
                batch[row, vm] = srv
            result = self.evaluator.evaluate_population(batch)
            evaluations += len(moves)
            aggregates = result.aggregate()

            best_move = None
            best_move_score = None
            for row, (vm, srv) in enumerate(moves):
                score = (int(result.violations[row]), float(aggregates[row]))
                is_tabu = (vm, current[vm]) in tabu and srv == current[vm]
                # Aspiration: a tabu move that beats the global best is
                # admitted anyway.
                if is_tabu and score >= best_score:
                    continue
                if best_move_score is None or score < best_move_score:
                    best_move = (vm, srv)
                    best_move_score = score
            if best_move is None:
                if bus.enabled:
                    bus.emit(
                        self._iteration_event(
                            iterations, len(moves), False, best_score
                        )
                    )
                continue
            vm, srv = best_move
            tabu.add(vm, int(current[vm]))
            current[vm] = srv
            current_score = best_move_score
            if current_score < best_score:
                best_score = current_score
                best = current.copy()
            if bus.enabled:
                bus.emit(
                    self._iteration_event(
                        iterations, len(moves), True, best_score
                    )
                )

        stopwatch.stop()
        registry = get_registry()
        registry.count("tabu.search.iterations", iterations)
        registry.count("tabu.search.evaluations", evaluations)
        registry.observe("tabu.search.seconds", stopwatch.elapsed)
        final_objectives = self.evaluator.evaluate(best).as_array()
        return TabuSearchResult(
            assignment=best,
            objectives=final_objectives,
            violations=best_score[0],
            iterations=iterations,
            evaluations=evaluations,
            elapsed=stopwatch.elapsed,
        )
