"""Standalone tabu search over whole placements.

The paper uses tabu search as the repair inside NSGA-III; this module
additionally exposes it as a self-contained local-search optimizer so
the ablation benches can ask "how far does the tabu component get on
its own?".  The move neighbourhood is single-VM relocation (the same
moves the repair performs); the aspiration criterion admits tabu moves
that improve the best score found so far.

Candidate moves are scored through the
:class:`~repro.engine.IncrementalEvaluator` delta path — O(attributes +
groups-of-vm) per move instead of tiling and re-evaluating whole
genomes — and the tabu memory forbids the *candidate* move (vm, srv):
re-entering a freshly vacated server is blocked for ``tenure``
insertions unless the move beats the global best (aspiration).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.compiled import CompiledProblem
from repro.engine.incremental import IncrementalEvaluator
from repro.errors import ValidationError
from repro.objectives.evaluator import PopulationEvaluator
from repro.tabu.neighborhood import TabuList
from repro.telemetry import TabuIteration, get_bus, get_registry
from repro.types import FloatArray, IntArray
from repro.utils.rng import as_generator
from repro.utils.timers import Stopwatch

__all__ = ["TabuRun", "TabuSearch", "TabuSearchResult"]


@dataclass(frozen=True)
class TabuSearchResult:
    """Outcome of a standalone tabu-search run."""

    assignment: IntArray
    objectives: FloatArray
    violations: int
    iterations: int
    evaluations: int
    elapsed: float


class TabuSearch:
    """Single-solution tabu search with relocation moves.

    Parameters
    ----------
    evaluator:
        Problem instance wrapper providing objectives and violations;
        its configuration (base usage, previous assignment, downtime
        mode, strict-QoS cap) carries over to the delta scorer.
    max_iterations:
        Outer iterations (one accepted move each).
    neighborhood_size:
        Candidate moves sampled per iteration.
    tenure:
        Tabu memory length.
    seed:
        RNG seed.
    compiled:
        Optional pre-compiled instance (compiled on demand otherwise);
        pass it when the caller already holds one so the compilation is
        shared.
    verify_interval:
        When > 0, assert delta/full parity every that many iterations
        (the :meth:`IncrementalEvaluator.verify` escape hatch).
    """

    def __init__(
        self,
        evaluator: PopulationEvaluator,
        max_iterations: int = 200,
        neighborhood_size: int = 32,
        tenure: int = 32,
        seed=None,
        compiled: CompiledProblem | None = None,
        verify_interval: int = 0,
    ) -> None:
        if max_iterations < 1:
            raise ValidationError("max_iterations must be >= 1")
        if neighborhood_size < 1:
            raise ValidationError("neighborhood_size must be >= 1")
        self.evaluator = evaluator
        self.compiled = compiled or CompiledProblem.compile(
            evaluator.infrastructure, evaluator.request
        )
        self.max_iterations = int(max_iterations)
        self.neighborhood_size = int(neighborhood_size)
        self.tenure = int(tenure)
        self.verify_interval = int(verify_interval)
        self._rng = as_generator(seed)

    # ------------------------------------------------------------------
    @staticmethod
    def _iteration_event(
        iteration: int,
        moves_evaluated: int,
        accepted: bool,
        best_score: tuple[int, float],
    ) -> TabuIteration:
        return TabuIteration(
            iteration=iteration,
            moves_evaluated=moves_evaluated,
            accepted=accepted,
            best_violations=int(best_score[0]),
            best_aggregate=float(best_score[1]),
        )

    def _incremental(self, assignment: IntArray) -> IncrementalEvaluator:
        """Delta scorer configured identically to ``self.evaluator``."""
        constraints = self.evaluator.constraints
        return IncrementalEvaluator(
            self.compiled,
            assignment,
            base_usage=constraints.base_usage,
            previous_assignment=self.evaluator.migration.previous_assignment,
            downtime_mode=self.evaluator.downtime.mode,
            per_server_operating=self.evaluator.usage_cost.per_server_operating,
            include_assignment=constraints.assignment is not None,
            qos_strict=constraints.load_cap is not None,
            energy_weight=self.evaluator.energy_weight,
        )

    def start(self, initial: IntArray) -> "TabuRun":
        """Begin a stepwise search from ``initial``; see :class:`TabuRun`."""
        return TabuRun(self, initial)

    def run(self, initial: IntArray) -> TabuSearchResult:
        """Search from ``initial``; returns the best placement visited."""
        run = self.start(initial)
        while run.step():
            pass
        return run.result()


class TabuRun:
    """One in-progress tabu search, advanced iteration by iteration.

    Obtained from :meth:`TabuSearch.start`.  Holds the walk state —
    delta scorer, tabu memory, current/best scores, the search's RNG —
    so :meth:`step` can run bounded slices of the classic loop and
    :meth:`best_assignment` is valid between any two slices.  Driving
    ``while run.step(): pass`` then :meth:`result` is byte-identical to
    the blocking :meth:`TabuSearch.run`, which now does exactly that.
    """

    def __init__(self, search: TabuSearch, initial: IntArray) -> None:
        self.search = search
        n = search.evaluator.request.n
        current = np.asarray(initial, dtype=np.int64).copy()
        if current.shape != (n,):
            raise ValidationError(
                f"initial assignment shape {current.shape}, expected ({n},)"
            )
        self.stopwatch = Stopwatch().start()
        self.tabu = TabuList(tenure=search.tenure)
        self._bus = get_bus()
        self.state = search._incremental(current)
        self.current_score = (self.state.violations, self.state.aggregate())
        self.evaluations = 1
        self.best = current.copy()
        self.best_score = self.current_score
        self.iteration = 0
        self._result: TabuSearchResult | None = None

    # ------------------------------------------------------------------
    def _advance(self) -> None:
        """Exactly one iteration — the body of the classic loop."""
        search = self.search
        state = self.state
        n = search.evaluator.request.n
        m = search.evaluator.infrastructure.m
        self.iteration += 1
        iterations = self.iteration

        vms = search._rng.integers(0, n, size=search.neighborhood_size)
        servers = search._rng.integers(0, m, size=search.neighborhood_size)
        # Candidate relocations, skipping no-op moves.
        moves = [
            (int(vm), int(srv))
            for vm, srv in zip(vms, servers)
            if srv != state.assignment[vm]
        ]
        best_move = None
        best_move_score = None
        for vm, srv in moves:
            candidate = state.score_move(vm, srv)
            self.evaluations += 1
            score = (candidate.violations, candidate.aggregate())
            # Short-term memory forbids the candidate move itself;
            # aspiration admits it anyway when it would beat the
            # global best.
            if (vm, srv) in self.tabu and score >= self.best_score:
                continue
            if best_move_score is None or score < best_move_score:
                best_move = (vm, srv)
                best_move_score = score
        if best_move is None:
            if self._bus.enabled:
                self._bus.emit(
                    search._iteration_event(
                        iterations, len(moves), False, self.best_score
                    )
                )
            return
        vm, srv = best_move
        old = int(state.assignment[vm])
        state.apply_move(vm, srv)
        self.tabu.add(vm, old)
        self.current_score = best_move_score
        if self.current_score < self.best_score:
            self.best_score = self.current_score
            self.best = state.assignment.copy()
        if search.verify_interval and iterations % search.verify_interval == 0:
            state.verify()
        if self._bus.enabled:
            self._bus.emit(
                search._iteration_event(
                    iterations, len(moves), True, self.best_score
                )
            )

    def step(self, iterations: int = 1) -> bool:
        """Advance up to ``iterations``; False = the budget is spent."""
        for _ in range(int(iterations)):
            if self.iteration >= self.search.max_iterations:
                return False
            self._advance()
        return self.iteration < self.search.max_iterations

    def best_assignment(self) -> IntArray:
        """Best placement visited so far (copy), at any instant."""
        return self.best.copy()

    def reseed(self, assignment: IntArray, score: tuple[int, float]) -> bool:
        """Adopt a pooled incumbent as the walk's current position.

        ``score`` is the (violations, aggregate) pair the pool recorded
        for ``assignment`` under the same evaluation configuration.
        The jump is taken only when it beats the *current* position —
        strictly, so repeated exchanges with an unchanged pool are
        no-ops — and the tabu memory survives, steering the walk away
        from rediscovering its own past.  Deterministic: no RNG draws.
        """
        score = (int(score[0]), float(score[1]))
        if score >= self.current_score:
            return False
        self.state.reset(np.asarray(assignment, dtype=np.int64))
        self.current_score = (self.state.violations, self.state.aggregate())
        if self.current_score < self.best_score:
            self.best_score = self.current_score
            self.best = self.state.assignment.copy()
        return True

    def result(self) -> TabuSearchResult:
        """Freeze the walk into a :class:`TabuSearchResult` (idempotent)."""
        if self._result is not None:
            return self._result
        search = self.search
        self.stopwatch.stop()
        self.state.flush_telemetry()
        registry = get_registry()
        registry.count("tabu.search.iterations", self.iteration)
        registry.count("tabu.search.evaluations", self.evaluations)
        registry.observe("tabu.search.seconds", self.stopwatch.elapsed)
        # One full evaluation of the winner — objectives and violations
        # in a single pass (the usage scatter is shared, see assess()).
        final_objectives, final_violations = search.evaluator.assess(self.best)
        self.evaluations += 1
        self._result = TabuSearchResult(
            assignment=self.best,
            objectives=final_objectives.as_array(),
            violations=int(final_violations),
            iterations=self.iteration,
            evaluations=self.evaluations,
            elapsed=self.stopwatch.elapsed,
        )
        return self._result

    # ------------------------------------------------------------------
    # Portfolio checkpoint plumbing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-able snapshot of the walk (for composite checkpoints)."""
        return {
            "assignment": self.state.assignment.tolist(),
            "best": self.best.tolist(),
            "current_score": [self.current_score[0], self.current_score[1]],
            "best_score": [self.best_score[0], self.best_score[1]],
            "iteration": self.iteration,
            "evaluations": self.evaluations,
            "elapsed": self.stopwatch.elapsed,
            "rng_state": self.search._rng.bit_generator.state,
            "tabu": [list(key) for key in self.tabu._entries],
        }

    def load_state_dict(self, payload: dict) -> None:
        """Restore a :meth:`state_dict` snapshot byte-identically."""
        self.state.reset(np.asarray(payload["assignment"], dtype=np.int64))
        self.best = np.asarray(payload["best"], dtype=np.int64)
        self.current_score = (
            int(payload["current_score"][0]),
            float(payload["current_score"][1]),
        )
        self.best_score = (
            int(payload["best_score"][0]),
            float(payload["best_score"][1]),
        )
        self.iteration = int(payload["iteration"])
        self.evaluations = int(payload["evaluations"])
        self.stopwatch = Stopwatch(elapsed=float(payload["elapsed"])).start()
        self.search._rng.bit_generator.state = payload["rng_state"]
        self.tabu.clear()
        for vm, server in payload["tabu"]:
            self.tabu.add(int(vm), int(server))
