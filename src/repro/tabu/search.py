"""Standalone tabu search over whole placements.

The paper uses tabu search as the repair inside NSGA-III; this module
additionally exposes it as a self-contained local-search optimizer so
the ablation benches can ask "how far does the tabu component get on
its own?".  The move neighbourhood is single-VM relocation (the same
moves the repair performs); the aspiration criterion admits tabu moves
that improve the best score found so far.

Candidate moves are scored through the
:class:`~repro.engine.IncrementalEvaluator` delta path — O(attributes +
groups-of-vm) per move instead of tiling and re-evaluating whole
genomes — and the tabu memory forbids the *candidate* move (vm, srv):
re-entering a freshly vacated server is blocked for ``tenure``
insertions unless the move beats the global best (aspiration).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.compiled import CompiledProblem
from repro.engine.incremental import IncrementalEvaluator
from repro.errors import ValidationError
from repro.objectives.evaluator import PopulationEvaluator
from repro.tabu.neighborhood import TabuList
from repro.telemetry import TabuIteration, get_bus, get_registry
from repro.types import FloatArray, IntArray
from repro.utils.rng import as_generator
from repro.utils.timers import Stopwatch

__all__ = ["TabuSearch", "TabuSearchResult"]


@dataclass(frozen=True)
class TabuSearchResult:
    """Outcome of a standalone tabu-search run."""

    assignment: IntArray
    objectives: FloatArray
    violations: int
    iterations: int
    evaluations: int
    elapsed: float


class TabuSearch:
    """Single-solution tabu search with relocation moves.

    Parameters
    ----------
    evaluator:
        Problem instance wrapper providing objectives and violations;
        its configuration (base usage, previous assignment, downtime
        mode, strict-QoS cap) carries over to the delta scorer.
    max_iterations:
        Outer iterations (one accepted move each).
    neighborhood_size:
        Candidate moves sampled per iteration.
    tenure:
        Tabu memory length.
    seed:
        RNG seed.
    compiled:
        Optional pre-compiled instance (compiled on demand otherwise);
        pass it when the caller already holds one so the compilation is
        shared.
    verify_interval:
        When > 0, assert delta/full parity every that many iterations
        (the :meth:`IncrementalEvaluator.verify` escape hatch).
    """

    def __init__(
        self,
        evaluator: PopulationEvaluator,
        max_iterations: int = 200,
        neighborhood_size: int = 32,
        tenure: int = 32,
        seed=None,
        compiled: CompiledProblem | None = None,
        verify_interval: int = 0,
    ) -> None:
        if max_iterations < 1:
            raise ValidationError("max_iterations must be >= 1")
        if neighborhood_size < 1:
            raise ValidationError("neighborhood_size must be >= 1")
        self.evaluator = evaluator
        self.compiled = compiled or CompiledProblem.compile(
            evaluator.infrastructure, evaluator.request
        )
        self.max_iterations = int(max_iterations)
        self.neighborhood_size = int(neighborhood_size)
        self.tenure = int(tenure)
        self.verify_interval = int(verify_interval)
        self._rng = as_generator(seed)

    # ------------------------------------------------------------------
    @staticmethod
    def _iteration_event(
        iteration: int,
        moves_evaluated: int,
        accepted: bool,
        best_score: tuple[int, float],
    ) -> TabuIteration:
        return TabuIteration(
            iteration=iteration,
            moves_evaluated=moves_evaluated,
            accepted=accepted,
            best_violations=int(best_score[0]),
            best_aggregate=float(best_score[1]),
        )

    def _incremental(self, assignment: IntArray) -> IncrementalEvaluator:
        """Delta scorer configured identically to ``self.evaluator``."""
        constraints = self.evaluator.constraints
        return IncrementalEvaluator(
            self.compiled,
            assignment,
            base_usage=constraints.base_usage,
            previous_assignment=self.evaluator.migration.previous_assignment,
            downtime_mode=self.evaluator.downtime.mode,
            per_server_operating=self.evaluator.usage_cost.per_server_operating,
            include_assignment=constraints.assignment is not None,
            qos_strict=constraints.load_cap is not None,
        )

    def run(self, initial: IntArray) -> TabuSearchResult:
        """Search from ``initial``; returns the best placement visited."""
        n = self.evaluator.request.n
        m = self.evaluator.infrastructure.m
        current = np.asarray(initial, dtype=np.int64).copy()
        if current.shape != (n,):
            raise ValidationError(
                f"initial assignment shape {current.shape}, expected ({n},)"
            )

        stopwatch = Stopwatch().start()
        tabu = TabuList(tenure=self.tenure)
        bus = get_bus()

        state = self._incremental(current)
        current_score = (state.violations, state.aggregate())
        evaluations = 1
        best = current.copy()
        best_score = current_score

        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            vms = self._rng.integers(0, n, size=self.neighborhood_size)
            servers = self._rng.integers(0, m, size=self.neighborhood_size)
            # Candidate relocations, skipping no-op moves.
            moves = [
                (int(vm), int(srv))
                for vm, srv in zip(vms, servers)
                if srv != state.assignment[vm]
            ]
            best_move = None
            best_move_score = None
            for vm, srv in moves:
                candidate = state.score_move(vm, srv)
                evaluations += 1
                score = (candidate.violations, candidate.aggregate())
                # Short-term memory forbids the candidate move itself;
                # aspiration admits it anyway when it would beat the
                # global best.
                if (vm, srv) in tabu and score >= best_score:
                    continue
                if best_move_score is None or score < best_move_score:
                    best_move = (vm, srv)
                    best_move_score = score
            if best_move is None:
                if bus.enabled:
                    bus.emit(
                        self._iteration_event(
                            iterations, len(moves), False, best_score
                        )
                    )
                continue
            vm, srv = best_move
            old = int(state.assignment[vm])
            state.apply_move(vm, srv)
            tabu.add(vm, old)
            current_score = best_move_score
            if current_score < best_score:
                best_score = current_score
                best = state.assignment.copy()
            if self.verify_interval and iterations % self.verify_interval == 0:
                state.verify()
            if bus.enabled:
                bus.emit(
                    self._iteration_event(
                        iterations, len(moves), True, best_score
                    )
                )

        stopwatch.stop()
        state.flush_telemetry()
        registry = get_registry()
        registry.count("tabu.search.iterations", iterations)
        registry.count("tabu.search.evaluations", evaluations)
        registry.observe("tabu.search.seconds", stopwatch.elapsed)
        # One full evaluation of the winner — objectives and violations
        # in a single pass (the usage scatter is shared, see assess()).
        final_objectives, final_violations = self.evaluator.assess(best)
        evaluations += 1
        return TabuSearchResult(
            assignment=best,
            objectives=final_objectives.as_array(),
            violations=int(final_violations),
            iterations=iterations,
            evaluations=evaluations,
            elapsed=stopwatch.elapsed,
        )
