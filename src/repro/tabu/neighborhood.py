"""Neighbour search for the tabu repair (the paper's Fig. 6).

``findNeighbor(I, i)`` scans servers and returns the first one where
re-hosting VM i is a *valid allocation*: the server has room for the
VM's demand on every attribute, and the move does not break any
affinity/anti-affinity group the VM belongs to.  The scan is vectorized
— one boolean mask over all m servers per query — and a
:class:`TabuList` removes recently vacated (vm, server) pairs from the
candidate set so repeated repairs do not cycle.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.errors import ValidationError
from repro.model.infrastructure import Infrastructure
from repro.model.request import Request
from repro.types import BoolArray, FloatArray, IntArray, PlacementRule

__all__ = ["TabuList", "NeighborFinder"]


class TabuList:
    """Fixed-capacity memory of forbidden (vm, server) moves.

    The classic short-term tabu memory (Glover 1986): when VM k leaves
    server j during repair, (k, j) becomes tabu for ``tenure``
    insertions, preventing the walk from immediately undoing itself.
    """

    def __init__(self, tenure: int = 64) -> None:
        if tenure < 0:
            raise ValidationError(f"tenure must be >= 0, got {tenure}")
        self.tenure = int(tenure)
        self._entries: OrderedDict[tuple[int, int], None] = OrderedDict()
        # Per-VM index so findNeighbor's hot path is O(|tabu for vm|),
        # not O(tenure) — this was the profiler's top line otherwise.
        self._by_vm: dict[int, set[int]] = {}

    def add(self, vm: int, server: int) -> None:
        """Forbid moving ``vm`` back onto ``server`` for a while."""
        if self.tenure == 0:
            return
        vm, server = int(vm), int(server)
        key = (vm, server)
        self._entries.pop(key, None)
        self._entries[key] = None
        self._by_vm.setdefault(vm, set()).add(server)
        while len(self._entries) > self.tenure:
            (old_vm, old_server), _ = self._entries.popitem(last=False)
            servers = self._by_vm.get(old_vm)
            if servers is not None:
                servers.discard(old_server)
                if not servers:
                    del self._by_vm[old_vm]

    def __contains__(self, key: tuple[int, int]) -> bool:
        return (int(key[0]), int(key[1])) in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def forbidden_servers(self, vm: int) -> set[int]:
        """All servers currently tabu for ``vm`` (do not mutate)."""
        return self._by_vm.get(int(vm), _EMPTY_SET)

    def clear(self) -> None:
        """Drop all memory (between individuals)."""
        self._entries.clear()
        self._by_vm.clear()


_EMPTY_SET: frozenset = frozenset()


class NeighborFinder:
    """Vectorized ``isValidAllocation`` over all servers at once.

    Parameters
    ----------
    infrastructure, request:
        The problem instance.
    base_usage:
        Committed usage from earlier windows (shrinks free capacity).
    compiled:
        Optional :class:`~repro.engine.CompiledProblem` of the same
        instance; when given, its effective-capacity matrix and per-VM
        group index are reused instead of recomputed.
    """

    def __init__(
        self,
        infrastructure: Infrastructure,
        request: Request,
        base_usage: FloatArray | None = None,
        compiled=None,
    ) -> None:
        self.infrastructure = infrastructure
        self.request = request
        limit = (
            compiled.effective_capacity
            if compiled is not None
            else infrastructure.effective_capacity
        )
        if base_usage is not None:
            limit = limit - np.asarray(base_usage, dtype=np.float64)
        self.limit = limit
        # Group membership index: for each VM, the groups it belongs to.
        if compiled is not None:
            self._groups_of_vm: list[list[int]] = [
                list(ids) for ids in compiled.member_groups
            ]
        else:
            self._groups_of_vm = [[] for _ in range(request.n)]
            for gi, group in enumerate(request.groups):
                for member in group.members:
                    self._groups_of_vm[member].append(gi)
        self._no_groups_mask = np.ones(infrastructure.m, dtype=bool)
        self._no_groups_mask.setflags(write=False)

    # ------------------------------------------------------------------
    def capacity_mask(
        self, usage: FloatArray, assignment: IntArray, vm: int
    ) -> BoolArray:
        """Servers that can absorb ``vm`` given current ``usage``.

        ``usage`` must reflect ``assignment`` *including* the VM's
        current placement; the VM's own demand is credited back to its
        current host before testing.
        """
        demand = self.request.demand[vm]
        residual = self.limit - usage
        current = int(assignment[vm])
        if current >= 0:
            residual = residual.copy()
            residual[current] += demand
        return np.all(residual >= demand - 1e-9, axis=1)

    def affinity_mask(self, assignment: IntArray, vm: int) -> BoolArray:
        """Servers where hosting ``vm`` violates none of its groups.

        Other members are taken at their *current* positions; the mask
        is therefore the constraint-graph view the repair walks, one VM
        at a time.
        """
        groups = self._groups_of_vm[vm]
        if not groups:
            return self._no_groups_mask
        infra = self.infrastructure
        mask = np.ones(infra.m, dtype=bool)
        dc_of = infra.server_datacenter
        for gi in groups:
            group = self.request.groups[gi]
            placed = [
                int(assignment[k])
                for k in group.members
                if k != vm and assignment[k] >= 0
            ]
            if not placed:
                continue
            rule = group.rule
            if rule is PlacementRule.SAME_SERVER:
                # Any current member server is progress: joining one
                # strictly reduces the distinct-location count, and the
                # capacity mask steers the group toward a member server
                # that actually has room.
                allowed = np.zeros(infra.m, dtype=bool)
                allowed[placed] = True
                mask &= allowed
            elif rule is PlacementRule.SAME_DATACENTER:
                allowed = np.zeros(infra.g, dtype=bool)
                allowed[dc_of[placed]] = True
                mask &= allowed[dc_of]
            elif rule is PlacementRule.DIFFERENT_SERVERS:
                mask[placed] = False
            elif rule is PlacementRule.DIFFERENT_DATACENTERS:
                used = np.zeros(infra.g, dtype=bool)
                used[dc_of[placed]] = True
                mask &= ~used[dc_of]
        return mask

    # ------------------------------------------------------------------
    def find(
        self,
        usage: FloatArray,
        assignment: IntArray,
        vm: int,
        tabu: TabuList | None = None,
        order: str = "first",
        rng: np.random.Generator | None = None,
    ) -> int | None:
        """The Fig. 6 scan: the first (or best) valid server for ``vm``.

        Parameters
        ----------
        order:
            ``"first"`` — lowest server id (the paper's literal loop);
            ``"best_fit"`` — the valid server with the least residual
            headroom after the move (tighter packing);
            ``"random"`` — a uniformly random valid server.

        Returns
        -------
        A server id, or None when no valid allocation exists
        (``findNeighbor`` falls through its loop).
        """
        valid = self.capacity_mask(usage, assignment, vm)
        valid &= self.affinity_mask(assignment, vm)
        current = int(assignment[vm])
        if current >= 0:
            valid[current] = False
        if tabu is not None:
            for server in tabu.forbidden_servers(vm):
                valid[server] = False
        candidates = np.flatnonzero(valid)
        if candidates.size == 0:
            return None
        if order == "first":
            return int(candidates[0])
        if order == "best_fit":
            demand = self.request.demand[vm]
            headroom = (self.limit - usage)[candidates] - demand
            slack = headroom.sum(axis=1)
            return int(candidates[np.argmin(slack)])
        if order == "random":
            gen = rng if rng is not None else np.random.default_rng()
            return int(gen.choice(candidates))
        raise ValidationError(
            f"order must be 'first', 'best_fit' or 'random', got {order!r}"
        )
