"""Exception hierarchy for the :mod:`repro` library.

All library-specific failures derive from :class:`ReproError` so callers
can catch a single base class.  Errors are deliberately fine-grained:
model-construction problems, solver failures and infeasibility are
distinct conditions that downstream schedulers handle differently
(infeasibility means *reject the request*, a solver failure means
*retry or fall back*).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ModelError",
    "DimensionError",
    "ValidationError",
    "TopologyError",
    "ConstraintError",
    "UnknownRuleError",
    "SolverError",
    "InfeasibleError",
    "SolverTimeoutError",
    "EncodingError",
    "SchedulerError",
    "CheckpointError",
]


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ModelError(ReproError):
    """A cloud-model object (infrastructure, request, placement) is invalid."""


class DimensionError(ModelError):
    """Matrix/vector dimensions disagree with the model sizes (g, m, n, h)."""


class ValidationError(ModelError):
    """A scalar argument or array content is out of its documented range."""


class TopologyError(ReproError):
    """The physical network topology is malformed (e.g. an unconnected leaf)."""


class ConstraintError(ReproError):
    """A constraint definition is inconsistent with the model."""


class UnknownRuleError(ConstraintError):
    """An affinity/anti-affinity rule name is not one of the four paper rules."""


class SolverError(ReproError):
    """An allocation algorithm failed for a reason other than infeasibility."""


class InfeasibleError(SolverError):
    """No placement satisfying the request constraints exists (request rejected)."""


class SolverTimeoutError(SolverError):
    """The solver exceeded its time budget before proving anything."""


class EncodingError(ReproError):
    """A genome/placement encoding round-trip is impossible or inconsistent."""


class SchedulerError(ReproError):
    """The time-window scheduler was driven into an invalid state."""


class CheckpointError(ReproError):
    """A run checkpoint is corrupt, stale, or incompatible with the run."""
