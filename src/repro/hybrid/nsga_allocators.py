"""NSGA-based allocators behind the uniform :class:`Allocator` interface.

Each allocator merges the window into one instance, builds the
appropriate constraint handler, runs the engine for the configured
evaluation budget (Table III defaults) and returns the paper's
single-solution pick (feasible individual closest to the normalized
ideal point, else the least-violating one).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.allocator import Allocator, AnytimeRun, BatchOutcome
from repro.cp.search import SearchLimits
from repro.cp.solver import CPSolver
from repro.ea.config import NSGAConfig
from repro.ea.constraint_handling import (
    ConstraintHandler,
    NoHandling,
    RepairHandling,
)
from repro.ea.nsga2 import NSGA2
from repro.ea.nsga3 import NSGA3
from repro.engine.parallel import ChunkedPopulationEvaluator, ParallelEngine
from repro.model.infrastructure import Infrastructure
from repro.model.request import Request
from repro.tabu.repair import TabuRepair
from repro.types import AlgorithmKind, FloatArray, IntArray

__all__ = [
    "NSGA2Allocator",
    "NSGA3Allocator",
    "NSGA3TabuAllocator",
    "NSGA3CPAllocator",
]


class _NSGAAnytimeRun(AnytimeRun):
    """Generation-granular anytime EA solve.

    Wraps an :class:`~repro.ea.nsga_base.EngineRun`: one work unit =
    one generation, the incumbent is the population's paper pick
    (feasible-closest-to-ideal, else least-violating) and
    :meth:`best_front` is the population's true feasible front rather
    than the one-point default.  The final :meth:`finish` replays the
    blocking path's tail — post-process hook, then uniform
    :meth:`Allocator.finalize` — so driving the run to exhaustion is
    byte-identical to :meth:`Allocator.allocate`.
    """

    def __init__(
        self,
        allocator: "_NSGAAllocatorBase",
        infrastructure: Infrastructure,
        requests: Sequence[Request],
        base_usage: FloatArray | None = None,
        previous_assignment: IntArray | None = None,
    ) -> None:
        merged, owner = Allocator.merge_requests(requests)
        super().__init__(
            allocator,
            infrastructure,
            merged,
            owner,
            base_usage=base_usage,
            previous_assignment=previous_assignment,
        )
        evaluator = self.compiled.evaluator(
            base_usage=base_usage,
            previous_assignment=previous_assignment,
            include_assignment_constraint=False,
            energy_weight=allocator.config.energy_weight,
        )
        execution_engine = allocator._ensure_execution_engine()
        if (
            execution_engine is not None
            and allocator.config.parallel_eval_min_pop is not None
        ):
            evaluator = ChunkedPopulationEvaluator(
                evaluator,
                execution_engine,
                self.compiled,
                min_rows=allocator.config.parallel_eval_min_pop,
                base_usage=base_usage,
                previous_assignment=previous_assignment,
                include_assignment_constraint=False,
                energy_weight=allocator.config.energy_weight,
            )
        self.engine = allocator._build_engine(
            infrastructure, merged, base_usage, self.compiled
        )
        self.run = self.engine.start_run(
            evaluator,
            checkpoint_manager=allocator.checkpoint_manager,
            fingerprint=self.compiled.fingerprint,
        )

    def step(self, budget: int = 1) -> bool:
        alive = self.run.step(budget)
        self.evaluations = self.run.evaluations
        return alive

    def best_solution(self) -> IntArray:
        return self.run.best_genome()

    def best_front(self) -> FloatArray:
        _, objectives = self.run.front()
        if objectives.shape[0] > 0:
            return objectives
        return super().best_front()

    def front(self) -> tuple[IntArray, FloatArray]:
        """(genomes, objectives) of the feasible nondominated set."""
        return self.run.front()

    def inject(
        self,
        genomes: IntArray,
        objectives: FloatArray,
        violations: IntArray,
    ) -> int:
        """Replace the population's worst rows with pooled incumbents."""
        return self.run.inject(genomes, objectives, violations)

    def set_deadline(self, deadline: float) -> None:
        self.run.set_deadline(deadline)

    def _finalize(self) -> BatchOutcome:
        result = self.run.result()
        allocator: _NSGAAllocatorBase = self.allocator
        assignment = allocator._post_process(
            result.best_genome(),
            self.infrastructure,
            self.merged,
            self.base_usage,
            self.compiled,
        )
        extra = {"generations": len(result.history)}
        handler = getattr(self.engine, "handler", None)
        if isinstance(handler, RepairHandling):
            extra["repair_calls"] = handler.repair_calls
        if result.resumed_from is not None:
            extra["resumed_from"] = result.resumed_from
        if result.interrupted:
            extra["interrupted"] = True
        return allocator.finalize(
            self.infrastructure,
            self.merged,
            self.owner,
            assignment,
            elapsed=self.stopwatch.stop(),
            base_usage=self.base_usage,
            previous_assignment=self.previous_assignment,
            evaluations=result.evaluations,
            extra=extra,
            compiled=self.compiled,
        )


class _NSGAAllocatorBase(Allocator):
    """Shared run loop for the four evolutionary allocators."""

    def __init__(self, config: NSGAConfig | None = None) -> None:
        self.config = config or NSGAConfig()
        self.energy_weight = self.config.energy_weight

    def _ensure_execution_engine(self) -> ParallelEngine | None:
        """The allocator's parallel engine, or ``None`` for serial runs.

        An engine injected from outside (e.g. by the scheduler, shared
        across windows) wins; otherwise one is created lazily when the
        config asks for workers.  The engine — and its worker pool —
        persists across ``allocate`` calls until :meth:`close`.
        """
        engine = self.execution_engine
        if engine is None and self.config.n_workers >= 1:
            engine = self.execution_engine = ParallelEngine(self.config.n_workers)
        return engine

    # Subclasses build the engine (and its handler) per instance,
    # because repair handlers need the concrete (infrastructure,
    # request, base_usage) triple.  ``compiled`` is the cached
    # compilation of the merged instance; repair engines share it so a
    # whole run compiles the instance exactly once.
    def _build_engine(
        self,
        infrastructure: Infrastructure,
        merged: Request,
        base_usage: FloatArray | None,
        compiled=None,
    ):
        raise NotImplementedError

    def _post_process(
        self,
        assignment: IntArray,
        infrastructure: Infrastructure,
        merged: Request,
        base_usage: FloatArray | None,
        compiled=None,
    ) -> IntArray:
        """Hook over the chosen solution before reporting (identity by
        default; the tabu hybrid applies one final repair pass here)."""
        return assignment

    def start(
        self,
        infrastructure: Infrastructure,
        requests: Sequence[Request],
        base_usage: FloatArray | None = None,
        previous_assignment: IntArray | None = None,
    ) -> _NSGAAnytimeRun:
        """Begin a generation-granular anytime solve."""
        return _NSGAAnytimeRun(
            self,
            infrastructure,
            requests,
            base_usage=base_usage,
            previous_assignment=previous_assignment,
        )

    def allocate(
        self,
        infrastructure: Infrastructure,
        requests: Sequence[Request],
        base_usage: FloatArray | None = None,
        previous_assignment: IntArray | None = None,
    ) -> BatchOutcome:
        """Run the configured NSGA variant; see :meth:`Allocator.allocate`."""
        run = self.start(
            infrastructure,
            requests,
            base_usage=base_usage,
            previous_assignment=previous_assignment,
        )
        while run.step():
            pass
        return run.finish()


class NSGA2Allocator(_NSGAAllocatorBase):
    """Unmodified NSGA-II: fast, but emits constraint-violating
    placements (Figure 10)."""

    name = "nsga2"
    kind = AlgorithmKind.NSGA2

    def _build_engine(self, infrastructure, merged, base_usage, compiled=None):
        return NSGA2(config=self.config, handler=NoHandling())


class NSGA3Allocator(_NSGAAllocatorBase):
    """Unmodified NSGA-III: same violation weakness, better spread."""

    name = "nsga3"
    kind = AlgorithmKind.NSGA3

    def _build_engine(self, infrastructure, merged, base_usage, compiled=None):
        return NSGA3(config=self.config, handler=NoHandling())


class NSGA3TabuAllocator(_NSGAAllocatorBase):
    """**The paper's proposed algorithm**: NSGA-III + tabu-search repair.

    Parameters
    ----------
    config:
        EA settings (Table III defaults).
    repair_rounds, tenure, order:
        Tabu repair knobs (see :class:`~repro.tabu.repair.TabuRepair`).
    """

    name = "nsga3_tabu"
    kind = AlgorithmKind.NSGA3_TABU

    def __init__(
        self,
        config: NSGAConfig | None = None,
        repair_rounds: int = 4,
        tenure: int = 64,
        order: str = "first",
    ) -> None:
        super().__init__(config)
        self.repair_rounds = repair_rounds
        self.tenure = tenure
        self.order = order

    def _build_engine(self, infrastructure, merged, base_usage, compiled=None):
        repair = TabuRepair(
            infrastructure,
            merged,
            base_usage=base_usage,
            max_rounds=self.repair_rounds,
            tenure=self.tenure,
            order=self.order,
            seed=self.config.seed,
            compiled=compiled,
            engine=self._ensure_execution_engine(),
        )
        return NSGA3(config=self.config, handler=RepairHandling(repair))

    def _post_process(self, assignment, infrastructure, merged, base_usage, compiled=None):
        # One deeper repair pass on the selected solution: under
        # reduced evaluation budgets large instances can end with a few
        # residual violations that a longer tabu walk removes cheaply.
        repair = TabuRepair(
            infrastructure,
            merged,
            base_usage=base_usage,
            max_rounds=max(32, 4 * self.repair_rounds),
            tenure=self.tenure,
            order=self.order,
            seed=self.config.seed,
            compiled=compiled,
        )
        return repair.repair_genome(assignment)


class NSGA3CPAllocator(_NSGAAllocatorBase):
    """NSGA-III with the constraint-solver repair (the weaker hybrid the
    paper also evaluates).

    Each infeasible genome is handed to a budgeted CP search seeded
    with its current genes; when the search fails within budget the
    genome passes through unrepaired — reproducing the "too weak to
    repair genes and individuals" behaviour.
    """

    name = "nsga3_cp"
    kind = AlgorithmKind.NSGA3_CONSTRAINT_SOLVER

    def __init__(
        self,
        config: NSGAConfig | None = None,
        repair_limits: SearchLimits | None = None,
    ) -> None:
        super().__init__(config)
        self.repair_limits = repair_limits or SearchLimits(
            max_nodes=2_000, time_limit=0.25
        )

    def _build_engine(self, infrastructure, merged, base_usage, compiled=None):
        solver = CPSolver(
            infrastructure,
            merged,
            base_usage=base_usage,
            limits=self.repair_limits,
            compiled=compiled,
        )
        return NSGA3(config=self.config, handler=RepairHandling(solver.repair_population))
