"""NSGA-based allocators behind the uniform :class:`Allocator` interface.

Each allocator merges the window into one instance, builds the
appropriate constraint handler, runs the engine for the configured
evaluation budget (Table III defaults) and returns the paper's
single-solution pick (feasible individual closest to the normalized
ideal point, else the least-violating one).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.allocator import Allocator, BatchOutcome
from repro.cp.search import SearchLimits
from repro.cp.solver import CPSolver
from repro.ea.config import NSGAConfig
from repro.ea.constraint_handling import (
    ConstraintHandler,
    NoHandling,
    RepairHandling,
)
from repro.ea.nsga2 import NSGA2
from repro.ea.nsga3 import NSGA3
from repro.engine.parallel import ChunkedPopulationEvaluator, ParallelEngine
from repro.model.infrastructure import Infrastructure
from repro.model.request import Request
from repro.tabu.repair import TabuRepair
from repro.types import AlgorithmKind, FloatArray, IntArray
from repro.utils.timers import Stopwatch

__all__ = [
    "NSGA2Allocator",
    "NSGA3Allocator",
    "NSGA3TabuAllocator",
    "NSGA3CPAllocator",
]


class _NSGAAllocatorBase(Allocator):
    """Shared run loop for the four evolutionary allocators."""

    def __init__(self, config: NSGAConfig | None = None) -> None:
        self.config = config or NSGAConfig()

    def _ensure_execution_engine(self) -> ParallelEngine | None:
        """The allocator's parallel engine, or ``None`` for serial runs.

        An engine injected from outside (e.g. by the scheduler, shared
        across windows) wins; otherwise one is created lazily when the
        config asks for workers.  The engine — and its worker pool —
        persists across ``allocate`` calls until :meth:`close`.
        """
        engine = self.execution_engine
        if engine is None and self.config.n_workers >= 1:
            engine = self.execution_engine = ParallelEngine(self.config.n_workers)
        return engine

    # Subclasses build the engine (and its handler) per instance,
    # because repair handlers need the concrete (infrastructure,
    # request, base_usage) triple.  ``compiled`` is the cached
    # compilation of the merged instance; repair engines share it so a
    # whole run compiles the instance exactly once.
    def _build_engine(
        self,
        infrastructure: Infrastructure,
        merged: Request,
        base_usage: FloatArray | None,
        compiled=None,
    ):
        raise NotImplementedError

    def _post_process(
        self,
        assignment: IntArray,
        infrastructure: Infrastructure,
        merged: Request,
        base_usage: FloatArray | None,
        compiled=None,
    ) -> IntArray:
        """Hook over the chosen solution before reporting (identity by
        default; the tabu hybrid applies one final repair pass here)."""
        return assignment

    def allocate(
        self,
        infrastructure: Infrastructure,
        requests: Sequence[Request],
        base_usage: FloatArray | None = None,
        previous_assignment: IntArray | None = None,
    ) -> BatchOutcome:
        """Run the configured NSGA variant; see :meth:`Allocator.allocate`."""
        merged, owner = self.merge_requests(requests)
        stopwatch = Stopwatch().start()

        compiled = self.compile_problem(infrastructure, merged)
        evaluator = compiled.evaluator(
            base_usage=base_usage,
            previous_assignment=previous_assignment,
            include_assignment_constraint=False,
        )
        execution_engine = self._ensure_execution_engine()
        if (
            execution_engine is not None
            and self.config.parallel_eval_min_pop is not None
        ):
            evaluator = ChunkedPopulationEvaluator(
                evaluator,
                execution_engine,
                compiled,
                min_rows=self.config.parallel_eval_min_pop,
                base_usage=base_usage,
                previous_assignment=previous_assignment,
                include_assignment_constraint=False,
            )
        engine = self._build_engine(infrastructure, merged, base_usage, compiled)
        result = engine.run(
            evaluator,
            checkpoint_manager=self.checkpoint_manager,
            fingerprint=compiled.fingerprint,
        )
        assignment = self._post_process(
            result.best_genome(), infrastructure, merged, base_usage, compiled
        )

        stopwatch.stop()
        extra = {"generations": len(result.history)}
        handler = getattr(engine, "handler", None)
        if isinstance(handler, RepairHandling):
            extra["repair_calls"] = handler.repair_calls
        if result.resumed_from is not None:
            extra["resumed_from"] = result.resumed_from
        if result.interrupted:
            extra["interrupted"] = True
        return self.finalize(
            infrastructure,
            merged,
            owner,
            assignment,
            elapsed=stopwatch.elapsed,
            base_usage=base_usage,
            previous_assignment=previous_assignment,
            evaluations=result.evaluations,
            extra=extra,
            compiled=compiled,
        )


class NSGA2Allocator(_NSGAAllocatorBase):
    """Unmodified NSGA-II: fast, but emits constraint-violating
    placements (Figure 10)."""

    name = "nsga2"
    kind = AlgorithmKind.NSGA2

    def _build_engine(self, infrastructure, merged, base_usage, compiled=None):
        return NSGA2(config=self.config, handler=NoHandling())


class NSGA3Allocator(_NSGAAllocatorBase):
    """Unmodified NSGA-III: same violation weakness, better spread."""

    name = "nsga3"
    kind = AlgorithmKind.NSGA3

    def _build_engine(self, infrastructure, merged, base_usage, compiled=None):
        return NSGA3(config=self.config, handler=NoHandling())


class NSGA3TabuAllocator(_NSGAAllocatorBase):
    """**The paper's proposed algorithm**: NSGA-III + tabu-search repair.

    Parameters
    ----------
    config:
        EA settings (Table III defaults).
    repair_rounds, tenure, order:
        Tabu repair knobs (see :class:`~repro.tabu.repair.TabuRepair`).
    """

    name = "nsga3_tabu"
    kind = AlgorithmKind.NSGA3_TABU

    def __init__(
        self,
        config: NSGAConfig | None = None,
        repair_rounds: int = 4,
        tenure: int = 64,
        order: str = "first",
    ) -> None:
        super().__init__(config)
        self.repair_rounds = repair_rounds
        self.tenure = tenure
        self.order = order

    def _build_engine(self, infrastructure, merged, base_usage, compiled=None):
        repair = TabuRepair(
            infrastructure,
            merged,
            base_usage=base_usage,
            max_rounds=self.repair_rounds,
            tenure=self.tenure,
            order=self.order,
            seed=self.config.seed,
            compiled=compiled,
            engine=self._ensure_execution_engine(),
        )
        return NSGA3(config=self.config, handler=RepairHandling(repair))

    def _post_process(self, assignment, infrastructure, merged, base_usage, compiled=None):
        # One deeper repair pass on the selected solution: under
        # reduced evaluation budgets large instances can end with a few
        # residual violations that a longer tabu walk removes cheaply.
        repair = TabuRepair(
            infrastructure,
            merged,
            base_usage=base_usage,
            max_rounds=max(32, 4 * self.repair_rounds),
            tenure=self.tenure,
            order=self.order,
            seed=self.config.seed,
            compiled=compiled,
        )
        return repair.repair_genome(assignment)


class NSGA3CPAllocator(_NSGAAllocatorBase):
    """NSGA-III with the constraint-solver repair (the weaker hybrid the
    paper also evaluates).

    Each infeasible genome is handed to a budgeted CP search seeded
    with its current genes; when the search fails within budget the
    genome passes through unrepaired — reproducing the "too weak to
    repair genes and individuals" behaviour.
    """

    name = "nsga3_cp"
    kind = AlgorithmKind.NSGA3_CONSTRAINT_SOLVER

    def __init__(
        self,
        config: NSGAConfig | None = None,
        repair_limits: SearchLimits | None = None,
    ) -> None:
        super().__init__(config)
        self.repair_limits = repair_limits or SearchLimits(
            max_nodes=2_000, time_limit=0.25
        )

    def _build_engine(self, infrastructure, merged, base_usage, compiled=None):
        solver = CPSolver(
            infrastructure,
            merged,
            base_usage=base_usage,
            limits=self.repair_limits,
            compiled=compiled,
        )
        return NSGA3(config=self.config, handler=RepairHandling(solver.repair_population))
