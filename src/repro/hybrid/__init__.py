"""Evolutionary allocators: the paper's contribution and its EA baselines.

* :class:`NSGA2Allocator`, :class:`NSGA3Allocator` — the *unmodified*
  evolutionary baselines (constraints ignored; Figure 10's violators).
* :class:`NSGA3TabuAllocator` — **the proposed algorithm**: NSGA-III
  whose infeasible individuals are repaired by the tabu search of
  Figures 4-6.
* :class:`NSGA3CPAllocator` — NSGA-III with the constraint-solver
  repair ("NSGA with constraint solver" in the comparison).

All wrap the same engine (:mod:`repro.ea`) with different constraint
handlers, and optimize the whole window as one merged instance — the
paper's "directly include all requests within a cyclic time window
during the execution of the allocation optimization process".
"""

from repro.hybrid.nsga_allocators import (
    NSGA2Allocator,
    NSGA3Allocator,
    NSGA3CPAllocator,
    NSGA3TabuAllocator,
)

__all__ = [
    "NSGA2Allocator",
    "NSGA3Allocator",
    "NSGA3TabuAllocator",
    "NSGA3CPAllocator",
]
