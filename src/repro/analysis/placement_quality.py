"""Quality metrics over one placement.

All functions take the flat genome plus the instance matrices, and are
deliberately cheap (one scatter-add) so they can run per window inside
a live scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DimensionError
from repro.model.infrastructure import Infrastructure
from repro.model.placement import UNPLACED
from repro.model.request import Request
from repro.objectives.qos import loads_from_usage
from repro.types import FloatArray, IntArray
from repro.utils.scatter import scatter_rows

__all__ = [
    "datacenter_utilization",
    "fragmentation",
    "qos_headroom",
    "PlacementReport",
    "placement_report",
]


def _usage(
    assignment: IntArray, infrastructure: Infrastructure, demand: FloatArray
) -> FloatArray:
    assignment = np.asarray(assignment, dtype=np.int64)
    demand = np.asarray(demand, dtype=np.float64)
    if demand.shape[0] != assignment.shape[0]:
        raise DimensionError(
            f"demand rows {demand.shape[0]} != genome length {assignment.shape[0]}"
        )
    mask = assignment != UNPLACED
    return scatter_rows(assignment[mask], demand[mask], infrastructure.m)


def datacenter_utilization(
    assignment: IntArray,
    infrastructure: Infrastructure,
    demand: FloatArray,
) -> tuple[FloatArray, float]:
    """Per-datacenter utilization and the imbalance coefficient.

    Returns
    -------
    utilization:
        (g, h) matrix — placed demand over effective capacity per
        datacenter and attribute.
    imbalance:
        Max-over-attributes of (max_dc - min_dc) utilization; 0 is a
        perfectly balanced estate.
    """
    usage = _usage(assignment, infrastructure, demand)
    g = infrastructure.g
    dc_usage = scatter_rows(infrastructure.server_datacenter, usage, g)
    dc_capacity = scatter_rows(
        infrastructure.server_datacenter, infrastructure.effective_capacity, g
    )
    safe = np.where(dc_capacity > 0, dc_capacity, 1.0)
    utilization = dc_usage / safe
    imbalance = float((utilization.max(axis=0) - utilization.min(axis=0)).max())
    return utilization, imbalance


def fragmentation(
    assignment: IntArray,
    infrastructure: Infrastructure,
    demand: FloatArray,
    reference_demand: FloatArray | None = None,
) -> float:
    """Stranded-capacity fraction.

    Free capacity on a server is *stranded* when the server cannot fit
    one more ``reference_demand`` VM (default: the mean demand row):
    individually too small to be useful, collectively it looks like
    room.  Returns stranded free capacity / total free capacity, in
    [0, 1]; 0 means every free chunk is still usable.
    """
    demand = np.asarray(demand, dtype=np.float64)
    usage = _usage(assignment, infrastructure, demand)
    free = np.maximum(0.0, infrastructure.effective_capacity - usage)
    if reference_demand is None:
        reference_demand = demand.mean(axis=0)
    reference_demand = np.asarray(reference_demand, dtype=np.float64)
    fits = np.all(free >= reference_demand[None, :], axis=1)
    total_free = free.sum()
    if total_free <= 0:
        return 0.0
    stranded = free[~fits].sum()
    return float(stranded / total_free)


def qos_headroom(
    assignment: IntArray,
    infrastructure: Infrastructure,
    request: Request,
) -> FloatArray:
    """Per-server distance to the QoS knee: ``LM - L`` (min over
    attributes).  Negative values mean the server already operates in
    the degradation regime of Eq. 24."""
    usage = _usage(assignment, infrastructure, request.demand)
    load = loads_from_usage(usage, infrastructure.capacity)
    return (infrastructure.max_load - load).min(axis=1)


@dataclass(frozen=True)
class PlacementReport:
    """Bundle of the quality metrics for one placement."""

    datacenter_utilization: FloatArray
    imbalance: float
    fragmentation: float
    min_qos_headroom: float
    servers_past_knee: int
    unplaced: int


def placement_report(
    assignment: IntArray,
    infrastructure: Infrastructure,
    request: Request,
) -> PlacementReport:
    """Compute every quality metric at once."""
    assignment = np.asarray(assignment, dtype=np.int64)
    utilization, imbalance = datacenter_utilization(
        assignment, infrastructure, request.demand
    )
    headroom = qos_headroom(assignment, infrastructure, request)
    return PlacementReport(
        datacenter_utilization=utilization,
        imbalance=imbalance,
        fragmentation=fragmentation(assignment, infrastructure, request.demand),
        min_qos_headroom=float(headroom.min()),
        servers_past_knee=int(np.count_nonzero(headroom < 0)),
        unplaced=int(np.count_nonzero(assignment == UNPLACED)),
    )
