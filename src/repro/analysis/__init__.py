"""Placement-quality analytics.

Post-hoc views of an allocation that the four paper metrics do not
show: how evenly load spreads across datacenters, how much free
capacity is stranded in unusable fragments, and how much QoS headroom
each server retains before its Eq. 24 knee.  Operators use these to
*explain* an optimizer's choice; tests use them to assert qualitative
behaviour (best-fit fragments less, worst-fit balances more).
"""

from repro.analysis.placement_quality import (
    PlacementReport,
    datacenter_utilization,
    fragmentation,
    placement_report,
    qos_headroom,
)

__all__ = [
    "PlacementReport",
    "datacenter_utilization",
    "fragmentation",
    "qos_headroom",
    "placement_report",
]
