"""CompiledProblem: the once-per-(infrastructure, request) compilation.

The hybrid spends its whole budget re-evaluating placements, yet every
layer of the stack used to recompile the same instance facts from
scratch — the effective-capacity matrix, one constraint object per
placement group, the per-VM group membership index, the cost
coefficient vectors.  :class:`CompiledProblem` hoists all of that into
one immutable object built exactly once per instance and shared by the
tabu repair, the NSGA allocators, the CP search and the scheduler
(via :class:`~repro.engine.cache.ProblemCache`).

Only *static* facts live here: anything that changes between windows
(committed base usage, the previous assignment X^t) is a cheap binding
applied by :meth:`CompiledProblem.constraint_set` /
:meth:`CompiledProblem.evaluator`, so one compilation serves every
window that sees the same (infrastructure, request) pair.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.constraints.base import Constraint
from repro.constraints.registry import ConstraintSet, make_group_constraint
from repro.model.infrastructure import Infrastructure
from repro.model.request import Request
from repro.objectives.energy import power_model
from repro.objectives.evaluator import PopulationEvaluator
from repro.types import FloatArray, IntArray, PlacementRule
from repro.utils.timers import Stopwatch

__all__ = ["CompiledProblem"]


def _feed(digest: "hashlib._Hash", array: np.ndarray) -> None:
    digest.update(str(array.shape).encode())
    digest.update(np.ascontiguousarray(array).tobytes())


class CompiledProblem:
    """Immutable precomputation of one allocation problem instance.

    Attributes
    ----------
    demand:
        The request's C matrix (n, h), C-contiguous.
    effective_capacity:
        ``P * F`` (m, h) — computed once instead of per consumer.
    per_resource_rate:
        ``E + U`` per server — the Eq. 22 cost coefficient vector.
    group_members:
        One int index array per placement group.
    group_rules:
        The matching :class:`PlacementRule` per group.
    member_groups:
        Per-VM tuple of group ids the VM belongs to (the CP search's
        ``groups_by_member`` index, compiled once).
    vm_group_slots:
        Per-VM tuple of ``(group_id, position)`` pairs locating the VM
        inside each of its groups' member arrays — the O(groups-of-vm)
        hook the incremental evaluator updates through.
    group_constraints:
        Prebuilt :class:`Constraint` objects, shared by every
        :class:`ConstraintSet` bound from this compilation.
    fingerprint:
        Stable content hash of the instance; the cache key.
    compile_seconds:
        Wall-clock cost of this compilation (telemetry).
    """

    __slots__ = (
        "infrastructure",
        "request",
        "n",
        "m",
        "h",
        "g",
        "p",
        "demand",
        "effective_capacity",
        "server_datacenter",
        "server_provider",
        "operating_cost",
        "usage_cost",
        "per_resource_rate",
        "idle_power",
        "dynamic_power",
        "migration_charge",
        "qos_guarantee",
        "downtime_charge",
        "group_members",
        "group_rules",
        "member_groups",
        "vm_group_slots",
        "group_constraints",
        "fingerprint",
        "compile_seconds",
    )

    def __init__(self, infrastructure: Infrastructure, request: Request) -> None:
        stopwatch = Stopwatch().start()
        self.infrastructure = infrastructure
        self.request = request
        self.n = request.n
        self.m = infrastructure.m
        self.h = infrastructure.h
        self.g = infrastructure.g

        self.p = infrastructure.p
        self.demand: FloatArray = request.demand
        self.effective_capacity: FloatArray = infrastructure.effective_capacity
        self.server_datacenter: IntArray = infrastructure.server_datacenter
        self.server_provider: IntArray = infrastructure.provider_of_server
        self.operating_cost: FloatArray = infrastructure.operating_cost
        self.usage_cost: FloatArray = infrastructure.usage_cost
        self.per_resource_rate: FloatArray = (
            infrastructure.operating_cost + infrastructure.usage_cost
        )
        # Linear-power-model price vectors for the optional energy term.
        # Derived from the cost vectors already hashed above, so the
        # fingerprint (and every cache keyed on it) is unchanged.
        self.idle_power, self.dynamic_power = power_model(infrastructure)
        self.migration_charge: FloatArray = request.migration_cost
        self.qos_guarantee: FloatArray = request.qos_guarantee
        self.downtime_charge: FloatArray = request.downtime_cost

        self.group_members: tuple[IntArray, ...] = tuple(
            np.asarray(gr.members, dtype=np.int64) for gr in request.groups
        )
        self.group_rules: tuple[PlacementRule, ...] = tuple(
            gr.rule for gr in request.groups
        )
        member_groups: list[list[int]] = [[] for _ in range(request.n)]
        vm_slots: list[list[tuple[int, int]]] = [[] for _ in range(request.n)]
        for gi, gr in enumerate(request.groups):
            for pos, member in enumerate(gr.members):
                member_groups[member].append(gi)
                vm_slots[member].append((gi, pos))
        self.member_groups: tuple[tuple[int, ...], ...] = tuple(
            tuple(ids) for ids in member_groups
        )
        self.vm_group_slots: tuple[tuple[tuple[int, int], ...], ...] = tuple(
            tuple(slots) for slots in vm_slots
        )
        self.group_constraints: tuple[Constraint, ...] = tuple(
            make_group_constraint(gr, infrastructure) for gr in request.groups
        )
        self.fingerprint = self.fingerprint_of(infrastructure, request)
        stopwatch.stop()
        self.compile_seconds = stopwatch.elapsed

    # ------------------------------------------------------------------
    @classmethod
    def compile(
        cls, infrastructure: Infrastructure, request: Request
    ) -> "CompiledProblem":
        """Compile one instance (prefer :class:`ProblemCache` for reuse)."""
        return cls(infrastructure, request)

    @staticmethod
    def fingerprint_of(infrastructure: Infrastructure, request: Request) -> str:
        """Content hash over every array that defines the instance."""
        digest = hashlib.blake2b(digest_size=16)
        for array in (
            infrastructure.capacity,
            infrastructure.capacity_factor,
            infrastructure.operating_cost,
            infrastructure.usage_cost,
            infrastructure.max_load,
            infrastructure.max_qos,
            infrastructure.server_datacenter,
            request.demand,
            request.qos_guarantee,
            request.downtime_cost,
            request.migration_cost,
        ):
            _feed(digest, array)
        digest.update("|".join(infrastructure.schema.names).encode())
        # The provider axis joins the hash only when a market actually
        # tagged servers: the default single-provider estate keeps its
        # pre-market fingerprint, so every cache keyed on it is stable.
        if infrastructure.p > 1:
            _feed(digest, infrastructure.provider_of_server)
        for group in request.groups:
            digest.update(group.rule.value.encode())
            digest.update(np.asarray(group.members, dtype=np.int64).tobytes())
        return digest.hexdigest()

    def matches(self, infrastructure: Infrastructure, request: Request) -> bool:
        """Cheap sanity check that a cache hit really is this instance.

        Guards against fingerprint collisions without re-hashing: shape
        and group-structure equality is enough to reject any accidental
        collision between structurally different instances.
        """
        return (
            self.m == infrastructure.m
            and self.h == infrastructure.h
            and self.p == infrastructure.p
            and self.n == request.n
            and len(self.group_rules) == len(request.groups)
            and all(
                rule is gr.rule and members.shape[0] == len(gr.members)
                for rule, members, gr in zip(
                    self.group_rules, self.group_members, request.groups
                )
            )
        )

    # ------------------------------------------------------------------
    # Per-window bindings: cheap array arithmetic, no per-group Python
    # loops — every expensive piece is reused from the compilation.
    # ------------------------------------------------------------------
    def constraint_set(
        self,
        *,
        base_usage: FloatArray | None = None,
        include_assignment: bool = True,
        qos_strict: bool = False,
    ) -> ConstraintSet:
        """A :class:`ConstraintSet` sharing this compilation's groups."""
        return ConstraintSet(
            self.infrastructure,
            self.request,
            base_usage=base_usage,
            include_assignment=include_assignment,
            qos_strict=qos_strict,
            prebuilt_groups=self.group_constraints,
        )

    def evaluator(
        self,
        *,
        base_usage: FloatArray | None = None,
        previous_assignment: IntArray | None = None,
        downtime_mode: str = "shortfall",
        per_server_operating: bool = False,
        include_assignment_constraint: bool = False,
        qos_strict: bool = False,
        energy_weight: float = 0.0,
    ) -> PopulationEvaluator:
        """A :class:`PopulationEvaluator` bound to per-window dynamics."""
        constraints = self.constraint_set(
            base_usage=base_usage,
            include_assignment=include_assignment_constraint,
            qos_strict=qos_strict,
        )
        return PopulationEvaluator(
            self.infrastructure,
            self.request,
            base_usage=base_usage,
            previous_assignment=previous_assignment,
            downtime_mode=downtime_mode,
            per_server_operating=per_server_operating,
            include_assignment_constraint=include_assignment_constraint,
            qos_strict=qos_strict,
            energy_weight=energy_weight,
            constraints=constraints,
        )

    def incremental(
        self,
        assignment: IntArray,
        *,
        base_usage: FloatArray | None = None,
        previous_assignment: IntArray | None = None,
        downtime_mode: str = "shortfall",
        per_server_operating: bool = False,
        include_assignment: bool = False,
        qos_strict: bool = False,
        energy_weight: float = 0.0,
    ):
        """An :class:`~repro.engine.incremental.IncrementalEvaluator`
        positioned at ``assignment``."""
        from repro.engine.incremental import IncrementalEvaluator

        return IncrementalEvaluator(
            self,
            assignment,
            base_usage=base_usage,
            previous_assignment=previous_assignment,
            downtime_mode=downtime_mode,
            per_server_operating=per_server_operating,
            include_assignment=include_assignment,
            qos_strict=qos_strict,
            energy_weight=energy_weight,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompiledProblem(n={self.n}, m={self.m}, h={self.h}, "
            f"groups={len(self.group_rules)}, fingerprint={self.fingerprint[:8]}...)"
        )
