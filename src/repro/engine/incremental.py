"""IncrementalEvaluator: O(attributes + groups-of-vm) move scoring.

The tabu layers score a single-VM relocation by re-evaluating the whole
genome — O(n·m·h) per candidate move.  But a relocation only touches
two servers, the groups the VM belongs to, and the VM's own cost terms;
everything else is unchanged.  This evaluator keeps the usage tensor,
the per-constraint violation state and the three objective components
for a *current* assignment, and exposes

* :meth:`score_move` — what (violations, objectives) *would* become if
  ``vm`` moved to ``server``, without mutating anything;
* :meth:`apply_move` — commit the move and update the state in place;
* :meth:`verify` — the escape hatch: assert bit-level violation parity
  (and tight float parity on objectives) against a from-scratch
  :class:`~repro.objectives.evaluator.PopulationEvaluator` evaluation.

The per-move cost is O(h + groups-containing-vm + residents of the two
touched servers): the capacity/knee checks are per-attribute on two
server rows, the group recounts walk only the VM's own groups, and the
downtime term re-prices only the tenants sharing a touched server.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.engine.kernels import active_kernel
from repro.errors import ValidationError
from repro.model.placement import UNPLACED
from repro.objectives.aggregate import aggregate_scalar
from repro.objectives.qos import loads_from_usage, qos_from_load
from repro.telemetry import get_registry
from repro.types import FloatArray, IntArray, PlacementRule
from repro.utils.scatter import scatter_rows, scatter_values

__all__ = [
    "CONSTRAINT_TERMS",
    "OBJECTIVE_TERMS",
    "IncrementalEvaluator",
    "MoveScore",
    "ParityDelta",
    "ParityError",
    "ParityReport",
]

_DOWNTIME_MODES = ("shortfall", "literal")

#: Constraint terms tracked by the incremental state, in report order.
CONSTRAINT_TERMS = ("capacity", "group", "load_cap", "unplaced")
#: Objective terms in canonical OBJECTIVE_ORDER naming.
OBJECTIVE_TERMS = ("usage_cost", "downtime", "migration")


class ParityError(AssertionError):
    """Raised by :meth:`IncrementalEvaluator.verify` on state drift.

    Carries the structured :class:`ParityReport` as ``report`` so
    callers (and the differential oracle) can inspect per-term deltas
    instead of parsing the message.
    """

    def __init__(self, message: str, report: "ParityReport | None" = None) -> None:
        super().__init__(message)
        self.report = report


@dataclass(frozen=True)
class ParityDelta:
    """One term's incremental-vs-reference comparison.

    ``kind`` is ``"constraint"`` (integer counts, compared exactly) or
    ``"objective"`` (floats, compared to ``rtol``/``atol``).
    """

    term: str
    kind: str
    incremental: float
    reference: float
    ok: bool

    @property
    def delta(self) -> float:
        """Signed drift (incremental minus reference)."""
        return self.incremental - self.reference


@dataclass(frozen=True)
class ParityReport:
    """Structured outcome of one :meth:`IncrementalEvaluator.verify`.

    Attributes
    ----------
    deltas:
        Per-term comparisons: the four constraint components first
        (:data:`CONSTRAINT_TERMS`), then the three objective terms
        (:data:`OBJECTIVE_TERMS`).
    rtol, atol:
        Objective tolerances the comparison used.
    """

    deltas: tuple[ParityDelta, ...]
    rtol: float
    atol: float

    @property
    def ok(self) -> bool:
        """Whether every term matched."""
        return all(d.ok for d in self.deltas)

    @property
    def mismatches(self) -> tuple[ParityDelta, ...]:
        """The terms that drifted."""
        return tuple(d for d in self.deltas if not d.ok)

    def __getitem__(self, term: str) -> ParityDelta:
        for delta in self.deltas:
            if delta.term == term:
                return delta
        raise KeyError(term)

    def format(self) -> str:
        """One line per term; drifted terms flagged with ``MISMATCH``."""
        lines = []
        for d in self.deltas:
            flag = "ok      " if d.ok else "MISMATCH"
            lines.append(
                f"{flag} {d.kind:<10} {d.term:<10} "
                f"incremental={d.incremental:.12g} reference={d.reference:.12g} "
                f"delta={d.delta:+.3g}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class MoveScore:
    """Post-move totals of one (candidate or applied) relocation."""

    vm: int
    server: int
    old_server: int
    violations: int
    objectives: FloatArray  # (3,) in canonical objective order

    def aggregate(self, weights: FloatArray | None = None) -> float:
        """The scalar Z the move would yield (Eq. 15)."""
        return float(aggregate_scalar(self.objectives, weights))


class _Delta:
    """Internal scratch: everything a move changes, precomputed once so
    score and apply share one code path."""

    __slots__ = (
        "old",
        "new",
        "rows",
        "over",
        "knee",
        "group_viol",
        "cap_total",
        "knee_total",
        "group_total",
        "unplaced",
        "usage_cost",
        "operating_active",
        "server_penalty",
        "downtime_total",
        "migration_total",
        "server_energy",
        "energy_total",
    )


class IncrementalEvaluator:
    """Delta evaluation of single-VM relocations for one instance.

    Parameters
    ----------
    compiled:
        The instance compilation (static facts).
    assignment:
        Starting genome; :data:`UNPLACED` genes are allowed.
    base_usage, previous_assignment:
        Per-window dynamics, identical in meaning to
        :class:`~repro.objectives.evaluator.PopulationEvaluator`.
    downtime_mode, per_server_operating, include_assignment, qos_strict:
        Evaluation options, mirroring the reference evaluator so
        :meth:`verify` can assert parity under any configuration.
    """

    def __init__(
        self,
        compiled,
        assignment: IntArray,
        *,
        base_usage: FloatArray | None = None,
        previous_assignment: IntArray | None = None,
        downtime_mode: str = "shortfall",
        per_server_operating: bool = False,
        include_assignment: bool = False,
        qos_strict: bool = False,
        energy_weight: float = 0.0,
    ) -> None:
        if downtime_mode not in _DOWNTIME_MODES:
            raise ValidationError(
                f"downtime_mode must be one of {_DOWNTIME_MODES}, got {downtime_mode!r}"
            )
        self.compiled = compiled
        self.downtime_mode = downtime_mode
        self.per_server_operating = bool(per_server_operating)
        self.include_assignment = bool(include_assignment)
        self.qos_strict = bool(qos_strict)
        self.energy_weight = float(energy_weight)

        infra = compiled.infrastructure
        m, h = compiled.m, compiled.h
        if base_usage is None:
            self._base = np.zeros((m, h))
        else:
            self._base = np.ascontiguousarray(base_usage, dtype=np.float64)
            if self._base.shape != (m, h):
                raise ValidationError(
                    f"base_usage shape {self._base.shape}, expected {(m, h)}"
                )
        # Capacity limits/slack mirror CapacityConstraint (tolerance 1e-9).
        self._limit = compiled.effective_capacity - (
            self._base if base_usage is not None else 0.0
        )
        self._slack = 1e-9 * np.maximum(1.0, np.abs(self._limit))
        if qos_strict:
            knee = infra.max_load * infra.capacity
            if base_usage is not None:
                knee = knee - self._base
            self._knee_limit = knee
            self._knee_slack = 1e-9 * np.maximum(1.0, np.abs(knee))
        else:
            self._knee_limit = None
            self._knee_slack = None

        if previous_assignment is not None:
            previous_assignment = np.ascontiguousarray(
                previous_assignment, dtype=np.int64
            )
            if previous_assignment.shape != (compiled.n,):
                raise ValidationError(
                    f"previous assignment shape {previous_assignment.shape}, "
                    f"expected ({compiled.n},)"
                )
        self._previous = previous_assignment

        # Scalar fast-path tables: per-move work touches length-h rows,
        # where Python float arithmetic beats numpy's per-call dispatch
        # by an order of magnitude.  Thresholds are precomputed with the
        # same float ops the vectorized path uses, so the comparisons —
        # and therefore the violation counts — stay bit-exact.
        self._lps = self._limit + self._slack
        self._lps_list = self._lps.tolist()
        if qos_strict:
            self._kps = self._knee_limit + self._knee_slack
            self._kps_list = self._kps.tolist()
        else:
            self._kps = None
            self._kps_list = None
        # Optional compiled row-wise over-count (numba backend only):
        # same scalar comparisons as the list path below, captured at
        # construction time from the then-active kernel.
        self._row_over = getattr(active_kernel(), "row_over", None)
        self._cap_list = np.asarray(infra.capacity, dtype=np.float64).tolist()
        self._ml_list = np.asarray(infra.max_load, dtype=np.float64).tolist()
        self._mq_list = np.asarray(infra.max_qos, dtype=np.float64).tolist()
        self._base_list = self._base.tolist()
        self._cq_list = np.asarray(
            compiled.qos_guarantee, dtype=np.float64
        ).tolist()
        self._cu_list = np.asarray(
            compiled.downtime_charge, dtype=np.float64
        ).tolist()

        # Optional energy term (weight 0 keeps every path untouched).
        if self.energy_weight > 0.0:
            capacity = np.asarray(compiled.effective_capacity, dtype=np.float64)
            # Same degenerate-cell handling as EnergyCost: zero-capacity
            # attributes contribute load 0.
            self._energy_invcap = np.where(
                capacity > 0, 1.0 / np.where(capacity > 0, capacity, 1.0), 0.0
            )
            self._invcap_list = self._energy_invcap.tolist()
            self._idle_list = np.asarray(
                compiled.idle_power, dtype=np.float64
            ).tolist()
            self._dyn_list = np.asarray(
                compiled.dynamic_power, dtype=np.float64
            ).tolist()
        else:
            self._energy_invcap = None
            self._invcap_list = None
            self._idle_list = None
            self._dyn_list = None

        # Move-scoring telemetry is batched locally (the registry lock
        # would dominate the µs-scale hot path) — see flush_telemetry().
        self._scored_moves = 0
        self._applied_moves = 0

        self.reset(assignment)

    # ------------------------------------------------------------------
    # From-scratch state construction
    # ------------------------------------------------------------------
    def reset(self, assignment: IntArray) -> None:
        """Re-anchor the incremental state on ``assignment``."""
        compiled = self.compiled
        assignment = np.asarray(assignment, dtype=np.int64)
        if assignment.shape != (compiled.n,):
            raise ValidationError(
                f"assignment shape {assignment.shape}, expected ({compiled.n},)"
            )
        self.assignment = assignment.copy()
        m = compiled.m
        mask = self.assignment != UNPLACED
        placed = self.assignment[mask]

        self._usage = scatter_rows(placed, compiled.demand[mask], m)
        self._over = np.count_nonzero(
            self._usage > self._limit + self._slack, axis=1
        ).astype(np.int64)
        self._cap_total = int(self._over.sum())
        if self.qos_strict:
            self._knee_over = np.count_nonzero(
                self._usage > self._knee_limit + self._knee_slack, axis=1
            ).astype(np.int64)
            self._knee_total = int(self._knee_over.sum())
        else:
            self._knee_over = None
            self._knee_total = 0

        self._group_viol = np.array(
            [
                self._group_violations(gi, self.assignment[members])
                for gi, members in enumerate(compiled.group_members)
            ],
            dtype=np.int64,
        )
        self._group_total = int(self._group_viol.sum())
        self._unplaced = int(np.count_nonzero(~mask))

        self._residents: list[set[int]] = [set() for _ in range(m)]
        for vm in np.flatnonzero(mask):
            self._residents[int(self.assignment[vm])].add(int(vm))

        # Downtime: price every server once, vectorized.
        server_q = self._min_qos(self._usage)  # (m,)
        if placed.size:
            pen = self._penalties(server_q[placed], np.flatnonzero(mask))
            self._server_penalty = scatter_values(placed, pen, m)
        else:
            self._server_penalty = np.zeros(m)
        self._downtime_total = float(self._server_penalty.sum())

        # Usage/operating cost.
        if self.per_server_operating:
            usage_part = float(compiled.usage_cost[placed].sum())
            active = np.unique(placed)
            operating = float(compiled.operating_cost[active].sum())
            self._usage_cost_total = usage_part + operating
        else:
            self._usage_cost_total = float(
                compiled.per_resource_rate[placed].sum()
            )

        # Migration.
        if self._previous is None:
            self._migration_total = 0.0
        else:
            prev = self._previous
            moved = (self.assignment != prev) & (prev != UNPLACED)
            self._migration_total = float(compiled.migration_charge[moved].sum())

        # Energy (optional): price every active server once, vectorized.
        if self.energy_weight > 0.0:
            active = np.zeros(m, dtype=bool)
            active[placed] = True
            load = ((self._usage + self._base) * self._energy_invcap).mean(axis=1)
            self._server_energy = np.where(
                active,
                compiled.idle_power + compiled.dynamic_power * load,
                0.0,
            )
            self._energy_total = float(self._server_energy.sum())
        else:
            self._server_energy = None
            self._energy_total = 0.0

    # ------------------------------------------------------------------
    # Current totals
    # ------------------------------------------------------------------
    @property
    def violations(self) -> int:
        """Total constraint violations of the current assignment."""
        total = self._cap_total + self._group_total + self._knee_total
        if self.include_assignment:
            total += self._unplaced
        return int(total)

    @property
    def objectives(self) -> FloatArray:
        """(3,) objective vector of the current assignment."""
        provider = self._usage_cost_total
        if self.energy_weight > 0.0:
            provider += self.energy_weight * self._energy_total
        return np.array(
            [provider, self._downtime_total, self._migration_total]
        )

    def aggregate(self, weights: FloatArray | None = None) -> float:
        """The scalar Z of the current assignment (Eq. 15)."""
        return float(aggregate_scalar(self.objectives, weights))

    # ------------------------------------------------------------------
    # Pieces
    # ------------------------------------------------------------------
    def _group_violations(self, gi: int, genes: IntArray) -> int:
        """Violation count of one group given its member genes —
        semantics identical to the constraint classes."""
        placed = genes[genes != UNPLACED]
        if placed.size <= 1:
            return 0
        rule = self.compiled.group_rules[gi]
        if rule is PlacementRule.SAME_SERVER:
            return int(np.unique(placed).size - 1)
        if rule is PlacementRule.SAME_DATACENTER:
            dcs = self.compiled.server_datacenter[placed]
            return int(np.unique(dcs).size - 1)
        if rule is PlacementRule.DIFFERENT_SERVERS:
            return int(placed.size - np.unique(placed).size)
        dcs = self.compiled.server_datacenter[placed]
        return int(placed.size - np.unique(dcs).size)

    def _min_qos(self, usage: FloatArray) -> FloatArray:
        """Worst-attribute QoS per server for a (m, h) usage array."""
        infra = self.compiled.infrastructure
        load = loads_from_usage(usage + self._base, infra.capacity)
        return qos_from_load(load, infra.max_load, infra.max_qos).min(axis=-1)

    def _min_qos_row(self, server: int, row_list: list[float]) -> float:
        """Scalar Eq. 24/25 over one length-h row — same float ops as
        :func:`loads_from_usage` / :func:`qos_from_load`, minus the
        per-call numpy dispatch that dominates the hot path."""
        cap = self._cap_list[server]
        ml = self._ml_list[server]
        mq = self._mq_list[server]
        base = self._base_list[server]
        best = math.inf
        for a, u in enumerate(row_list):
            u = u + base[a]
            c = cap[a]
            if c > 0.0:
                load = u / c
            elif u > 0.0:
                load = math.inf
            else:
                load = u
            knee = ml[a]
            if load > knee:
                arg = (knee - load) / (1.0 - knee)
                q = mq[a] * math.exp(arg if arg < 0.0 else 0.0)
            else:
                q = mq[a]
            if q < best:
                best = q
        return best

    def _penalties(self, qos, resources: IntArray) -> FloatArray:
        """Eq. 23 penalties for ``resources`` hosted at QoS ``qos``."""
        cq = self.compiled.qos_guarantee[resources]
        cu = self.compiled.downtime_charge[resources]
        if self.downtime_mode == "literal":
            return cu * (qos / cq)
        return cu * np.maximum(0.0, (cq - qos) / cq)

    def _server_penalty_value(
        self, server: int, row_list: list[float], residents: set[int]
    ) -> float:
        if not residents:
            return 0.0
        qos = self._min_qos_row(server, row_list)
        cq = self._cq_list
        cu = self._cu_list
        total = 0.0
        if self.downtime_mode == "literal":
            for k in sorted(residents):  # deterministic summation order
                total += cu[k] * (qos / cq[k])
        else:
            for k in sorted(residents):
                guarantee = cq[k]
                shortfall = (guarantee - qos) / guarantee
                if shortfall > 0.0:
                    total += cu[k] * shortfall
        return total

    def _server_energy_value(
        self, server: int, row_list: list[float], residents: set[int]
    ) -> float:
        """Scalar linear-power price of one server row (0 when empty)."""
        if not residents:
            return 0.0
        inv = self._invcap_list[server]
        base = self._base_list[server]
        total = 0.0
        for a, u in enumerate(row_list):
            total += (u + base[a]) * inv[a]
        load = total / len(row_list)
        return self._idle_list[server] + self._dyn_list[server] * load

    def _migration_contrib(self, vm: int, server: int) -> float:
        if self._previous is None:
            return 0.0
        prev = int(self._previous[vm])
        if prev == UNPLACED or server == prev:
            return 0.0
        return float(self.compiled.migration_charge[vm])

    # ------------------------------------------------------------------
    # The delta core
    # ------------------------------------------------------------------
    def _delta(self, vm: int, server: int) -> _Delta:
        compiled = self.compiled
        vm = int(vm)
        new = int(server)
        if not (0 <= vm < compiled.n):
            raise ValidationError(f"vm {vm} outside [0, {compiled.n})")
        if new != UNPLACED and not (0 <= new < compiled.m):
            raise ValidationError(f"server {new} outside [0, {compiled.m})")
        old = int(self.assignment[vm])

        d = _Delta()
        d.old = old
        d.new = new
        d.cap_total = self._cap_total
        d.knee_total = self._knee_total
        d.group_total = self._group_total
        d.unplaced = self._unplaced
        d.usage_cost = self._usage_cost_total
        d.downtime_total = self._downtime_total
        d.migration_total = self._migration_total
        d.rows = {}
        d.over = {}
        d.knee = {}
        d.group_viol = {}
        d.server_penalty = {}
        d.server_energy = {}
        d.energy_total = self._energy_total
        d.operating_active = None
        if new == old:
            return d

        demand = compiled.demand[vm]
        if old != UNPLACED:
            d.rows[old] = self._usage[old] - demand
        if new != UNPLACED:
            d.rows[new] = self._usage[new] + demand
        row_lists = {s: row.tolist() for s, row in d.rows.items()}

        # Capacity (and the strict-QoS knee, when enabled): recount the
        # over-limit cells of the two touched server rows only.  The
        # thresholds were precomputed with the vectorized path's exact
        # float ops, so these scalar comparisons are bit-identical.
        for s, row_list in row_lists.items():
            if self._row_over is not None:
                over = int(self._row_over(d.rows[s], self._lps[s]))
            else:
                thresholds = self._lps_list[s]
                over = sum(v > t for v, t in zip(row_list, thresholds))
            d.over[s] = over
            d.cap_total += over - int(self._over[s])
            if self.qos_strict:
                if self._row_over is not None:
                    knee = int(self._row_over(d.rows[s], self._kps[s]))
                else:
                    knee_thresholds = self._kps_list[s]
                    knee = sum(
                        v > t for v, t in zip(row_list, knee_thresholds)
                    )
                d.knee[s] = knee
                d.knee_total += knee - int(self._knee_over[s])

        # Groups containing the VM: recount with the candidate gene.
        for gi, pos in compiled.vm_group_slots[vm]:
            genes = self.assignment[compiled.group_members[gi]].copy()
            genes[pos] = new
            viol = self._group_violations(gi, genes)
            d.group_viol[gi] = viol
            d.group_total += viol - int(self._group_viol[gi])

        # Assignment constraint (Eq. 5) when enabled.
        d.unplaced += int(new == UNPLACED) - int(old == UNPLACED)

        # Usage/operating cost.
        if self.per_server_operating:
            if old != UNPLACED:
                d.usage_cost -= float(compiled.usage_cost[old])
                if len(self._residents[old]) == 1:
                    d.usage_cost -= float(compiled.operating_cost[old])
            if new != UNPLACED:
                d.usage_cost += float(compiled.usage_cost[new])
                if not self._residents[new]:
                    d.usage_cost += float(compiled.operating_cost[new])
        else:
            if old != UNPLACED:
                d.usage_cost -= float(compiled.per_resource_rate[old])
            if new != UNPLACED:
                d.usage_cost += float(compiled.per_resource_rate[new])

        # Downtime (and energy, when priced): re-price the residents of
        # the two touched servers.
        for s, row_list in row_lists.items():
            residents = self._residents[s]
            if s == old:
                residents = residents - {vm}
            elif vm not in residents:
                residents = residents | {vm}
            penalty = self._server_penalty_value(s, row_list, residents)
            d.server_penalty[s] = penalty
            d.downtime_total += penalty - float(self._server_penalty[s])
            if self.energy_weight > 0.0:
                energy = self._server_energy_value(s, row_list, residents)
                d.server_energy[s] = energy
                d.energy_total += energy - float(self._server_energy[s])

        # Migration (Eq. 26).
        d.migration_total += self._migration_contrib(
            vm, new
        ) - self._migration_contrib(vm, old)
        return d

    def _score_of(self, d: _Delta, vm: int) -> MoveScore:
        violations = d.cap_total + d.group_total + d.knee_total
        if self.include_assignment:
            violations += d.unplaced
        provider = d.usage_cost
        if self.energy_weight > 0.0:
            provider += self.energy_weight * d.energy_total
        return MoveScore(
            vm=int(vm),
            server=d.new,
            old_server=d.old,
            violations=int(violations),
            objectives=np.array(
                [provider, d.downtime_total, d.migration_total]
            ),
        )

    # ------------------------------------------------------------------
    # Public move API
    # ------------------------------------------------------------------
    def score_move(self, vm: int, server: int) -> MoveScore:
        """Totals after relocating ``vm`` to ``server`` — no mutation."""
        self._scored_moves += 1
        return self._score_of(self._delta(vm, server), vm)

    def apply_move(self, vm: int, server: int) -> MoveScore:
        """Commit the relocation and return the updated totals."""
        d = self._delta(vm, server)
        self._applied_moves += 1
        if d.new == d.old:
            return self._score_of(d, vm)
        for s, row in d.rows.items():
            self._usage[s] = row
            self._over[s] = d.over[s]
            if self.qos_strict:
                self._knee_over[s] = d.knee[s]
            self._server_penalty[s] = d.server_penalty[s]
            if self.energy_weight > 0.0:
                self._server_energy[s] = d.server_energy[s]
        for gi, viol in d.group_viol.items():
            self._group_viol[gi] = viol
        if d.old != UNPLACED:
            self._residents[d.old].discard(int(vm))
        if d.new != UNPLACED:
            self._residents[d.new].add(int(vm))
        self._cap_total = d.cap_total
        self._knee_total = d.knee_total
        self._group_total = d.group_total
        self._unplaced = d.unplaced
        self._usage_cost_total = d.usage_cost
        self._downtime_total = d.downtime_total
        self._migration_total = d.migration_total
        self._energy_total = d.energy_total
        self.assignment[vm] = d.new
        return self._score_of(d, vm)

    # ------------------------------------------------------------------
    # Parity escape hatch
    # ------------------------------------------------------------------
    def reference_evaluator(self):
        """A from-scratch evaluator configured identically."""
        return self.compiled.evaluator(
            base_usage=(
                None if not self._base.any() else self._base
            ),
            previous_assignment=self._previous,
            downtime_mode=self.downtime_mode,
            per_server_operating=self.per_server_operating,
            include_assignment_constraint=self.include_assignment,
            qos_strict=self.qos_strict,
            energy_weight=self.energy_weight,
        )

    def _objective_terms(self) -> tuple[str, ...]:
        """Objective terms in effect ("energy" only when priced)."""
        if self.energy_weight > 0.0:
            return OBJECTIVE_TERMS + ("energy",)
        return OBJECTIVE_TERMS

    def component_totals(self) -> dict[str, float]:
        """The tracked per-term state: the four constraint components
        (:data:`CONSTRAINT_TERMS`) and three objective terms
        (:data:`OBJECTIVE_TERMS`, plus ``energy`` when priced) as one
        flat dict."""
        totals = {
            "capacity": float(self._cap_total),
            "group": float(self._group_total),
            "load_cap": float(self._knee_total),
            "unplaced": float(self._unplaced),
            "usage_cost": float(self._usage_cost_total),
            "downtime": float(self._downtime_total),
            "migration": float(self._migration_total),
        }
        if self.energy_weight > 0.0:
            totals["energy"] = float(self._energy_total)
        return totals

    def reference_components(self) -> dict[str, float]:
        """The same terms recomputed from scratch by the reference
        :class:`~repro.objectives.evaluator.PopulationEvaluator`."""
        evaluator = self.reference_evaluator()
        assignment = self.assignment
        constraints = evaluator.constraints
        load_cap = (
            float(constraints.load_cap.violations(assignment))
            if constraints.load_cap is not None
            else 0.0
        )
        reference = {
            "capacity": float(constraints.capacity.violations(assignment)),
            "group": float(
                sum(c.violations(assignment) for c in constraints.group_constraints)
            ),
            "load_cap": load_cap,
            "unplaced": float(np.count_nonzero(assignment == UNPLACED)),
            "usage_cost": float(evaluator.usage_cost.value(assignment)),
            "downtime": float(evaluator.downtime.value(assignment)),
            "migration": float(evaluator.migration.value(assignment)),
        }
        if self.energy_weight > 0.0:
            reference["energy"] = float(evaluator.energy.value(assignment))
        return reference

    def verify(
        self, *, rtol: float = 1e-9, atol: float = 1e-9, strict: bool = True
    ) -> ParityReport:
        """Check parity against a full from-scratch evaluation.

        Constraint components must match exactly; objective terms to
        within float re-association noise (``rtol``/``atol``).  Returns
        the structured :class:`ParityReport`; with ``strict=True`` (the
        default) a drifted report additionally raises
        :class:`ParityError` carrying the report.
        """
        incremental = self.component_totals()
        reference = self.reference_components()
        deltas = []
        for term in CONSTRAINT_TERMS:
            deltas.append(
                ParityDelta(
                    term=term,
                    kind="constraint",
                    incremental=incremental[term],
                    reference=reference[term],
                    ok=incremental[term] == reference[term],
                )
            )
        for term in self._objective_terms():
            deltas.append(
                ParityDelta(
                    term=term,
                    kind="objective",
                    incremental=incremental[term],
                    reference=reference[term],
                    ok=bool(
                        np.isclose(
                            incremental[term], reference[term], rtol=rtol, atol=atol
                        )
                    ),
                )
            )
        report = ParityReport(deltas=tuple(deltas), rtol=rtol, atol=atol)
        registry = get_registry()
        registry.count("engine.delta.verifications")
        if not report.ok:
            registry.count("engine.delta.parity_failures")
            if strict:
                raise ParityError(
                    "incremental/full parity drift:\n" + report.format(), report
                )
        return report

    # ------------------------------------------------------------------
    def flush_telemetry(self) -> None:
        """Fold locally batched move counters into the registry."""
        registry = get_registry()
        if self._scored_moves:
            registry.count("engine.delta.score_moves", self._scored_moves)
            self._scored_moves = 0
        if self._applied_moves:
            registry.count("engine.delta.apply_moves", self._applied_moves)
            self._applied_moves = 0
