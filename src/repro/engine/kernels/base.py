"""Kernel interface and the reference backend.

A *kernel* is the set of array primitives under the evaluation/repair
hot path: scatter demand onto servers, build the population usage
tensor, count over-capacity cells, count group-rule violations, price
the QoS curve.  Every backend must produce results **identical** to
:class:`ReferenceKernel` — bitwise for integers and usage tiles, and
bitwise for the float objective math too, because all backends are
required to perform the same per-element float operations in the same
accumulation order (the property ``verify --check-kernels`` enforces
on fuzzed instances; see ``docs/PERFORMANCE.md``).

:class:`ReferenceKernel` *is* the original code path of each call site
(``np.add.at`` scatters, per-attribute ``bincount`` tiles, one Python
iteration per placement group).  It stays the conformance anchor: the
faster backends are correct exactly when they match it.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.model.placement import UNPLACED
from repro.types import BoolArray, FloatArray, IntArray

__all__ = ["GroupLayout", "Kernel", "ReferenceKernel"]


#: Rule name -> (counts_distinct, uses_datacenter).  ``counts_distinct``
#: rules charge ``max(distinct - 1, 0)``; the others charge
#: ``placed - distinct`` (collision count).
_RULE_TABLE = {
    "same_server": (True, False),
    "same_datacenter": (True, True),
    "different_servers": (False, False),
    "different_datacenters": (False, True),
}


@dataclass(frozen=True)
class GroupLayout:
    """Flattened index structure over all placement groups of an instance.

    Concatenating every group's member array lets a backend score all
    groups of a whole population in one pass instead of one Python
    iteration per group.  Built once per constraint set (the groups are
    immutable per instance) by :meth:`build`.
    """

    #: (T,) concatenated member VM indices, in group order.
    members: IntArray
    #: (T,) group id of each entry (non-decreasing).
    segments: IntArray
    #: (G + 1,) start offset of each group inside :attr:`members`.
    offsets: IntArray
    #: (G,) True where the rule charges ``max(distinct - 1, 0)``.
    counts_distinct: BoolArray
    #: (G,) True where keys are datacenters instead of servers.
    uses_datacenter: BoolArray
    #: (m,) server -> datacenter map.
    server_datacenter: IntArray
    #: Composite-key radix: strictly greater than any location key; the
    #: value ``radix - 1`` is the unplaced sentinel.
    radix: int

    @property
    def n_groups(self) -> int:
        return int(self.offsets.shape[0] - 1)

    @staticmethod
    def build(constraints, server_datacenter: IntArray, m: int) -> "GroupLayout | None":
        """Layout for a sequence of built-in group constraints.

        Returns ``None`` when any constraint is not one of the four
        built-in rules (third-party extensions keep their own
        ``batch_violations``) or when there are no groups.
        """
        if not constraints:
            return None
        members_parts: list[np.ndarray] = []
        counts_distinct: list[bool] = []
        uses_datacenter: list[bool] = []
        for constraint in constraints:
            entry = _RULE_TABLE.get(getattr(constraint, "name", None))
            idx = getattr(constraint, "_idx", None)
            if entry is None or idx is None:
                return None
            members_parts.append(np.asarray(idx, dtype=np.int64))
            counts_distinct.append(entry[0])
            uses_datacenter.append(entry[1])
        sizes = np.array([part.shape[0] for part in members_parts], dtype=np.int64)
        offsets = np.zeros(sizes.shape[0] + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        segments = np.repeat(
            np.arange(sizes.shape[0], dtype=np.int64), sizes
        )
        server_datacenter = np.asarray(server_datacenter, dtype=np.int64)
        max_dc = int(server_datacenter.max()) if server_datacenter.size else 0
        radix = max(int(m), max_dc + 1) + 1
        return GroupLayout(
            members=np.concatenate(members_parts),
            segments=segments,
            offsets=offsets,
            counts_distinct=np.asarray(counts_distinct, dtype=bool),
            uses_datacenter=np.asarray(uses_datacenter, dtype=bool),
            server_datacenter=server_datacenter,
            radix=radix,
        )


class Kernel(abc.ABC):
    """The primitive set behind evaluation and repair.

    Shapes: populations are ``(pop, n)`` int64 genome matrices (values
    in ``[0, m)`` or :data:`UNPLACED`), demand is the request's
    ``(n, h)`` float64 matrix, usage tensors are ``(pop, m, h)``.
    """

    #: Registry name ("reference", "numpy", "numba").
    name: str = "kernel"
    #: Whether :meth:`batch_group_violations` is implemented (the
    #: reference backend scores groups through the constraint objects
    #: instead, preserving the original per-group code path).
    vectorized_groups: bool = False

    # -- scatters ------------------------------------------------------
    @abc.abstractmethod
    def scatter_usage(
        self, servers: IntArray, demand_rows: FloatArray, m: int
    ) -> FloatArray:
        """Accumulate ``demand_rows`` (k, h) onto ``servers`` (k,) -> (m, h).

        Callers pass only *placed* genes; duplicate servers accumulate
        in input order (the bit-identity contract).
        """

    @abc.abstractmethod
    def batch_usage(
        self, population: IntArray, demand: FloatArray, m: int
    ) -> FloatArray:
        """Population usage tensor (pop, m, h); UNPLACED genes contribute 0."""

    @abc.abstractmethod
    def batch_active(self, population: IntArray, m: int) -> BoolArray:
        """(pop, m) mask of servers hosting >= 1 placed gene per row."""

    # -- counting ------------------------------------------------------
    @abc.abstractmethod
    def batch_over_counts(
        self, usage: FloatArray, threshold: FloatArray
    ) -> IntArray:
        """Per-row count of cells with ``usage > threshold`` -> (pop,) int64."""

    def batch_group_violations(
        self, population: IntArray, layout: GroupLayout
    ) -> IntArray:
        """Summed group-rule violations per row -> (pop,) int64."""
        raise NotImplementedError(
            f"{self.name} kernel does not vectorize group scoring"
        )

    # -- QoS tile ------------------------------------------------------
    @abc.abstractmethod
    def server_min_qos(
        self,
        usage: FloatArray,
        base_usage: FloatArray,
        capacity: FloatArray,
        max_load: FloatArray,
        max_qos: FloatArray,
    ) -> FloatArray:
        """Worst-attribute QoS per server for a (..., m, h) usage array.

        Eq. 25 loads then Eq. 24 QoS, minimum over attributes — exactly
        the float ops of :func:`repro.objectives.qos.loads_from_usage`
        and :func:`repro.objectives.qos.qos_from_load`.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class ReferenceKernel(Kernel):
    """The pre-kernel-layer code paths, verbatim — the conformance anchor."""

    name = "reference"
    vectorized_groups = False

    def scatter_usage(
        self, servers: IntArray, demand_rows: FloatArray, m: int
    ) -> FloatArray:
        usage = np.zeros((m, demand_rows.shape[1]), dtype=np.float64)
        np.add.at(usage, servers, demand_rows)
        return usage

    def batch_usage(
        self, population: IntArray, demand: FloatArray, m: int
    ) -> FloatArray:
        pop, n = population.shape
        h = demand.shape[1]
        mask = population != UNPLACED
        # Route unplaced genes to a scratch bucket at index m.
        servers = np.where(mask, population, m)
        flat = (np.arange(pop)[:, None] * (m + 1) + servers).ravel()
        usage = np.empty((pop, m, h))
        for col in range(h):
            weights = np.broadcast_to(demand[:, col], (pop, n)).ravel()
            counts = np.bincount(flat, weights=weights, minlength=pop * (m + 1))
            usage[:, :, col] = counts.reshape(pop, m + 1)[:, :m]
        return usage

    def batch_active(self, population: IntArray, m: int) -> BoolArray:
        pop = population.shape[0]
        mask = population != UNPLACED
        servers = np.where(mask, population, m)
        flat = (np.arange(pop)[:, None] * (m + 1) + servers).ravel()
        counts = np.bincount(flat, minlength=pop * (m + 1))
        return counts.reshape(pop, m + 1)[:, :m] > 0

    def batch_over_counts(
        self, usage: FloatArray, threshold: FloatArray
    ) -> IntArray:
        over = usage > threshold
        return over.sum(axis=tuple(range(1, over.ndim))).astype(np.int64)

    def server_min_qos(
        self,
        usage: FloatArray,
        base_usage: FloatArray,
        capacity: FloatArray,
        max_load: FloatArray,
        max_qos: FloatArray,
    ) -> FloatArray:
        # Late import: objectives.qos sits above the kernel layer in the
        # package graph (objectives.* modules import this package).
        from repro.objectives.qos import loads_from_usage, qos_from_load

        load = loads_from_usage(usage + base_usage, capacity)
        qos = qos_from_load(load, max_load, max_qos)
        return qos.min(axis=-1)
