"""The optional numba backend (auto-detected at import).

Importing this module is always safe: when numba is not installed,
:data:`HAVE_NUMBA` is ``False`` and :class:`NumbaKernel` refuses to
construct.  The registry in :mod:`repro.engine.kernels` only offers
the backend when the import succeeded, and ``REPRO_KERNEL=auto``
falls back to the numpy backend otherwise.

Bit-identity notes:

* the ``@njit`` scatter/usage kernels loop genes **serially inside
  each row** (``prange`` only across rows), preserving the reference
  accumulation order, so float64 usage tiles match bitwise;
* violation counting is integer arithmetic — exact by construction;
* the Eq. 24 QoS tile delegates to the numpy backend: transcendental
  functions (``exp``) compiled by LLVM are not guaranteed to round
  identically to numpy's SIMD loops, and the conformance contract
  (``verify --check-kernels``) demands bitwise equality across every
  backend pair.  The integer and scatter kernels are where the
  population-scale wins live; the QoS tile is already one fused numpy
  pass.
"""

from __future__ import annotations

import numpy as np

from repro.engine.kernels.base import GroupLayout, Kernel
from repro.engine.kernels.numpy_backend import NumpyKernel
from repro.types import BoolArray, FloatArray, IntArray

__all__ = ["HAVE_NUMBA", "NUMBA_VERSION", "NumbaKernel"]

try:  # pragma: no cover - exercised only where numba is installed
    import numba
    from numba import njit, prange

    HAVE_NUMBA = True
    NUMBA_VERSION: str | None = numba.__version__
except ImportError:  # pragma: no cover - the common case in this repo
    HAVE_NUMBA = False
    NUMBA_VERSION = None


if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed

    @njit(cache=True)
    def _scatter_usage(servers, demand_rows, m):
        k, h = demand_rows.shape
        usage = np.zeros((m, h))
        for i in range(k):
            s = servers[i]
            for a in range(h):
                usage[s, a] += demand_rows[i, a]
        return usage

    @njit(parallel=True, cache=True)
    def _batch_usage(population, demand, m):
        pop, n = population.shape
        h = demand.shape[1]
        usage = np.zeros((pop, m, h))
        for r in prange(pop):
            for k in range(n):
                s = population[r, k]
                if s >= 0:
                    for a in range(h):
                        usage[r, s, a] += demand[k, a]
        return usage

    @njit(parallel=True, cache=True)
    def _batch_active(population, m):
        pop, n = population.shape
        active = np.zeros((pop, m), dtype=np.bool_)
        for r in prange(pop):
            for k in range(n):
                s = population[r, k]
                if s >= 0:
                    active[r, s] = True
        return active

    @njit(parallel=True, cache=True)
    def _batch_over_counts(usage, threshold):
        pop, m, h = usage.shape
        out = np.zeros(pop, dtype=np.int64)
        for r in prange(pop):
            count = 0
            for j in range(m):
                for a in range(h):
                    if usage[r, j, a] > threshold[j, a]:
                        count += 1
            out[r] = count
        return out

    @njit(parallel=True, cache=True)
    def _batch_group_violations(
        population, members, offsets, counts_distinct, uses_dc, dc_of, max_group
    ):
        pop = population.shape[0]
        n_groups = offsets.shape[0] - 1
        out = np.zeros(pop, dtype=np.int64)
        for r in prange(pop):
            buf = np.empty(max_group, dtype=np.int64)
            total = 0
            for g in range(n_groups):
                count = 0
                for t in range(offsets[g], offsets[g + 1]):
                    gene = population[r, members[t]]
                    if gene >= 0:
                        buf[count] = dc_of[gene] if uses_dc[g] else gene
                        count += 1
                if count <= 1:
                    continue
                keys = np.sort(buf[:count])
                distinct = 1
                for i in range(1, count):
                    if keys[i] != keys[i - 1]:
                        distinct += 1
                if counts_distinct[g]:
                    total += distinct - 1
                else:
                    total += count - distinct
            out[r] = total
        return out

    @njit(cache=True)
    def _row_over(row, thresholds):
        count = 0
        for a in range(row.shape[0]):
            if row[a] > thresholds[a]:
                count += 1
        return count


class NumbaKernel(Kernel):  # pragma: no cover - exercised only with numba
    """``@njit`` scatter/count kernels over the numpy QoS tile."""

    name = "numba"
    vectorized_groups = True

    def __init__(self) -> None:
        if not HAVE_NUMBA:
            raise RuntimeError("numba is not installed; use REPRO_KERNEL=numpy")
        self._qos = NumpyKernel()

    def scatter_usage(
        self, servers: IntArray, demand_rows: FloatArray, m: int
    ) -> FloatArray:
        return _scatter_usage(
            np.ascontiguousarray(servers, dtype=np.int64),
            np.ascontiguousarray(demand_rows, dtype=np.float64),
            m,
        )

    def batch_usage(
        self, population: IntArray, demand: FloatArray, m: int
    ) -> FloatArray:
        return _batch_usage(
            np.ascontiguousarray(population, dtype=np.int64),
            np.ascontiguousarray(demand, dtype=np.float64),
            m,
        )

    def batch_active(self, population: IntArray, m: int) -> BoolArray:
        return _batch_active(
            np.ascontiguousarray(population, dtype=np.int64), m
        )

    def batch_over_counts(
        self, usage: FloatArray, threshold: FloatArray
    ) -> IntArray:
        usage = np.ascontiguousarray(usage, dtype=np.float64)
        threshold = np.ascontiguousarray(threshold, dtype=np.float64)
        return _batch_over_counts(usage, threshold)

    def batch_group_violations(
        self, population: IntArray, layout: GroupLayout
    ) -> IntArray:
        sizes = np.diff(layout.offsets)
        max_group = int(sizes.max()) if sizes.size else 1
        return _batch_group_violations(
            np.ascontiguousarray(population, dtype=np.int64),
            layout.members,
            layout.offsets,
            layout.counts_distinct,
            layout.uses_datacenter,
            layout.server_datacenter,
            max_group,
        )

    def server_min_qos(
        self,
        usage: FloatArray,
        base_usage: FloatArray,
        capacity: FloatArray,
        max_load: FloatArray,
        max_qos: FloatArray,
    ) -> FloatArray:
        return self._qos.server_min_qos(
            usage, base_usage, capacity, max_load, max_qos
        )

    @staticmethod
    def row_over(row: FloatArray, thresholds: FloatArray) -> int:
        """Over-threshold cells of one length-h row (incremental delta)."""
        return int(_row_over(row, thresholds))
