"""The vectorized numpy backend.

Same results as :class:`~repro.engine.kernels.base.ReferenceKernel`
bit for bit, reached by different routes:

* scatters run through ``np.bincount`` (flat ``(row, server, attr)``
  indices for population tiles) instead of ``np.add.at`` — both
  accumulate duplicate indices in input order, so the float64 sums are
  identical;
* all placement groups of an instance are scored in **one** pass over
  a composite-key sort (integer arithmetic — exact) instead of one
  Python iteration per group;
* the Eq. 24 QoS decay evaluates ``exp`` only on the overloaded cells
  (the reference computes it everywhere then selects).  Per-element
  the operations and operands are identical, so the selected values
  are too.
"""

from __future__ import annotations

import numpy as np

from repro.engine.kernels.base import GroupLayout, Kernel
from repro.model.placement import UNPLACED
from repro.types import BoolArray, FloatArray, IntArray

__all__ = ["NumpyKernel"]


class NumpyKernel(Kernel):
    """Flat-index bincount tiles + single-pass group scoring."""

    name = "numpy"
    vectorized_groups = True

    def scatter_usage(
        self, servers: IntArray, demand_rows: FloatArray, m: int
    ) -> FloatArray:
        h = demand_rows.shape[1]
        usage = np.empty((m, h), dtype=np.float64)
        for col in range(h):
            usage[:, col] = np.bincount(
                servers, weights=demand_rows[:, col], minlength=m
            )[:m]
        return usage

    def batch_usage(
        self, population: IntArray, demand: FloatArray, m: int
    ) -> FloatArray:
        pop, n = population.shape
        h = demand.shape[1]
        mask = population != UNPLACED
        # One flat (row, server, attr) index per gene-attribute pair;
        # unplaced genes land in a scratch server bucket at index m.
        servers = np.where(mask, population, m)
        cells = (np.arange(pop, dtype=np.int64)[:, None] * (m + 1) + servers)
        flat = (cells[:, :, None] * h + np.arange(h, dtype=np.int64)).ravel()
        weights = np.broadcast_to(demand, (pop, n, h)).ravel()
        counts = np.bincount(flat, weights=weights, minlength=pop * (m + 1) * h)
        return counts.reshape(pop, m + 1, h)[:, :m, :]

    def batch_active(self, population: IntArray, m: int) -> BoolArray:
        pop = population.shape[0]
        mask = population != UNPLACED
        servers = np.where(mask, population, m)
        flat = (np.arange(pop, dtype=np.int64)[:, None] * (m + 1) + servers).ravel()
        counts = np.bincount(flat, minlength=pop * (m + 1))
        return counts.reshape(pop, m + 1)[:, :m] > 0

    def batch_over_counts(
        self, usage: FloatArray, threshold: FloatArray
    ) -> IntArray:
        over = usage > threshold
        axes = tuple(range(1, over.ndim))
        return np.count_nonzero(over, axis=axes).astype(np.int64)

    def batch_group_violations(
        self, population: IntArray, layout: GroupLayout
    ) -> IntArray:
        pop = population.shape[0]
        if layout.n_groups == 0:
            return np.zeros(pop, dtype=np.int64)
        genes = population[:, layout.members]  # (pop, T)
        placed = genes != UNPLACED
        keys = genes
        if layout.uses_datacenter.any():
            dc_keys = layout.server_datacenter[np.where(placed, genes, 0)]
            dc_cols = layout.uses_datacenter[layout.segments]
            keys = np.where(dc_cols[None, :], dc_keys, genes)
        radix = layout.radix
        seg_base = layout.segments * radix
        # Composite key: segment-major, location-minor, with unplaced
        # entries pinned to the per-segment sentinel (radix - 1).  A row
        # sort therefore sorts within each segment independently, and
        # every position keeps its (static) segment.
        comp = seg_base[None, :] + np.where(placed, keys, radix - 1)
        comp.sort(axis=1)
        sentinel = seg_base + (radix - 1)
        placed_sorted = comp != sentinel[None, :]
        # A "start" is the first occurrence of a placed location inside
        # its segment: distinct count = number of starts per segment.
        starts = placed_sorted.copy()
        starts[:, 1:] &= comp[:, 1:] != comp[:, :-1]
        cuts = layout.offsets[:-1]
        distinct = np.add.reduceat(starts, cuts, axis=1)
        placed_counts = np.add.reduceat(placed_sorted, cuts, axis=1)
        violations = np.where(
            layout.counts_distinct[None, :],
            np.maximum(distinct - 1, 0),
            placed_counts - distinct,
        )
        return violations.sum(axis=1).astype(np.int64)

    def server_min_qos(
        self,
        usage: FloatArray,
        base_usage: FloatArray,
        capacity: FloatArray,
        max_load: FloatArray,
        max_qos: FloatArray,
    ) -> FloatArray:
        total = usage + base_usage
        safe = np.where(capacity > 0, capacity, 1.0)
        load = total / safe
        load = np.where((capacity <= 0) & (total > 0), np.inf, load)
        shape = load.shape
        qos = np.empty(shape, dtype=np.float64)
        qos[...] = max_qos
        overload = load > max_load
        if overload.any():
            knee = np.broadcast_to(max_load, shape)[overload]
            ceiling = np.broadcast_to(max_qos, shape)[overload]
            # Overloaded cells have load > knee, so the exp argument is
            # already <= 0 — no clamp needed (matches the reference's
            # minimum(0, .) on this subset element for element).
            qos[overload] = ceiling * np.exp((knee - load[overload]) / (1.0 - knee))
        return qos.min(axis=-1)
