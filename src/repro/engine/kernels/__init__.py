"""repro.engine.kernels — pluggable backends for the evaluation hot path.

Three conformant backends sit behind every scatter, violation count and
QoS tile on the evaluation/repair hot path:

``reference``
    The original code paths (``np.add.at`` scatters, per-attribute
    bincount tiles, one Python iteration per placement group).  Slow,
    obviously correct, and the anchor the differential checker
    (``python -m repro verify --check-kernels``) compares against.
``numpy``
    Flat-index ``np.bincount`` tiles, single-pass composite-key group
    scoring, masked-``exp`` QoS — no per-row or per-group Python loop
    anywhere.  The default.
``numba``
    ``@njit(parallel=True)`` scatter and counting kernels; only
    offered when numba imports (see
    :mod:`repro.engine.kernels.numba_backend`).

Selection: ``REPRO_KERNEL=reference|numpy|numba|auto`` (default
``auto`` = numba when available else numpy), overridden per process by
:func:`set_kernel` (the CLI's ``--kernel`` flag) or per scope by
:func:`use_kernel`.  Every backend produces bit-identical results, so
mixing backends across processes cannot break the determinism
contracts — but the parallel engine still pins workers to the parent's
backend (see :class:`~repro.engine.parallel.RepairParams`) to keep
performance characteristics uniform.

Telemetry: ``engine.kernel.backend`` (gauge, labelled) and
``engine.kernel.selects`` land in the registry on every (re)selection;
per-op counters would swamp the metrics lock on µs-scale calls, so hot
paths stay uncounted (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

from repro.engine.kernels.base import GroupLayout, Kernel, ReferenceKernel
from repro.engine.kernels.numba_backend import (
    HAVE_NUMBA,
    NUMBA_VERSION,
    NumbaKernel,
)
from repro.engine.kernels.numpy_backend import NumpyKernel
from repro.errors import ValidationError

__all__ = [
    "GroupLayout",
    "Kernel",
    "ReferenceKernel",
    "NumpyKernel",
    "NumbaKernel",
    "HAVE_NUMBA",
    "NUMBA_VERSION",
    "KERNEL_ENV_VAR",
    "available_kernels",
    "resolve_kernel_name",
    "get_kernel",
    "active_kernel",
    "set_kernel",
    "use_kernel",
]

#: Environment variable consulted when no explicit selection was made.
KERNEL_ENV_VAR = "REPRO_KERNEL"

_FACTORIES = {
    "reference": ReferenceKernel,
    "numpy": NumpyKernel,
}
if HAVE_NUMBA:  # pragma: no cover - depends on the host environment
    _FACTORIES["numba"] = NumbaKernel

#: Singleton instance per backend (kernels are stateless).
_INSTANCES: dict[str, Kernel] = {}

#: The process-wide active backend; ``None`` means "not resolved yet"
#: (resolved lazily from the environment on first use).
_ACTIVE: Kernel | None = None


def available_kernels() -> tuple[str, ...]:
    """Backend names constructible in this process."""
    return tuple(_FACTORIES)


def resolve_kernel_name(name: str | None = None) -> str:
    """Map a requested name (or the environment) to a concrete backend.

    ``None`` reads :data:`KERNEL_ENV_VAR`; ``"auto"`` (and an unset
    variable) prefers numba when available, else numpy.  Requesting
    ``numba`` where it is not installed is an error — silent fallback
    would invalidate any benchmark claiming numba numbers.
    """
    if name is None:
        name = os.environ.get(KERNEL_ENV_VAR, "auto")
    name = name.strip().lower() or "auto"
    if name == "auto":
        return "numba" if HAVE_NUMBA else "numpy"
    if name not in _FACTORIES:
        raise ValidationError(
            f"unknown kernel backend {name!r}; available: "
            f"{', '.join((*_FACTORIES, 'auto'))}"
        )
    return name


def get_kernel(name: str | None = None) -> Kernel:
    """The (singleton) backend instance for ``name`` (see resolution rules)."""
    resolved = resolve_kernel_name(name)
    instance = _INSTANCES.get(resolved)
    if instance is None:
        instance = _FACTORIES[resolved]()
        _INSTANCES[resolved] = instance
    return instance


def active_kernel() -> Kernel:
    """The process-wide backend every hot-path call site dispatches to."""
    global _ACTIVE
    if _ACTIVE is None:
        set_kernel(None)
    return _ACTIVE


def set_kernel(name: str | None) -> Kernel:
    """Select the process-wide backend (``None`` re-reads the environment)."""
    global _ACTIVE
    _ACTIVE = get_kernel(name)
    try:
        from repro.telemetry import get_registry

        registry = get_registry()
        registry.count("engine.kernel.selects", backend=_ACTIVE.name)
        registry.gauge("engine.kernel.backend", 1.0, backend=_ACTIVE.name)
    except Exception:  # pragma: no cover - telemetry must never break selection
        pass
    return _ACTIVE


@contextmanager
def use_kernel(name: str | None) -> Iterator[Kernel]:
    """Scoped backend override (verification and benchmarks)."""
    global _ACTIVE
    previous = _ACTIVE
    kernel = set_kernel(name)
    try:
        yield kernel
    finally:
        _ACTIVE = previous
