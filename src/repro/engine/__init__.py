"""repro.engine — compiled problem instances and incremental evaluation.

The evaluation core under the allocation stack, in four parts:

* :class:`~repro.engine.compiled.CompiledProblem` — an immutable,
  once-per-(infrastructure, request) compilation of the instance facts
  every layer needs (demand/capacity matrices, group index arrays,
  server→datacenter map, cost coefficient vectors, fingerprint);
* :class:`~repro.engine.cache.ProblemCache` — LRU reuse of
  compilations across windows and reoptimize passes, keyed by the
  instance fingerprint;
* :class:`~repro.engine.incremental.IncrementalEvaluator` — delta
  scoring of single-VM relocations in O(attributes + groups-of-vm)
  instead of full-genome re-evaluation, with a :meth:`verify` escape
  hatch asserting parity against the reference evaluator;
* :class:`~repro.engine.parallel.ParallelEngine` — a persistent
  worker pool that publishes compilations into shared memory and fans
  tabu repair / population evaluation out across processes with
  byte-identical results (see ``docs/PARALLEL.md``);
* :mod:`repro.engine.kernels` — the pluggable kernel layer behind the
  evaluation/repair hot path: a reference backend (the original numpy
  code paths), a vectorized flat-bincount numpy backend and an
  optional numba backend, selected by ``REPRO_KERNEL`` / ``--kernel``
  and held conformant by ``verify --check-kernels``
  (see ``docs/PERFORMANCE.md``).

See ``docs/ENGINE.md`` for the compile/evaluate split and the
delta-scoring contract.

Exports resolve lazily (PEP 562): constraint and objective modules
import :mod:`repro.engine.kernels` at module load, so an eager
``from repro.engine.cache import ...`` here would close an import
cycle (kernels → engine → cache → compiled → constraints → kernels).
"""

from typing import Any

__all__ = [
    "CompiledProblem",
    "ProblemCache",
    "IncrementalEvaluator",
    "MoveScore",
    "ParityDelta",
    "ParityError",
    "ParityReport",
    "ParallelEngine",
    "ChunkedPopulationEvaluator",
    "RepairParams",
    "InstanceSpec",
    "SharedInstance",
    "publish_instance",
    "attach_instance",
]

#: Lazy export table: attribute name -> defining submodule.
_EXPORTS = {
    "CompiledProblem": "repro.engine.compiled",
    "ProblemCache": "repro.engine.cache",
    "IncrementalEvaluator": "repro.engine.incremental",
    "MoveScore": "repro.engine.incremental",
    "ParityDelta": "repro.engine.incremental",
    "ParityError": "repro.engine.incremental",
    "ParityReport": "repro.engine.incremental",
    "ParallelEngine": "repro.engine.parallel",
    "ChunkedPopulationEvaluator": "repro.engine.parallel",
    "RepairParams": "repro.engine.parallel",
    "InstanceSpec": "repro.engine.parallel",
    "SharedInstance": "repro.engine.parallel",
    "publish_instance": "repro.engine.parallel",
    "attach_instance": "repro.engine.parallel",
}


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.engine' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
