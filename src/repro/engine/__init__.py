"""repro.engine — compiled problem instances and incremental evaluation.

The evaluation core under the allocation stack, in three parts:

* :class:`~repro.engine.compiled.CompiledProblem` — an immutable,
  once-per-(infrastructure, request) compilation of the instance facts
  every layer needs (demand/capacity matrices, group index arrays,
  server→datacenter map, cost coefficient vectors, fingerprint);
* :class:`~repro.engine.cache.ProblemCache` — LRU reuse of
  compilations across windows and reoptimize passes, keyed by the
  instance fingerprint;
* :class:`~repro.engine.incremental.IncrementalEvaluator` — delta
  scoring of single-VM relocations in O(attributes + groups-of-vm)
  instead of full-genome re-evaluation, with a :meth:`verify` escape
  hatch asserting parity against the reference evaluator;
* :class:`~repro.engine.parallel.ParallelEngine` — a persistent
  worker pool that publishes compilations into shared memory and fans
  tabu repair / population evaluation out across processes with
  byte-identical results (see ``docs/PARALLEL.md``).

See ``docs/ENGINE.md`` for the compile/evaluate split and the
delta-scoring contract.
"""

from repro.engine.cache import ProblemCache
from repro.engine.compiled import CompiledProblem
from repro.engine.incremental import (
    IncrementalEvaluator,
    MoveScore,
    ParityDelta,
    ParityError,
    ParityReport,
)
from repro.engine.parallel import (
    ChunkedPopulationEvaluator,
    InstanceSpec,
    ParallelEngine,
    RepairParams,
    SharedInstance,
    attach_instance,
    publish_instance,
)

__all__ = [
    "CompiledProblem",
    "ProblemCache",
    "IncrementalEvaluator",
    "MoveScore",
    "ParityDelta",
    "ParityError",
    "ParityReport",
    "ParallelEngine",
    "ChunkedPopulationEvaluator",
    "RepairParams",
    "InstanceSpec",
    "SharedInstance",
    "publish_instance",
    "attach_instance",
]
