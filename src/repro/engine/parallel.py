"""repro.engine.parallel — the intra-run parallel execution engine.

Figures 7-8 rank algorithms by execution time at scale, and the
dominant cost inside the hybrid is the tabu repair of infeasible
individuals: every genome is repaired independently, yet the loop in
:meth:`~repro.ea.constraint_handling.RepairHandling.prepare` used to
run strictly serially.  This module fans that work out over a
persistent pool of worker processes without changing a single byte of
the result:

* :func:`publish_instance` copies a :class:`CompiledProblem`'s
  demand/capacity/cost arrays into **one**
  :class:`multiprocessing.shared_memory.SharedMemory` segment, keyed by
  the compilation's blake2b fingerprint.  Workers attach by name and
  rebuild the instance from zero-copy views, so a repair task ships
  only the genomes it repairs — the instance itself crosses the
  process boundary once per worker, not once per task.
* :class:`ParallelEngine` owns the pool and the published segments.
  :meth:`ParallelEngine.repair_rows` dispatches the infeasible slice of
  a generation in contiguous batches (amortizing task overhead);
  :meth:`ParallelEngine.evaluate_rows` optionally chunks
  :meth:`~repro.objectives.evaluator.PopulationEvaluator.evaluate_population`
  for large populations.  Both degrade gracefully: any pool or
  shared-memory failure marks the engine unavailable, counts an
  ``engine.parallel.fallbacks`` and returns ``None`` so the caller
  falls back to the serial path — which produces the *same* bytes,
  because per-individual repair RNG streams are derived from spawn
  keys, not from worker count or completion order (the determinism
  contract; see ``docs/PARALLEL.md``).

Telemetry lands in the ``engine.parallel.*`` namespace; worker-side
counters (attach hits, ``tabu.repair.*``) are recorded into a scoped
registry per task and merged back into the parent's registry with the
results.
"""

from __future__ import annotations

import contextlib
import itertools
import os
import secrets
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import get_all_start_methods, get_context
from multiprocessing import shared_memory
from typing import Any

import numpy as np

from repro.engine.compiled import CompiledProblem
from repro.engine.kernels import active_kernel, use_kernel
from repro.errors import ValidationError
from repro.telemetry import MetricsRegistry, get_registry, use_registry
from repro.types import FloatArray, IntArray, PlacementRule
from repro.utils.rng import derive_sequence
from repro.utils.timers import Stopwatch

__all__ = [
    "InstanceSpec",
    "SharedInstance",
    "publish_instance",
    "attach_instance",
    "RepairParams",
    "ParallelEngine",
    "ChunkedPopulationEvaluator",
]


# ----------------------------------------------------------------------
# Shared-memory publication
# ----------------------------------------------------------------------

#: Arrays that rebuild the Infrastructure (name -> attribute).
_INFRA_FIELDS = (
    "capacity",
    "capacity_factor",
    "operating_cost",
    "usage_cost",
    "max_load",
    "max_qos",
    "server_datacenter",
)

#: Arrays that rebuild the Request.
_REQUEST_FIELDS = ("demand", "qos_guarantee", "downtime_cost", "migration_cost")

#: Optional per-window bindings shipped alongside the static instance.
_BINDING_FIELDS = ("base_usage", "previous_assignment")


@dataclass(frozen=True)
class InstanceSpec:
    """Picklable recipe for attaching one published instance.

    Everything here is small: segment name, array layout (offsets,
    shapes, dtypes), the group structure and the schema.  The heavy
    arrays live in the shared-memory segment the spec points at.
    """

    segment: str
    fingerprint: str
    layout: tuple[tuple[str, int, tuple[int, ...], str], ...]
    group_rules: tuple[str, ...]
    group_members: tuple[tuple[int, ...], ...]
    schema_names: tuple[str, ...]
    schema_units: tuple[str, ...]


class SharedInstance:
    """Parent-side handle on one published instance segment."""

    def __init__(self, spec: InstanceSpec, shm: shared_memory.SharedMemory) -> None:
        self.spec = spec
        self._shm = shm
        self._closed = False

    @property
    def segment(self) -> str:
        """Name of the shared-memory segment workers attach by."""
        return self.spec.segment

    def close(self) -> None:
        """Close and unlink the segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except OSError:  # pragma: no cover - platform dependent
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __del__(self) -> None:  # pragma: no cover - GC timing
        self.close()


_SEGMENT_COUNTER = itertools.count()


def _collect_arrays(
    compiled: CompiledProblem,
    base_usage: FloatArray | None,
    previous_assignment: IntArray | None,
) -> dict[str, np.ndarray]:
    infra, request = compiled.infrastructure, compiled.request
    arrays: dict[str, np.ndarray] = {}
    for name in _INFRA_FIELDS:
        arrays[name] = np.ascontiguousarray(getattr(infra, name))
    for name in _REQUEST_FIELDS:
        arrays[name] = np.ascontiguousarray(getattr(request, name))
    if base_usage is not None:
        arrays["base_usage"] = np.ascontiguousarray(base_usage, dtype=np.float64)
    if previous_assignment is not None:
        arrays["previous_assignment"] = np.ascontiguousarray(
            previous_assignment, dtype=np.int64
        )
    return arrays


def publish_instance(
    compiled: CompiledProblem,
    base_usage: FloatArray | None = None,
    previous_assignment: IntArray | None = None,
) -> SharedInstance:
    """Copy one instance into a fresh shared-memory segment.

    The segment name embeds the instance fingerprint (the same blake2b
    key :class:`~repro.engine.cache.ProblemCache` uses) plus the pid
    and a counter, so concurrent engines never collide.
    """
    arrays = _collect_arrays(compiled, base_usage, previous_assignment)
    layout: list[tuple[str, int, tuple[int, ...], str]] = []
    offset = 0
    for name, array in arrays.items():
        layout.append((name, offset, array.shape, array.dtype.str))
        offset += array.nbytes
    # POSIX shm names are limited (~250 chars); this stays well under.
    segment = (
        f"repro_{compiled.fingerprint[:16]}_{os.getpid()}"
        f"_{next(_SEGMENT_COUNTER)}_{secrets.token_hex(4)}"
    )
    shm = shared_memory.SharedMemory(name=segment, create=True, size=max(offset, 1))
    for (name, start, shape, dtype), array in zip(layout, arrays.values()):
        view = np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=start)
        view[...] = array
    request = compiled.request
    spec = InstanceSpec(
        segment=segment,
        fingerprint=compiled.fingerprint,
        layout=tuple(layout),
        group_rules=tuple(gr.rule.value for gr in request.groups),
        group_members=tuple(tuple(gr.members) for gr in request.groups),
        schema_names=tuple(request.schema.names),
        schema_units=tuple(request.schema.units),
    )
    get_registry().count("engine.parallel.publishes")
    return SharedInstance(spec, shm)


# ----------------------------------------------------------------------
# Worker side: attach, rebuild, cache
# ----------------------------------------------------------------------
class _AttachedInstance:
    """One worker's zero-copy view of a published instance."""

    def __init__(self, spec: InstanceSpec) -> None:
        from repro.model.attributes import AttributeSchema
        from repro.model.infrastructure import Infrastructure
        from repro.model.request import PlacementGroup, Request

        # NOTE on lifecycle: CPython < 3.13 registers even read-only
        # attachments with the resource tracker (bpo-39959).  Pool
        # workers *share* the parent's tracker daemon (its fd is
        # inherited under both fork and spawn) and the tracker's cache
        # is a set, so the attach-side registration dedupes against the
        # parent's create-side one and the segment is still unlinked
        # exactly once — by the parent's :meth:`SharedInstance.close`.
        # Do NOT "fix" this with resource_tracker.unregister() here:
        # that would delete the shared registration out from under the
        # parent.  See docs/PARALLEL.md.
        shm = shared_memory.SharedMemory(name=spec.segment)
        self._shm = shm
        views: dict[str, np.ndarray] = {}
        for name, offset, shape, dtype in spec.layout:
            view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset)
            view.flags.writeable = False
            views[name] = view

        schema = AttributeSchema(names=spec.schema_names, units=spec.schema_units)
        infrastructure = Infrastructure(
            **{name: views[name] for name in _INFRA_FIELDS}, schema=schema
        )
        groups = tuple(
            PlacementGroup(PlacementRule(rule), members)
            for rule, members in zip(spec.group_rules, spec.group_members)
        )
        request = Request(
            **{name: views[name] for name in _REQUEST_FIELDS},
            groups=groups,
            schema=schema,
        )
        self.compiled = CompiledProblem(infrastructure, request)
        self.base_usage = views.get("base_usage")
        self.previous_assignment = views.get("previous_assignment")
        self._repairers: dict[tuple, Any] = {}
        self._evaluators: dict[tuple, Any] = {}

    def repairer(self, params: "RepairParams"):
        """The worker-local :class:`TabuRepair` over the attached instance."""
        key = params.cache_key()
        repairer = self._repairers.get(key)
        if repairer is None:
            from repro.tabu.repair import TabuRepair

            repairer = TabuRepair(
                self.compiled.infrastructure,
                self.compiled.request,
                base_usage=self.base_usage,
                max_rounds=params.max_rounds,
                tenure=params.tenure,
                order=params.order,
                allow_worsening_moves=params.allow_worsening_moves,
                compiled=self.compiled,
            )
            self._repairers[key] = repairer
        return repairer

    def evaluator(self, binding: tuple[tuple[str, Any], ...]):
        """The worker-local :class:`PopulationEvaluator` over the instance."""
        evaluator = self._evaluators.get(binding)
        if evaluator is None:
            evaluator = self.compiled.evaluator(
                base_usage=self.base_usage,
                previous_assignment=self.previous_assignment,
                **dict(binding),
            )
            self._evaluators[binding] = evaluator
        return evaluator


#: Per-worker attachment cache: segment name -> attached instance.
_ATTACHED: dict[str, _AttachedInstance] = {}


class _AttachMiss(Exception):
    """A spec-ref dispatch named a segment this worker never attached.

    Picklable (plain string arg), so ``future.result()`` re-raises it
    in the parent, which resubmits the chunk with the full
    :class:`InstanceSpec` — the one-time cost the ref dispatch was
    skipping.  See :meth:`ParallelEngine.repair_rows`.
    """

    @property
    def segment(self) -> str:
        return self.args[0]


def attach_instance(spec: InstanceSpec | str) -> _AttachedInstance:
    """The worker-side cache lookup (exposed for in-process tests).

    ``spec`` may be a full :class:`InstanceSpec` or a bare segment name
    (a *spec-ref*): after the first batch over a segment, the parent
    ships only the name — a few dozen bytes instead of the group
    structure and layout tables — and the worker resolves it from its
    attachment cache.  A ref that misses (fresh worker, restarted pool)
    raises :class:`_AttachMiss` so the parent can retry with the spec.
    """
    registry = get_registry()
    if isinstance(spec, str):
        attached = _ATTACHED.get(spec)
        if attached is None:
            raise _AttachMiss(spec)
        registry.count("engine.parallel.specref.hits")
        registry.count("engine.parallel.attach.hits")
        return attached
    attached = _ATTACHED.get(spec.segment)
    if attached is not None:
        registry.count("engine.parallel.attach.hits")
        return attached
    registry.count("engine.parallel.attach.misses")
    attached = _AttachedInstance(spec)
    _ATTACHED[spec.segment] = attached
    return attached


@dataclass(frozen=True)
class RepairParams:
    """The tabu-repair knobs a worker needs to mirror the parent's
    :class:`~repro.tabu.repair.TabuRepair` exactly.

    ``kernel`` pins the worker's evaluation backend to the parent's
    (``None`` leaves the worker on its own default).  All backends are
    bitwise-conformant, so this is about performance parity — a numba
    parent should not fan out to numpy workers — not correctness.
    """

    max_rounds: int = 4
    tenure: int = 64
    order: str = "first"
    allow_worsening_moves: bool = True
    kernel: str | None = None

    def cache_key(self) -> tuple:
        """Hashable identity for the worker-side repairer cache."""
        return (
            self.max_rounds,
            self.tenure,
            self.order,
            self.allow_worsening_moves,
            self.kernel,
        )


def _kernel_scope(kernel: str | None):
    """The worker-side kernel context for one task (no-op when unset)."""
    return use_kernel(kernel) if kernel else contextlib.nullcontext()


def _repair_task(
    spec: InstanceSpec | str,
    params: RepairParams,
    genomes: IntArray,
    rows: IntArray,
    root: np.random.SeedSequence,
    batch_index: int,
):
    """Repair a batch of infeasible genomes inside a worker process.

    Returns the repaired rows, the task's metric snapshot (merged into
    the parent registry) and the busy seconds spent (utilization)."""
    stopwatch = Stopwatch().start()
    with use_registry(MetricsRegistry()) as registry, _kernel_scope(params.kernel):
        attached = attach_instance(spec)
        repairer = attached.repairer(params)
        repaired = np.empty_like(genomes)
        # The parent dispatches only batch-screened infeasible rows, so
        # the whole chunk's usage is scored as one kernel tile and the
        # per-genome feasibility pre-check is skipped — the same fast
        # path the serial loop takes (bitwise-identical results).
        tile = repairer._usage_tile(genomes, np.arange(genomes.shape[0]))
        for local, row in enumerate(rows):
            rng = np.random.default_rng(
                derive_sequence(root, batch_index, int(row))
            )
            repaired[local] = repairer.repair_genome(
                genomes[local],
                rng=rng,
                usage=None if tile is None else tile[local],
                known_infeasible=True,
            )
        snapshot = registry.snapshot()
    stopwatch.stop()
    return repaired, snapshot, stopwatch.elapsed


def _evaluate_task(
    spec: InstanceSpec | str,
    binding: tuple[tuple[str, Any], ...],
    population: IntArray,
    kernel: str | None = None,
):
    """Evaluate a population chunk inside a worker process."""
    stopwatch = Stopwatch().start()
    with use_registry(MetricsRegistry()) as registry, _kernel_scope(kernel):
        attached = attach_instance(spec)
        result = attached.evaluator(binding).evaluate_population(population)
        snapshot = registry.snapshot()
    stopwatch.stop()
    return result.objectives, result.violations, snapshot, stopwatch.elapsed


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class ParallelEngine:
    """Persistent worker-pool executor for intra-run parallelism.

    Parameters
    ----------
    n_workers:
        Worker processes.  ``1`` is legal (useful for exercising the
        cross-process path deterministically); serial callers simply
        don't construct an engine.
    tasks_per_worker:
        Batching granularity: one dispatch splits its rows into at most
        ``n_workers * tasks_per_worker`` tasks, so a straggler cannot
        idle the rest of the pool while tasks stay big enough to
        amortize dispatch overhead.
    min_chunk_rows:
        Floor on rows per task: a dispatch never cuts chunks smaller
        than this, preferring fewer, larger tasks when the row count is
        modest.  With the batched kernel tile a worker scores its whole
        chunk in one vectorized pass, so larger chunks amortize both
        the IPC round-trip *and* the tile setup.
    min_dispatch_rows:
        Below this many infeasible rows the caller should stay serial
        (dispatch overhead would dominate).
    start_method:
        ``multiprocessing`` start method; default prefers ``fork``
        (cheap workers) where available.

    Lifecycle: the pool starts lazily on first dispatch and survives
    across generations, windows and allocate calls until :meth:`close`
    — that persistence is the point.  Every failure path (pool won't
    start, shared memory unavailable, broken pool mid-run) marks the
    engine unavailable, counts ``engine.parallel.fallbacks`` and makes
    every later dispatch return ``None`` so callers degrade to serial.
    """

    def __init__(
        self,
        n_workers: int,
        *,
        tasks_per_worker: int = 2,
        min_chunk_rows: int = 8,
        min_dispatch_rows: int = 2,
        start_method: str | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValidationError(f"n_workers must be >= 1, got {n_workers}")
        if tasks_per_worker < 1:
            raise ValidationError(
                f"tasks_per_worker must be >= 1, got {tasks_per_worker}"
            )
        if min_chunk_rows < 1:
            raise ValidationError(
                f"min_chunk_rows must be >= 1, got {min_chunk_rows}"
            )
        self.n_workers = int(n_workers)
        self.tasks_per_worker = int(tasks_per_worker)
        self.min_chunk_rows = int(min_chunk_rows)
        self.min_dispatch_rows = int(min_dispatch_rows)
        if start_method is None:
            start_method = (
                "fork" if "fork" in get_all_start_methods() else None
            )
        self._start_method = start_method
        self._pool: ProcessPoolExecutor | None = None
        self._broken = False
        self._closed = False
        self._published: dict[tuple, SharedInstance] = {}
        #: Segments whose full spec completed at least one batch — later
        #: batches ship only the segment name (spec-ref dispatch).
        self._spec_sent: set[str] = set()
        get_registry().gauge("engine.parallel.workers", self.n_workers)

    # ------------------------------------------------------------------
    @property
    def available(self) -> bool:
        """Whether dispatches can still be attempted."""
        return not (self._broken or self._closed)

    def _fallback(self, reason: str) -> None:
        self._broken = True
        get_registry().count("engine.parallel.fallbacks", reason=reason)

    def _ensure_pool(self) -> ProcessPoolExecutor | None:
        if not self.available:
            return None
        if self._pool is None:
            try:
                context = (
                    get_context(self._start_method)
                    if self._start_method
                    else None
                )
                self._pool = ProcessPoolExecutor(
                    max_workers=self.n_workers, mp_context=context
                )
            except Exception:
                self._fallback("pool_start")
                return None
        return self._pool

    # ------------------------------------------------------------------
    def publish(
        self,
        compiled: CompiledProblem,
        base_usage: FloatArray | None = None,
        previous_assignment: IntArray | None = None,
    ) -> InstanceSpec | None:
        """The shared segment for one (instance, window binding) pair.

        Keyed by the compilation fingerprint plus the binding arrays'
        bytes, so re-dispatching the same window attaches the existing
        segment instead of re-publishing."""
        key = (
            compiled.fingerprint,
            None if base_usage is None else bytes(
                np.ascontiguousarray(base_usage, dtype=np.float64)
            ),
            None if previous_assignment is None else bytes(
                np.ascontiguousarray(previous_assignment, dtype=np.int64)
            ),
        )
        shared = self._published.get(key)
        if shared is not None:
            return shared.spec
        try:
            shared = publish_instance(compiled, base_usage, previous_assignment)
        except Exception:
            self._fallback("shared_memory")
            return None
        self._published[key] = shared
        return shared.spec

    # ------------------------------------------------------------------
    def _payload(self, spec: InstanceSpec) -> InstanceSpec | str:
        """Full spec on a segment's first batch, bare name afterwards.

        The spec carries the layout table and the whole group structure
        — kilobytes pickled into *every* task of *every* generation
        before this existed.  Once one batch over a segment completes,
        every pool worker has very likely attached it (tasks outnumber
        workers), so later batches ship the ~60-byte name and workers
        resolve it from their attachment cache; the parent repairs the
        rare miss by resubmitting that chunk with the spec.
        """
        return spec.segment if spec.segment in self._spec_sent else spec

    def _chunks(self, count: int) -> list[np.ndarray]:
        n_tasks = min(count, self.n_workers * self.tasks_per_worker)
        # Fewer, larger chunks: never cut below min_chunk_rows per task
        # (one task total when the whole dispatch is smaller than that).
        n_tasks = min(n_tasks, max(1, count // self.min_chunk_rows))
        return np.array_split(np.arange(count), n_tasks)

    def repair_rows(
        self,
        compiled: CompiledProblem,
        params: RepairParams,
        genomes: IntArray,
        rows: IntArray,
        *,
        root: np.random.SeedSequence,
        batch_index: int,
        base_usage: FloatArray | None = None,
    ) -> IntArray | None:
        """Fan one generation's infeasible slice out over the pool.

        ``genomes`` holds the infeasible genomes (one per entry of
        ``rows``, which carries their population indices — the
        coordinate the per-individual RNG stream is derived from).
        Returns the repaired genomes in the same order, or ``None`` on
        any failure (callers redo the work serially; the spawn-key RNG
        derivation makes that produce identical bytes)."""
        pool = self._ensure_pool()
        if pool is None:
            return None
        spec = self.publish(compiled, base_usage=base_usage)
        if spec is None:
            return None
        genomes = np.ascontiguousarray(genomes, dtype=np.int64)
        rows = np.asarray(rows, dtype=np.int64)
        registry = get_registry()
        chunks = self._chunks(rows.size)
        payload = self._payload(spec)
        stopwatch = Stopwatch().start()
        try:
            futures = [
                pool.submit(
                    _repair_task,
                    payload,
                    params,
                    genomes[chunk],
                    rows[chunk],
                    root,
                    batch_index,
                )
                for chunk in chunks
            ]
            parts: list[np.ndarray] = []
            busy = 0.0
            # Futures are consumed in submission order, so the merged
            # result is deterministic regardless of completion order.
            for chunk, future in zip(chunks, futures):
                try:
                    repaired, snapshot, elapsed = future.result()
                except _AttachMiss:
                    # A spec-ref landed on a worker that never saw the
                    # full spec (fresh/respawned worker): resubmit just
                    # this chunk with the spec.  Rare by construction.
                    registry.count("engine.parallel.specref.misses")
                    repaired, snapshot, elapsed = pool.submit(
                        _repair_task,
                        spec,
                        params,
                        genomes[chunk],
                        rows[chunk],
                        root,
                        batch_index,
                    ).result()
                parts.append(repaired)
                registry.merge(snapshot)
                registry.observe("engine.parallel.task_seconds", elapsed)
                busy += elapsed
        except Exception:
            self._fallback("dispatch")
            return None
        stopwatch.stop()
        self._spec_sent.add(spec.segment)
        registry.count("engine.parallel.batches")
        registry.count("engine.parallel.tasks", len(chunks))
        registry.count("engine.parallel.rows", rows.size)
        registry.observe("engine.parallel.batch_rows", rows.size)
        registry.observe("engine.parallel.chunk_rows", rows.size / len(chunks))
        if stopwatch.elapsed > 0:
            registry.gauge(
                "engine.parallel.worker_utilization",
                min(1.0, busy / (stopwatch.elapsed * self.n_workers)),
            )
        return np.concatenate(parts, axis=0)

    # ------------------------------------------------------------------
    def evaluate_rows(
        self,
        compiled: CompiledProblem,
        population: IntArray,
        *,
        base_usage: FloatArray | None = None,
        previous_assignment: IntArray | None = None,
        **evaluator_kwargs,
    ):
        """Chunked ``evaluate_population`` over the pool (or ``None``).

        Row evaluation is independent, so splitting the population and
        re-concatenating chunk results reproduces the serial result
        exactly (same per-row float operations, same order)."""
        from repro.objectives.evaluator import EvaluationResult

        pool = self._ensure_pool()
        if pool is None:
            return None
        spec = self.publish(
            compiled,
            base_usage=base_usage,
            previous_assignment=previous_assignment,
        )
        if spec is None:
            return None
        population = np.ascontiguousarray(population, dtype=np.int64)
        binding = tuple(sorted(evaluator_kwargs.items()))
        registry = get_registry()
        chunks = self._chunks(population.shape[0])
        payload = self._payload(spec)
        kernel = active_kernel().name
        try:
            futures = [
                pool.submit(
                    _evaluate_task, payload, binding, population[chunk], kernel
                )
                for chunk in chunks
            ]
            objectives: list[np.ndarray] = []
            violations: list[np.ndarray] = []
            for chunk, future in zip(chunks, futures):
                try:
                    obj, vio, snapshot, elapsed = future.result()
                except _AttachMiss:
                    registry.count("engine.parallel.specref.misses")
                    obj, vio, snapshot, elapsed = pool.submit(
                        _evaluate_task, spec, binding, population[chunk], kernel
                    ).result()
                objectives.append(obj)
                violations.append(vio)
                registry.merge(snapshot)
                registry.observe("engine.parallel.task_seconds", elapsed)
        except Exception:
            self._fallback("dispatch")
            return None
        self._spec_sent.add(spec.segment)
        registry.count("engine.parallel.eval_batches")
        registry.count("engine.parallel.eval_rows", population.shape[0])
        return EvaluationResult(
            objectives=np.concatenate(objectives, axis=0),
            violations=np.concatenate(violations, axis=0),
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the pool down and unlink every published segment."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        for shared in self._published.values():
            shared.close()
        self._published.clear()

    def __enter__(self) -> "ParallelEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else ("broken" if self._broken else "ok")
        return (
            f"ParallelEngine(n_workers={self.n_workers}, "
            f"segments={len(self._published)}, state={state})"
        )


# ----------------------------------------------------------------------
# Evaluator facade for chunked population evaluation
# ----------------------------------------------------------------------
class ChunkedPopulationEvaluator:
    """Drop-in :class:`PopulationEvaluator` facade that fans large
    ``evaluate_population`` calls out over a :class:`ParallelEngine`.

    Populations below ``min_rows`` — and every call after the engine
    degrades — go straight to the wrapped serial evaluator.  Attribute
    access falls through to the inner evaluator, so callers that only
    need ``request``/``infrastructure``/``evaluate`` see no difference.
    """

    def __init__(
        self,
        inner,
        engine: ParallelEngine,
        compiled: CompiledProblem,
        *,
        min_rows: int = 256,
        base_usage: FloatArray | None = None,
        previous_assignment: IntArray | None = None,
        **evaluator_kwargs,
    ) -> None:
        self.inner = inner
        self.engine = engine
        self.compiled = compiled
        self.min_rows = int(min_rows)
        self._base_usage = base_usage
        self._previous_assignment = previous_assignment
        self._evaluator_kwargs = evaluator_kwargs

    def evaluate_population(self, population: IntArray):
        """Evaluate a population, fanning large batches out to the pool."""
        population = np.ascontiguousarray(population, dtype=np.int64)
        if population.shape[0] >= self.min_rows and self.engine.available:
            result = self.engine.evaluate_rows(
                self.compiled,
                population,
                base_usage=self._base_usage,
                previous_assignment=self._previous_assignment,
                **self._evaluator_kwargs,
            )
            if result is not None:
                # Keep the serial evaluator's budget accounting honest.
                self.inner._evaluations += population.shape[0]
                return result
        return self.inner.evaluate_population(population)

    def __getattr__(self, name: str):
        return getattr(self.inner, name)
