"""ProblemCache: LRU reuse of :class:`CompiledProblem` across solves.

Repeated solves over a stream of windows keep presenting the scheduler
with instances it has seen before — the reconfiguration cycle re-solves
the *same* merged tenant set every pass, ablation sweeps re-run one
scenario per algorithm, and benchmark harnesses replay fixed seeds.
The cache keys compilations by the instance fingerprint so all of them
pay the compile cost once.

Telemetry (see ``docs/OBSERVABILITY.md``):

* ``engine.cache.hits`` / ``engine.cache.misses`` — counter per lookup;
* ``engine.cache.evictions`` — LRU entries dropped at capacity;
* ``engine.cache.collisions`` — fingerprint matched but the instance
  did not (recompiled defensively);
* ``engine.cache.compile_seconds`` — histogram of compile cost paid on
  misses.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.engine.compiled import CompiledProblem
from repro.errors import ValidationError
from repro.model.infrastructure import Infrastructure
from repro.model.request import Request
from repro.telemetry import get_registry

__all__ = ["ProblemCache"]


class ProblemCache:
    """Bounded LRU map ``fingerprint -> CompiledProblem``.

    Parameters
    ----------
    maxsize:
        Entries kept; the least recently used compilation is evicted
        beyond that.  Window streams rarely hold more than a handful of
        live instances, so the default is deliberately small.
    """

    def __init__(self, maxsize: int = 32) -> None:
        if maxsize < 1:
            raise ValidationError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self._entries: OrderedDict[str, CompiledProblem] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.collisions = 0

    # ------------------------------------------------------------------
    def get(
        self, infrastructure: Infrastructure, request: Request
    ) -> CompiledProblem:
        """The compilation for one instance (compiling on first sight)."""
        registry = get_registry()
        fingerprint = CompiledProblem.fingerprint_of(infrastructure, request)
        compiled = self._entries.get(fingerprint)
        if compiled is not None:
            if compiled.matches(infrastructure, request):
                self._entries.move_to_end(fingerprint)
                self.hits += 1
                registry.count("engine.cache.hits")
                return compiled
            # Same digest, different instance: never serve a wrong
            # compilation — recompile and replace the poisoned slot.
            self.collisions += 1
            registry.count("engine.cache.collisions")
        self.misses += 1
        registry.count("engine.cache.misses")
        compiled = CompiledProblem(infrastructure, request)
        registry.observe("engine.cache.compile_seconds", compiled.compile_seconds)
        self._entries[fingerprint] = compiled
        self._entries.move_to_end(fingerprint)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1
            registry.count("engine.cache.evictions")
        return compiled

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def clear(self) -> None:
        """Drop every cached compilation (counters are kept)."""
        self._entries.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProblemCache(size={len(self._entries)}/{self.maxsize}, "
            f"hits={self.hits}, misses={self.misses})"
        )
