"""Experiment runner: algorithms × size sweep × repetitions.

The paper reports results "averaged ... over 100 runs across all
randomly generated scenarios".  :class:`ExperimentRunner` reproduces
that protocol: for each sweep point it generates ``runs`` scenarios
(deterministically from the experiment seed, identical across
algorithms), executes every algorithm on every scenario, and
aggregates the four criteria per (algorithm, size).

Allocators are supplied as zero-argument *factories* so stateful
algorithms (Round Robin's rotation pointer) start fresh each run.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.allocator import Allocator
from repro.errors import ValidationError
from repro.evaluation.metrics import (
    AggregateMetrics,
    RunRecord,
    aggregate_records,
)
from repro.runtime.signals import shutdown_requested
from repro.telemetry import MetricsRegistry, MetricsSnapshot, use_registry
from repro.workloads.generator import Scenario, ScenarioGenerator, ScenarioSpec

__all__ = ["AllocatorFactory", "SweepResult", "ExperimentRunner"]

AllocatorFactory = Callable[[], Allocator]


@dataclass
class SweepResult:
    """All records of one experiment, with aggregation helpers.

    ``telemetry`` carries the sweep's merged
    :class:`~repro.telemetry.MetricsSnapshot` — for parallel runs this
    is the fold of every worker's per-cell snapshot, so counters like
    ``nsga.evaluations`` aggregate across processes.  It is not part
    of the CSV round-trip.
    """

    records: list[RunRecord] = field(default_factory=list)
    telemetry: MetricsSnapshot | None = None
    #: True when the sweep stopped early on a shutdown request; the
    #: completed cells are journaled and a rerun with the same
    #: ``checkpoint_dir`` picks up where this one stopped.
    interrupted: bool = False

    # Column order of the CSV export (and of from_csv's expectations).
    _CSV_FIELDS = (
        "algorithm",
        "servers",
        "vms",
        "requests",
        "elapsed",
        "rejection_rate",
        "violations",
        "provider_cost",
        "downtime_cost",
        "migration_cost",
        "evaluations",
        "seed",
    )

    def to_csv(self, path) -> "Path":
        """Write every record to ``path`` (one row per run)."""
        import csv
        from pathlib import Path

        path = Path(path)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self._CSV_FIELDS)
            for record in self.records:
                writer.writerow(
                    [getattr(record, field) for field in self._CSV_FIELDS]
                )
        return path

    @classmethod
    def from_csv(cls, path) -> "SweepResult":
        """Reload an exported sweep (inverse of :meth:`to_csv`)."""
        import csv
        from pathlib import Path

        records: list[RunRecord] = []
        with Path(path).open(newline="") as handle:
            reader = csv.DictReader(handle)
            for row in reader:
                records.append(
                    RunRecord(
                        algorithm=row["algorithm"],
                        servers=int(row["servers"]),
                        vms=int(row["vms"]),
                        requests=int(row["requests"]),
                        elapsed=float(row["elapsed"]),
                        rejection_rate=float(row["rejection_rate"]),
                        violations=int(row["violations"]),
                        provider_cost=float(row["provider_cost"]),
                        downtime_cost=float(row["downtime_cost"]),
                        migration_cost=float(row["migration_cost"]),
                        evaluations=int(row["evaluations"]),
                        seed=None if row["seed"] in ("", "None") else int(row["seed"]),
                    )
                )
        return cls(records=records)

    def algorithms(self) -> list[str]:
        """Distinct algorithm labels, in first-seen order."""
        seen: list[str] = []
        for record in self.records:
            if record.algorithm not in seen:
                seen.append(record.algorithm)
        return seen

    def sizes(self) -> list[tuple[int, int]]:
        """Distinct (servers, vms) sweep points, in first-seen order."""
        seen: list[tuple[int, int]] = []
        for record in self.records:
            key = (record.servers, record.vms)
            if key not in seen:
                seen.append(key)
        return seen

    def aggregate(self, algorithm: str, size: tuple[int, int]) -> AggregateMetrics:
        """Averages for one (algorithm, sweep point) cell."""
        group = [
            r
            for r in self.records
            if r.algorithm == algorithm and (r.servers, r.vms) == size
        ]
        if not group:
            raise ValidationError(
                f"no records for algorithm={algorithm!r} size={size}"
            )
        return aggregate_records(group)

    def series(self, metric: str) -> dict[str, list[float]]:
        """Figure series: per algorithm, the metric across sweep sizes."""
        sizes = self.sizes()
        return {
            algorithm: [
                self.aggregate(algorithm, size).metric(metric) for size in sizes
            ]
            for algorithm in self.algorithms()
        }


class ExperimentRunner:
    """Run a set of algorithm factories over a scenario sweep.

    Parameters
    ----------
    factories:
        Mapping of label → allocator factory.  The label overrides the
        allocator's own name in the records (so two configurations of
        the same algorithm can coexist in one experiment).
    runs:
        Scenario repetitions per sweep point (paper: 100).
    seed:
        Root seed; scenario i of sweep point j is identical for every
        algorithm and stable across processes.
    """

    def __init__(
        self,
        factories: dict[str, AllocatorFactory],
        runs: int = 5,
        seed: int = 0,
    ) -> None:
        if not factories:
            raise ValidationError("need at least one allocator factory")
        if runs < 1:
            raise ValidationError(f"runs must be >= 1, got {runs}")
        self.factories = dict(factories)
        self.runs = int(runs)
        self.seed = int(seed)

    # ------------------------------------------------------------------
    def _scenarios_for(self, spec: ScenarioSpec, point_index: int) -> list[Scenario]:
        generator = ScenarioGenerator(
            spec, seed=self.seed + 7919 * point_index
        )
        return generator.generate_many(self.runs)

    # ------------------------------------------------------------------
    # Per-cell resume journal
    # ------------------------------------------------------------------
    @staticmethod
    def _load_cell_journal(path: Path) -> dict[tuple[int, int, str], RunRecord]:
        """Completed cells from a previous (possibly killed) sweep.

        Each journal line is one finished cell.  A process dying
        mid-append leaves at most one torn final line, which fails to
        parse and is dropped — the cell simply reruns.
        """
        completed: dict[tuple[int, int, str], RunRecord] = {}
        if not path.exists():
            return completed
        for line in path.read_text().splitlines():
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
                point_index, run_index, label = entry["key"]
                record = RunRecord(**entry["record"])
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                continue  # torn or foreign line: rerun that cell
            completed[(int(point_index), int(run_index), str(label))] = record
        return completed

    @staticmethod
    def _append_cell(
        handle, key: tuple[int, int, str], record: RunRecord
    ) -> None:
        """Durably append one finished cell to the journal."""
        handle.write(
            json.dumps({"key": list(key), "record": record.__dict__}) + "\n"
        )
        handle.flush()
        os.fsync(handle.fileno())

    def run_sweep(
        self,
        specs: Sequence[ScenarioSpec],
        checkpoint_dir: str | Path | None = None,
    ) -> SweepResult:
        """Execute the full experiment and return every record.

        With ``checkpoint_dir``, every finished (point, run, algorithm)
        cell is appended to ``cells.jsonl`` in that directory, and a
        rerun reloads completed cells instead of recomputing them — so
        a killed 100-run campaign resumes at the cell it died in.  A
        shutdown request (SIGTERM/SIGINT under
        :class:`~repro.runtime.signals.GracefulShutdown`) stops the
        sweep at the next cell boundary with ``interrupted=True``.
        Reloaded cells contribute their records but not their nested
        telemetry (that was consumed by the run that computed them).
        """
        journal = None
        completed: dict[tuple[int, int, str], RunRecord] = {}
        if checkpoint_dir is not None:
            directory = Path(checkpoint_dir)
            directory.mkdir(parents=True, exist_ok=True)
            journal_path = directory / "cells.jsonl"
            completed = self._load_cell_journal(journal_path)
            journal = journal_path.open("a")

        result = SweepResult()
        # The sweep runs against its own scoped registry, so nested
        # instrumentation (NSGA generations, CP nodes, repair moves)
        # lands in this sweep's snapshot and nowhere else.
        registry = MetricsRegistry()
        try:
            with use_registry(registry):
                for point_index, spec in enumerate(specs):
                    if result.interrupted:
                        break
                    scenarios = self._scenarios_for(spec, point_index)
                    for run_index, scenario in enumerate(scenarios):
                        if result.interrupted:
                            break
                        for label, factory in self.factories.items():
                            key = (point_index, run_index, label)
                            if key in completed:
                                result.records.append(completed[key])
                                registry.count("runtime.sweep.cells_skipped")
                                continue
                            if shutdown_requested():
                                result.interrupted = True
                                break
                            allocator = factory()
                            outcome = allocator.allocate(
                                scenario.infrastructure, scenario.requests
                            )
                            registry.count("evaluation.cells", algorithm=label)
                            registry.observe(
                                "evaluation.cell_seconds",
                                outcome.elapsed,
                                algorithm=label,
                            )
                            record = RunRecord.from_outcome(
                                outcome,
                                servers=spec.servers,
                                vms=spec.vms,
                                seed=run_index,
                            )
                            # The label keys the experiment, not the class name.
                            record = RunRecord(
                                **{**record.__dict__, "algorithm": label}
                            )
                            result.records.append(record)
                            if journal is not None:
                                # runtime.sweep.* counters only exist on
                                # journaled sweeps, keeping serial and
                                # parallel telemetry comparable.
                                self._append_cell(journal, key, record)
                                registry.count("runtime.sweep.cells_completed")
        finally:
            if journal is not None:
                journal.close()
        result.telemetry = registry.snapshot()
        return result
