"""Plain-text rendering of tables and figure series.

The benches regenerate the paper's figures as text tables (size sweep
down the rows, algorithms across the columns) so the trends — who wins,
by roughly what factor, where the crossovers fall — are readable in a
terminal and diffable in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ValidationError
from repro.evaluation.runner import SweepResult

__all__ = ["format_table", "format_series_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width text table with a header rule."""
    headers = [str(h) for h in headers]
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValidationError(
                f"row width {len(row)} != header width {len(headers)}"
            )
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in str_rows)) if str_rows else len(headers[c])
        for c in range(len(headers))
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    return str(cell)


def format_series_table(
    result: SweepResult, metric: str, title: str | None = None
) -> str:
    """One figure as text: sizes down the rows, algorithms across."""
    sizes = result.sizes()
    series = result.series(metric)
    headers = ["servers x vms", *series.keys()]
    rows = []
    for idx, (servers, vms) in enumerate(sizes):
        rows.append(
            [f"{servers} x {vms}", *(series[alg][idx] for alg in series)]
        )
    return format_table(headers, rows, title=title)
