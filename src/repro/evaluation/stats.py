"""Statistical comparison of algorithms across paired runs.

The paper reports means over 100 runs; deciding whether "A rejects
less than B" is real or noise needs uncertainty estimates.  Because
the experiment runner gives every algorithm the *same* scenario
stream, runs pair naturally by (sweep point, scenario seed), and the
right tool is the paired bootstrap:

* :func:`paired_differences` — align two record lists by scenario and
  return the per-scenario metric differences;
* :func:`bootstrap_ci` — percentile bootstrap confidence interval of
  the mean of a sample;
* :func:`compare_algorithms` — end-to-end: mean difference of a metric
  between two algorithms in a sweep, with its CI and a significance
  verdict (CI excludes zero).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.evaluation.metrics import RunRecord
from repro.evaluation.runner import SweepResult
from repro.types import FloatArray, SeedLike
from repro.utils.rng import as_generator

__all__ = ["paired_differences", "bootstrap_ci", "compare_algorithms", "Comparison"]

_METRIC_GETTERS = {
    "execution_time": lambda r: r.elapsed,
    "rejection_rate": lambda r: r.rejection_rate,
    "violations": lambda r: float(r.violations),
    "provider_cost": lambda r: r.provider_cost,
    "cost_per_request": lambda r: r.cost_per_accepted_request,
}


def paired_differences(
    records_a: list[RunRecord],
    records_b: list[RunRecord],
    metric: str,
) -> FloatArray:
    """Per-scenario metric differences (A − B), paired by
    (servers, vms, seed).  Raises when the pairing is incomplete."""
    if metric not in _METRIC_GETTERS:
        raise ValidationError(
            f"unknown metric {metric!r}; choose from {sorted(_METRIC_GETTERS)}"
        )
    getter = _METRIC_GETTERS[metric]

    def index(records: list[RunRecord]) -> dict:
        table = {}
        for record in records:
            key = (record.servers, record.vms, record.seed)
            if key in table:
                raise ValidationError(f"duplicate record for scenario {key}")
            table[key] = record
        return table

    a_by_key = index(records_a)
    b_by_key = index(records_b)
    if set(a_by_key) != set(b_by_key):
        raise ValidationError(
            "record sets cover different scenarios; pairing impossible"
        )
    keys = sorted(a_by_key)
    return np.array([getter(a_by_key[k]) - getter(b_by_key[k]) for k in keys])


def bootstrap_ci(
    sample: FloatArray,
    confidence: float = 0.95,
    n_resamples: int = 2_000,
    seed: SeedLike = 0,
) -> tuple[float, float]:
    """Percentile bootstrap CI of the sample mean."""
    sample = np.asarray(sample, dtype=np.float64)
    if sample.size == 0:
        raise ValidationError("cannot bootstrap an empty sample")
    if not (0.0 < confidence < 1.0):
        raise ValidationError(f"confidence must lie in (0, 1), got {confidence}")
    rng = as_generator(seed)
    idx = rng.integers(0, sample.size, size=(n_resamples, sample.size))
    means = sample[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(means, alpha)),
        float(np.quantile(means, 1.0 - alpha)),
    )


@dataclass(frozen=True)
class Comparison:
    """Result of one paired algorithm comparison."""

    algorithm_a: str
    algorithm_b: str
    metric: str
    mean_difference: float
    ci_low: float
    ci_high: float
    n_pairs: int

    @property
    def significant(self) -> bool:
        """True when the CI excludes zero."""
        return self.ci_low > 0.0 or self.ci_high < 0.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        verdict = "significant" if self.significant else "not significant"
        return (
            f"{self.algorithm_a} - {self.algorithm_b} on {self.metric}: "
            f"{self.mean_difference:+.4f} "
            f"[{self.ci_low:+.4f}, {self.ci_high:+.4f}] ({verdict}, "
            f"n={self.n_pairs})"
        )


def compare_algorithms(
    result: SweepResult,
    algorithm_a: str,
    algorithm_b: str,
    metric: str,
    confidence: float = 0.95,
    seed: SeedLike = 0,
) -> Comparison:
    """Paired bootstrap comparison of two algorithms in one sweep."""
    records_a = [r for r in result.records if r.algorithm == algorithm_a]
    records_b = [r for r in result.records if r.algorithm == algorithm_b]
    if not records_a or not records_b:
        raise ValidationError(
            f"sweep lacks records for {algorithm_a!r} and/or {algorithm_b!r}"
        )
    diffs = paired_differences(records_a, records_b, metric)
    finite = diffs[np.isfinite(diffs)]
    if finite.size == 0:
        raise ValidationError("no finite paired differences to compare")
    ci_low, ci_high = bootstrap_ci(finite, confidence=confidence, seed=seed)
    return Comparison(
        algorithm_a=algorithm_a,
        algorithm_b=algorithm_b,
        metric=metric,
        mean_difference=float(finite.mean()),
        ci_low=ci_low,
        ci_high=ci_high,
        n_pairs=int(finite.size),
    )
