"""Per-run records and aggregation of the paper's four criteria.

One :class:`RunRecord` captures everything a single (algorithm,
scenario) execution produced; :func:`aggregate_records` averages any
homogeneous group of records into :class:`AggregateMetrics` — the
numbers behind every point of Figures 7-11.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.allocator import BatchOutcome
from repro.errors import ValidationError

__all__ = ["RunRecord", "AggregateMetrics", "aggregate_records"]


@dataclass(frozen=True)
class RunRecord:
    """One algorithm execution on one scenario."""

    algorithm: str
    servers: int
    vms: int
    requests: int
    elapsed: float
    rejection_rate: float
    violations: int
    provider_cost: float
    downtime_cost: float
    migration_cost: float
    evaluations: int = 0
    seed: int | None = None

    @property
    def accepted_requests(self) -> int:
        """Requests actually hosted in this run."""
        return round(self.requests * (1.0 - self.rejection_rate))

    @property
    def cost_per_accepted_request(self) -> float:
        """The paper's future-work metric: "a normalized and
        standardized metric on a cost per request basis".

        Dividing the provider cost by the number of *accepted* requests
        removes the bias Figure 11's discussion warns about — an
        algorithm that rejects most demands looks cheap in absolute
        cost.  ``inf`` when nothing was accepted (all cost, no revenue
        base).
        """
        accepted = self.accepted_requests
        if accepted == 0:
            return float("inf")
        return self.provider_cost / accepted

    @classmethod
    def from_outcome(
        cls,
        outcome: BatchOutcome,
        servers: int,
        vms: int,
        seed: int | None = None,
    ) -> "RunRecord":
        """Lift a :class:`BatchOutcome` into a record."""
        return cls(
            algorithm=outcome.algorithm,
            servers=int(servers),
            vms=int(vms),
            requests=outcome.n_requests,
            elapsed=outcome.elapsed,
            rejection_rate=outcome.rejection_rate,
            violations=outcome.violations,
            provider_cost=outcome.provider_cost,
            downtime_cost=float(outcome.objectives[1]),
            migration_cost=float(outcome.objectives[2]),
            evaluations=outcome.evaluations,
            seed=seed,
        )


@dataclass(frozen=True)
class AggregateMetrics:
    """Mean and standard deviation over a group of runs."""

    algorithm: str
    servers: int
    vms: int
    runs: int
    mean_elapsed: float
    std_elapsed: float
    mean_rejection_rate: float
    std_rejection_rate: float
    mean_violations: float
    std_violations: float
    mean_provider_cost: float
    std_provider_cost: float
    mean_cost_per_request: float = float("nan")

    def metric(self, name: str) -> float:
        """Look up an aggregated mean by figure-friendly name."""
        mapping = {
            "execution_time": self.mean_elapsed,
            "rejection_rate": self.mean_rejection_rate,
            "violations": self.mean_violations,
            "provider_cost": self.mean_provider_cost,
            "cost_per_request": self.mean_cost_per_request,
        }
        try:
            return mapping[name]
        except KeyError:
            raise ValidationError(
                f"unknown metric {name!r}; choose from {sorted(mapping)}"
            ) from None


def aggregate_records(records: list[RunRecord]) -> AggregateMetrics:
    """Average a homogeneous group (same algorithm and size) of runs."""
    if not records:
        raise ValidationError("cannot aggregate zero records")
    algorithms = {r.algorithm for r in records}
    sizes = {(r.servers, r.vms) for r in records}
    if len(algorithms) != 1 or len(sizes) != 1:
        raise ValidationError(
            f"records are not homogeneous: algorithms={algorithms}, sizes={sizes}"
        )
    elapsed = np.array([r.elapsed for r in records])
    rejection = np.array([r.rejection_rate for r in records])
    violations = np.array([r.violations for r in records], dtype=np.float64)
    cost = np.array([r.provider_cost for r in records])
    per_request = np.array([r.cost_per_accepted_request for r in records])
    finite = per_request[np.isfinite(per_request)]
    mean_per_request = float(finite.mean()) if finite.size else float("inf")
    (servers, vms), = sizes
    return AggregateMetrics(
        algorithm=records[0].algorithm,
        servers=servers,
        vms=vms,
        runs=len(records),
        mean_elapsed=float(elapsed.mean()),
        std_elapsed=float(elapsed.std()),
        mean_rejection_rate=float(rejection.mean()),
        std_rejection_rate=float(rejection.std()),
        mean_violations=float(violations.mean()),
        std_violations=float(violations.std()),
        mean_provider_cost=float(cost.mean()),
        std_provider_cost=float(cost.std()),
        mean_cost_per_request=mean_per_request,
    )
