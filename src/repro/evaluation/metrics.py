"""Per-run records and aggregation of the paper's four criteria.

One :class:`RunRecord` captures everything a single (algorithm,
scenario) execution produced; :func:`aggregate_records` averages any
homogeneous group of records into :class:`AggregateMetrics` — the
numbers behind every point of Figures 7-11.

:class:`ScenarioMetrics` extends the lens to *dynamic* scenario runs
(``repro.workloads.scenarios``): the same four paper criteria folded
over every window of a churn/traffic/failure stream, plus the two
operations metrics the paper's static evaluation cannot express —
SLA violations (service interruptions of already-accepted tenants) and
migration churn (forced + planned VM moves per window).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.allocator import BatchOutcome
from repro.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (scheduler → metrics)
    from repro.scheduler.window import WindowReport

__all__ = [
    "RunRecord",
    "AggregateMetrics",
    "aggregate_records",
    "ScenarioMetrics",
    "scenario_metrics",
]


@dataclass(frozen=True)
class RunRecord:
    """One algorithm execution on one scenario."""

    algorithm: str
    servers: int
    vms: int
    requests: int
    elapsed: float
    rejection_rate: float
    violations: int
    provider_cost: float
    downtime_cost: float
    migration_cost: float
    evaluations: int = 0
    seed: int | None = None

    @property
    def accepted_requests(self) -> int:
        """Requests actually hosted in this run."""
        return round(self.requests * (1.0 - self.rejection_rate))

    @property
    def cost_per_accepted_request(self) -> float:
        """The paper's future-work metric: "a normalized and
        standardized metric on a cost per request basis".

        Dividing the provider cost by the number of *accepted* requests
        removes the bias Figure 11's discussion warns about — an
        algorithm that rejects most demands looks cheap in absolute
        cost.  ``inf`` when nothing was accepted (all cost, no revenue
        base).
        """
        accepted = self.accepted_requests
        if accepted == 0:
            return float("inf")
        return self.provider_cost / accepted

    @classmethod
    def from_outcome(
        cls,
        outcome: BatchOutcome,
        servers: int,
        vms: int,
        seed: int | None = None,
    ) -> "RunRecord":
        """Lift a :class:`BatchOutcome` into a record."""
        return cls(
            algorithm=outcome.algorithm,
            servers=int(servers),
            vms=int(vms),
            requests=outcome.n_requests,
            elapsed=outcome.elapsed,
            rejection_rate=outcome.rejection_rate,
            violations=outcome.violations,
            provider_cost=outcome.provider_cost,
            downtime_cost=float(outcome.objectives[1]),
            migration_cost=float(outcome.objectives[2]),
            evaluations=outcome.evaluations,
            seed=seed,
        )


@dataclass(frozen=True)
class AggregateMetrics:
    """Mean and standard deviation over a group of runs."""

    algorithm: str
    servers: int
    vms: int
    runs: int
    mean_elapsed: float
    std_elapsed: float
    mean_rejection_rate: float
    std_rejection_rate: float
    mean_violations: float
    std_violations: float
    mean_provider_cost: float
    std_provider_cost: float
    mean_cost_per_request: float = float("nan")

    def metric(self, name: str) -> float:
        """Look up an aggregated mean by figure-friendly name."""
        mapping = {
            "execution_time": self.mean_elapsed,
            "rejection_rate": self.mean_rejection_rate,
            "violations": self.mean_violations,
            "provider_cost": self.mean_provider_cost,
            "cost_per_request": self.mean_cost_per_request,
        }
        try:
            return mapping[name]
        except KeyError:
            raise ValidationError(
                f"unknown metric {name!r}; choose from {sorted(mapping)}"
            ) from None


@dataclass(frozen=True)
class ScenarioMetrics:
    """One dynamic scenario run folded into comparable numbers.

    The four paper criteria, summed over windows:

    * ``execution_time`` — allocator wall-clock seconds (Σ per-window
      ``outcome.elapsed``);
    * ``rejection_rate`` — rejected decisions / all decisions (a
      displaced tenant re-placed later counts as a second decision);
    * ``violations`` — Σ per-window constraint violations of the
      returned allocations;
    * ``provider_cost`` — Σ per-window usage+operating cost of each
      window's batch allocation (cost *incurred per window*, so longer
      streams cost more — compare equal horizons).

    Plus the two dynamic-only criteria:

    * ``sla_violations`` — service interruptions of accepted tenants:
      each displacement (failure or drain evacuation) counts one, and a
      displaced tenant whose re-placement is *rejected* counts a second
      (interrupted, then lost).  ``sla_violation_rate`` divides by
      accepted decisions (0 when nothing was accepted);
    * ``migration_moves`` — VMs moved to a *different* server by forced
      re-placements and applied reoptimization plans.
      ``migration_churn`` is moves per window.
    """

    windows: int
    arrivals: int
    accepted: int
    rejected: int
    departures: int
    displaced: int
    failures: int
    drains: int
    execution_time: float
    violations: int
    provider_cost: float
    sla_violations: int
    migration_moves: int

    @property
    def rejection_rate(self) -> float:
        """Rejected decisions over all decisions (Figure 9, dynamic)."""
        total = self.accepted + self.rejected
        return self.rejected / total if total else 0.0

    @property
    def sla_violation_rate(self) -> float:
        """SLA violation events per accepted decision."""
        return self.sla_violations / self.accepted if self.accepted else 0.0

    @property
    def migration_churn(self) -> float:
        """Forced + planned VM moves per window."""
        return self.migration_moves / self.windows if self.windows else 0.0

    def as_row(self) -> list:
        """Figure-friendly row (used by ``python -m repro scenario run``)."""
        return [
            self.windows,
            f"{self.execution_time:.3f}",
            f"{self.rejection_rate:.3f}",
            self.violations,
            f"{self.provider_cost:.1f}",
            f"{self.sla_violation_rate:.3f}",
            f"{self.migration_churn:.2f}",
        ]


def scenario_metrics(
    reports: Sequence["WindowReport"], *, migration_moves: int = 0
) -> ScenarioMetrics:
    """Fold per-window reports of a dynamic run into :class:`ScenarioMetrics`.

    ``migration_moves`` is supplied by the scenario runner (it needs
    before/after placements to count moved VMs — see
    :meth:`repro.workloads.scenarios.CompiledScenario.run`); everything
    else is computed from the reports, so small hand-built fixtures can
    pin the definitions (``tests/unit/test_scenario_metrics.py``).
    """
    if not reports:
        raise ValidationError("cannot compute scenario metrics of zero windows")
    sla = 0
    for report in reports:
        rejected = set(report.rejected)
        # One event per interruption, a second when the tenant is lost.
        sla += len(report.displaced)
        sla += sum(1 for key in report.displaced if key in rejected)
    return ScenarioMetrics(
        windows=len(reports),
        arrivals=sum(len(r.arrivals) for r in reports),
        accepted=sum(len(r.accepted) for r in reports),
        rejected=sum(len(r.rejected) for r in reports),
        departures=sum(len(r.departures) for r in reports),
        displaced=sum(len(r.displaced) for r in reports),
        failures=sum(len(r.failures) for r in reports),
        drains=sum(len(r.drains) for r in reports),
        execution_time=float(
            sum(r.outcome.elapsed for r in reports if r.outcome is not None)
        ),
        violations=int(
            sum(r.outcome.violations for r in reports if r.outcome is not None)
        ),
        provider_cost=float(
            sum(r.outcome.provider_cost for r in reports if r.outcome is not None)
        ),
        sla_violations=sla,
        migration_moves=int(migration_moves),
    )


def aggregate_records(records: list[RunRecord]) -> AggregateMetrics:
    """Average a homogeneous group (same algorithm and size) of runs."""
    if not records:
        raise ValidationError("cannot aggregate zero records")
    algorithms = {r.algorithm for r in records}
    sizes = {(r.servers, r.vms) for r in records}
    if len(algorithms) != 1 or len(sizes) != 1:
        raise ValidationError(
            f"records are not homogeneous: algorithms={algorithms}, sizes={sizes}"
        )
    elapsed = np.array([r.elapsed for r in records])
    rejection = np.array([r.rejection_rate for r in records])
    violations = np.array([r.violations for r in records], dtype=np.float64)
    cost = np.array([r.provider_cost for r in records])
    per_request = np.array([r.cost_per_accepted_request for r in records])
    finite = per_request[np.isfinite(per_request)]
    mean_per_request = float(finite.mean()) if finite.size else float("inf")
    (servers, vms), = sizes
    return AggregateMetrics(
        algorithm=records[0].algorithm,
        servers=servers,
        vms=vms,
        runs=len(records),
        mean_elapsed=float(elapsed.mean()),
        std_elapsed=float(elapsed.std()),
        mean_rejection_rate=float(rejection.mean()),
        std_rejection_rate=float(rejection.std()),
        mean_violations=float(violations.mean()),
        std_violations=float(violations.std()),
        mean_provider_cost=float(cost.mean()),
        std_provider_cost=float(cost.std()),
        mean_cost_per_request=mean_per_request,
    )
