"""Convergence analysis over per-generation history.

The paper rejects the violation-penalty strategy because it "lead[s]
to serious increases in response times" — a claim about *convergence
speed*, not final quality.  These helpers turn an
:class:`~repro.ea.result.EvolutionResult` history into the numbers that
test such claims:

* :func:`evaluations_to_feasible` — budget spent before the population
  first contains a feasible individual;
* :func:`evaluations_to_within` — budget spent before the running best
  aggregate first comes within a factor of its final value;
* :func:`convergence_summary` — both, plus endpoints, as a dict;
* :func:`sparkline` — a terminal-friendly trace of any history series.
"""

from __future__ import annotations

import math

from repro.ea.result import EvolutionResult, GenerationStats

__all__ = [
    "evaluations_to_feasible",
    "evaluations_to_within",
    "convergence_summary",
    "sparkline",
]

_BARS = "▁▂▃▄▅▆▇█"


def _history(result: EvolutionResult) -> list[GenerationStats]:
    if not result.history:
        raise ValueError(
            "result has no history; run the engine with track_history=True"
        )
    return result.history


def evaluations_to_feasible(result: EvolutionResult) -> int | None:
    """Evaluations consumed when a feasible individual first appeared.

    None if the run never produced one.
    """
    for stats in _history(result):
        if stats.feasible_fraction > 0:
            return stats.evaluations
    return None


def evaluations_to_within(result: EvolutionResult, factor: float = 1.05) -> int:
    """Evaluations until the best aggregate first reached
    ``factor * final_best`` (1.05 = within 5% of the final value)."""
    if factor < 1.0:
        raise ValueError(f"factor must be >= 1, got {factor}")
    history = _history(result)
    final = history[-1].best_aggregate
    threshold = factor * final if final >= 0 else final / factor
    for stats in history:
        if stats.best_aggregate <= threshold:
            return stats.evaluations
    return history[-1].evaluations


def convergence_summary(result: EvolutionResult) -> dict:
    """One-line-able convergence record for reports and benches."""
    history = _history(result)
    return {
        "algorithm": result.algorithm,
        "generations": len(history) - 1,
        "evaluations": result.evaluations,
        "evals_to_feasible": evaluations_to_feasible(result),
        "evals_to_within_5pct": evaluations_to_within(result, 1.05),
        "final_best_aggregate": history[-1].best_aggregate,
        "final_feasible_fraction": history[-1].feasible_fraction,
        "elapsed": result.elapsed,
    }


def sparkline(values: list[float], width: int = 40) -> str:
    """Render a numeric series as a unicode bar sparkline.

    The series is resampled to ``width`` points; NaNs render as spaces.
    """
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    if not values:
        return ""
    if len(values) > width:
        step = len(values) / width
        values = [values[int(i * step)] for i in range(width)]
    finite = [v for v in values if not math.isnan(v)]
    if not finite:
        return " " * len(values)
    lo, hi = min(finite), max(finite)
    span = hi - lo if hi > lo else 1.0
    chars = []
    for v in values:
        if math.isnan(v):
            chars.append(" ")
        else:
            chars.append(_BARS[int((v - lo) / span * (len(_BARS) - 1))])
    return "".join(chars)
