"""Evaluation harness: the paper's Section IV measurement machinery.

* :mod:`metrics` — per-run records and multi-run aggregation of the
  four criteria (execution time, rejection rate, violated constraints,
  provider cost), plus the dynamic-scenario extension
  (:class:`~repro.evaluation.metrics.ScenarioMetrics`: SLA-violation
  rate and migration churn over a windowed run);
* :mod:`runner` — run a set of algorithms over a size sweep of random
  scenarios, averaging over repetitions (the paper uses 100 runs);
* :mod:`comparison` — the computed capability matrix behind Table II;
* :mod:`reporting` — plain-text rendering of figure series and tables.
"""

from repro.evaluation.metrics import (
    AggregateMetrics,
    RunRecord,
    ScenarioMetrics,
    aggregate_records,
    scenario_metrics,
)
from repro.evaluation.parallel import ParallelExperimentRunner
from repro.evaluation.runner import AllocatorFactory, ExperimentRunner, SweepResult
from repro.evaluation.comparison import TABLE2_CRITERIA, capability_matrix
from repro.evaluation.convergence import (
    convergence_summary,
    evaluations_to_feasible,
    evaluations_to_within,
    sparkline,
)
from repro.evaluation.reporting import format_series_table, format_table
from repro.evaluation.stats import Comparison, bootstrap_ci, compare_algorithms, paired_differences

__all__ = [
    "RunRecord",
    "AggregateMetrics",
    "ScenarioMetrics",
    "aggregate_records",
    "scenario_metrics",
    "AllocatorFactory",
    "ExperimentRunner",
    "ParallelExperimentRunner",
    "SweepResult",
    "capability_matrix",
    "TABLE2_CRITERIA",
    "format_table",
    "format_series_table",
    "convergence_summary",
    "evaluations_to_feasible",
    "evaluations_to_within",
    "sparkline",
    "Comparison",
    "bootstrap_ci",
    "compare_algorithms",
    "paired_differences",
]
