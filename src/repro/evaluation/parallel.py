"""Process-parallel experiment execution.

The paper averages over 100 runs × many sizes × six algorithms — an
embarrassingly parallel grid.  :class:`ParallelExperimentRunner` is the
drop-in parallel sibling of
:class:`~repro.evaluation.runner.ExperimentRunner`: identical scenario
streams and record contents (asserted by the test suite), with the
(algorithm, scenario) cells fanned out over a process pool.

Pickling constraint: worker processes receive the allocator *factory*,
so factories must be picklable — allocator classes themselves or
``functools.partial(Class, config)`` both work; lambdas and closures do
not (use the serial runner for those).  Scenario objects travel as
NumPy-backed dataclasses, which pickle efficiently.

Scaling notes (per the optimization guides): work is fanned out at
cell granularity so a slow algorithm does not serialize the grid;
results stream back via ``as_completed`` and are re-ordered
deterministically afterwards, so wall-clock order never leaks into the
record list.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Sequence

from repro.allocator import Allocator
from repro.engine import ProblemCache
from repro.errors import ValidationError
from repro.evaluation.metrics import RunRecord
from repro.evaluation.runner import AllocatorFactory, SweepResult
from repro.telemetry import MetricsRegistry, MetricsSnapshot, use_registry
from repro.workloads.generator import Scenario, ScenarioGenerator, ScenarioSpec

__all__ = ["ParallelExperimentRunner"]


#: Per-worker compilation cache, installed by the pool initializer.
#: Workers are reused across cells, so when several factories (or
#: repeated runs) hit the same (infrastructure, request) instance the
#: later cells reuse the earlier compilation instead of recompiling —
#: visible as ``engine.cache.hits`` in each cell's merged snapshot.
_WORKER_CACHE: ProblemCache | None = None


def _init_worker(cache_size: int) -> None:
    """Pool initializer: build the worker's shared compilation cache."""
    global _WORKER_CACHE
    _WORKER_CACHE = ProblemCache(maxsize=cache_size)


def _execute_cell(
    label: str,
    factory: AllocatorFactory,
    scenario: Scenario,
    servers: int,
    vms: int,
    run_index: int,
) -> tuple[RunRecord, MetricsSnapshot]:
    """One (algorithm, scenario) cell — runs inside a worker process.

    The cell executes against a fresh scoped registry (workers are
    reused across cells, so per-cell isolation matters) and ships its
    metrics back as a snapshot for the parent to merge.
    """
    with use_registry(MetricsRegistry()) as registry:
        allocator: Allocator = factory()
        if _WORKER_CACHE is not None and allocator.problem_cache is None:
            allocator.problem_cache = _WORKER_CACHE
        outcome = allocator.allocate(scenario.infrastructure, scenario.requests)
        registry.count("evaluation.cells", algorithm=label)
        registry.observe(
            "evaluation.cell_seconds", outcome.elapsed, algorithm=label
        )
        record = RunRecord.from_outcome(
            outcome, servers=servers, vms=vms, seed=run_index
        )
    record = RunRecord(**{**record.__dict__, "algorithm": label})
    return record, registry.snapshot()


class ParallelExperimentRunner:
    """Grid execution over a process pool.

    Parameters
    ----------
    factories:
        label → picklable zero-argument allocator factory.
    runs:
        Scenario repetitions per sweep point.
    seed:
        Root seed; the scenario stream is identical to the serial
        runner's for the same seed.
    n_workers:
        Pool size; defaults to ``os.cpu_count() - 1`` (min 1).
    problem_cache_size:
        Capacity of each worker's :class:`~repro.engine.ProblemCache`.
        Repeated (factory × scenario) cells on one instance then reuse
        compilations inside a worker; hits surface in the sweep's
        merged telemetry as ``engine.cache.hits``.
    """

    def __init__(
        self,
        factories: dict[str, AllocatorFactory],
        runs: int = 5,
        seed: int = 0,
        n_workers: int | None = None,
        problem_cache_size: int = 32,
    ) -> None:
        if not factories:
            raise ValidationError("need at least one allocator factory")
        if runs < 1:
            raise ValidationError(f"runs must be >= 1, got {runs}")
        if n_workers is not None and n_workers < 1:
            raise ValidationError(f"n_workers must be >= 1, got {n_workers}")
        if problem_cache_size < 1:
            raise ValidationError(
                f"problem_cache_size must be >= 1, got {problem_cache_size}"
            )
        # Fail fast on unpicklable factories (lambdas, closures): a
        # PicklingError mid-grid kills the pool with an opaque
        # traceback, so name the offending label up front instead.
        for label, factory in factories.items():
            try:
                pickle.dumps(factory)
            except Exception as exc:
                raise ValidationError(
                    f"allocator factory {label!r} is not picklable and cannot "
                    f"be shipped to worker processes ({exc}); use a class or "
                    "functools.partial instead of a lambda/closure, or use "
                    "the serial ExperimentRunner"
                ) from exc
        self.factories = dict(factories)
        self.runs = int(runs)
        self.seed = int(seed)
        self.n_workers = n_workers or max(1, (os.cpu_count() or 2) - 1)
        self.problem_cache_size = int(problem_cache_size)

    # Scenario derivation matches ExperimentRunner exactly, so serial
    # and parallel runs of the same seed see identical instances.
    def _scenarios_for(self, spec: ScenarioSpec, point_index: int) -> list[Scenario]:
        generator = ScenarioGenerator(spec, seed=self.seed + 7919 * point_index)
        return generator.generate_many(self.runs)

    def run_sweep(self, specs: Sequence[ScenarioSpec]) -> SweepResult:
        """Execute the grid in parallel; record order matches the
        serial runner (sweep point, run, factory insertion order)."""
        cells = []
        for point_index, spec in enumerate(specs):
            for run_index, scenario in enumerate(
                self._scenarios_for(spec, point_index)
            ):
                for label, factory in self.factories.items():
                    cells.append(
                        (point_index, run_index, label, factory, scenario, spec)
                    )

        results: dict[tuple[int, int, str], RunRecord] = {}
        snapshots: list[MetricsSnapshot] = []
        with ProcessPoolExecutor(
            max_workers=self.n_workers,
            initializer=_init_worker,
            initargs=(self.problem_cache_size,),
        ) as pool:
            futures = {
                pool.submit(
                    _execute_cell,
                    label,
                    factory,
                    scenario,
                    spec.servers,
                    spec.vms,
                    run_index,
                ): (point_index, run_index, label)
                for point_index, run_index, label, factory, scenario, spec in cells
            }
            for future in as_completed(futures):
                record, snapshot = future.result()
                results[futures[future]] = record
                snapshots.append(snapshot)

        ordered = [
            results[(point_index, run_index, label)]
            for point_index, run_index, label, *_ in cells
        ]
        return SweepResult(
            records=ordered, telemetry=MetricsSnapshot.merge_all(snapshots)
        )
