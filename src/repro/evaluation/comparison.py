"""The computed capability matrix behind Table II.

Table II of the paper grades allocation approaches on four needs:
*compliance with constraints*, *resource scalability*, *compliance with
customer requests* and *control over infrastructure*.  Rather than
hardcoding checkmarks, this module measures each criterion with a
small probe experiment, so the table is a reproducible artifact:

* **constraints** — zero violated constraints on a constrained probe;
* **scalability** — execution time grows sub-linearly in instance area
  (time ratio below size ratio) between a small and a medium probe;
* **customer requests** — rejection rate at most 0.25 on a probe whose
  windows are known to be placeable;
* **infrastructure control** — provider cost within 2x of the (loose)
  everything-on-the-cheapest-server lower bound: the algorithm
  demonstrably steers placement by cost rather than ignoring it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.allocator import Allocator
from repro.evaluation.runner import AllocatorFactory
from repro.workloads.generator import ScenarioGenerator, ScenarioSpec

__all__ = ["TABLE2_CRITERIA", "CapabilityRow", "capability_matrix"]

#: Row labels, matching Table II's order.
TABLE2_CRITERIA: tuple[str, ...] = (
    "compliance_with_constraints",
    "resource_scalability",
    "compliance_with_customer_requests",
    "control_over_infrastructure",
)

_SMALL = ScenarioSpec(
    servers=16, datacenters=2, vms=32, tightness=0.7, affinity_probability=0.9
)
_MEDIUM = ScenarioSpec(
    servers=48, datacenters=2, vms=96, tightness=0.7, affinity_probability=0.9
)


@dataclass(frozen=True)
class CapabilityRow:
    """Measured capabilities of one algorithm."""

    algorithm: str
    compliance_with_constraints: bool
    resource_scalability: bool
    compliance_with_customer_requests: bool
    control_over_infrastructure: bool
    details: dict

    def as_tuple(self) -> tuple[bool, bool, bool, bool]:
        """Values in TABLE2_CRITERIA order."""
        return (
            self.compliance_with_constraints,
            self.resource_scalability,
            self.compliance_with_customer_requests,
            self.control_over_infrastructure,
        )


def _cheapest_rate_bound(scenario) -> float:
    """Optimistic provider cost: every VM on the cheapest server."""
    infra = scenario.infrastructure
    rate = infra.operating_cost + infra.usage_cost
    return float(rate.min() * scenario.n_vms)


def capability_matrix(
    factories: dict[str, AllocatorFactory],
    seed: int = 0,
    runs: int = 2,
) -> list[CapabilityRow]:
    """Measure every algorithm on the four Table II criteria."""
    small_scenarios = ScenarioGenerator(_SMALL, seed=seed).generate_many(runs)
    medium_scenarios = ScenarioGenerator(_MEDIUM, seed=seed + 1).generate_many(
        runs
    )

    rows: list[CapabilityRow] = []
    for label, factory in factories.items():
        small_times, medium_times = [], []
        violations, rejections, cost_ratios = [], [], []
        for scenario in small_scenarios:
            allocator: Allocator = factory()
            outcome = allocator.allocate(
                scenario.infrastructure, scenario.requests
            )
            small_times.append(outcome.elapsed)
            violations.append(outcome.violations)
            rejections.append(outcome.rejection_rate)
            bound = _cheapest_rate_bound(scenario)
            cost_ratios.append(
                outcome.provider_cost / bound if bound > 0 else np.inf
            )
        for scenario in medium_scenarios:
            allocator = factory()
            outcome = allocator.allocate(
                scenario.infrastructure, scenario.requests
            )
            medium_times.append(outcome.elapsed)

        area_ratio = (_MEDIUM.servers * _MEDIUM.vms) / (
            _SMALL.servers * _SMALL.vms
        )
        time_ratio = (np.mean(medium_times) + 1e-9) / (
            np.mean(small_times) + 1e-9
        )
        details = {
            "mean_violations": float(np.mean(violations)),
            "mean_rejection_rate": float(np.mean(rejections)),
            "mean_cost_ratio": float(np.mean(cost_ratios)),
            "time_ratio": float(time_ratio),
            "area_ratio": float(area_ratio),
        }
        rows.append(
            CapabilityRow(
                algorithm=label,
                compliance_with_constraints=float(np.mean(violations)) == 0.0,
                resource_scalability=time_ratio <= area_ratio,
                compliance_with_customer_requests=float(np.mean(rejections))
                <= 0.25,
                control_over_infrastructure=float(np.mean(cost_ratios)) <= 2.0,
                details=details,
            )
        )
    return rows
