"""The provider substrate in matrix form (left half of Table I).

:class:`Infrastructure` is the computational view of a provider's
estate: ``g`` datacenters, ``m`` servers, ``h`` attributes, with the
capacity matrix ``P`` (Eq. 1), the virtual-to-physical factor matrix
``F`` (Eq. 3), the cost vectors ``E``/``U`` (Eq. 6/7) and the QoS
matrices ``LM``/``QM`` (Eq. 8).  All arrays are C-contiguous float64
and validated at construction; downstream code may rely on that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import DimensionError, ValidationError
from repro.model.attributes import DEFAULT_ATTRIBUTES, AttributeSchema
from repro.model.resources import Datacenter, Server
from repro.types import FloatArray, IntArray

__all__ = ["Infrastructure"]


@dataclass(frozen=True)
class Infrastructure:
    """Provider resources as matrices.

    Parameters
    ----------
    capacity:
        ``P`` of shape (m, h) — Eq. 1.
    capacity_factor:
        ``F`` of shape (m, h) — Eq. 3, entries in (0, 1].
    operating_cost:
        ``E`` of shape (m,) — Eq. 6.
    usage_cost:
        ``U`` of shape (m,) — Eq. 7.
    max_load:
        ``LM`` of shape (m, h) — Eq. 8, entries in [0, 1).
    max_qos:
        ``QM`` of shape (m, h) — Eq. 8, entries in [0, 1).
    server_datacenter:
        Integer vector of shape (m,) mapping each server j to its
        datacenter i in [0, g).  This is how the boolean tensor
        X_ijk collapses to a flat per-VM server genome.
    schema:
        Attribute schema fixing the meaning of the h columns.
    server_provider:
        Optional integer vector of shape (m,) mapping each server to a
        cloud provider in [0, p) — the multi-cloud market axis
        (``docs/MARKET.md``).  ``None`` (the default) means a single
        provider owns the whole estate; the paper's single-datacenter
        setting compiles byte-identically through that default.
    """

    capacity: FloatArray
    capacity_factor: FloatArray
    operating_cost: FloatArray
    usage_cost: FloatArray
    max_load: FloatArray
    max_qos: FloatArray
    server_datacenter: IntArray
    schema: AttributeSchema = field(default=DEFAULT_ATTRIBUTES)
    datacenter_names: tuple[str, ...] = ()
    server_names: tuple[str, ...] = ()
    server_provider: IntArray | None = None
    provider_names: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        cap = np.ascontiguousarray(self.capacity, dtype=np.float64)
        if cap.ndim != 2:
            raise DimensionError(f"capacity must be 2-D (m, h), got {cap.shape}")
        m, h = cap.shape
        if h != self.schema.h:
            raise DimensionError(
                f"capacity has {h} attribute columns, schema has {self.schema.h}"
            )
        if m == 0:
            raise ValidationError("an infrastructure needs at least one server")

        def mat(name: str) -> np.ndarray:
            arr = np.ascontiguousarray(getattr(self, name), dtype=np.float64)
            if arr.shape != (m, h):
                raise DimensionError(f"{name} has shape {arr.shape}, expected {(m, h)}")
            return arr

        def vec(name: str) -> np.ndarray:
            arr = np.ascontiguousarray(getattr(self, name), dtype=np.float64)
            if arr.shape != (m,):
                raise DimensionError(f"{name} has shape {arr.shape}, expected {(m,)}")
            return arr

        fac = mat("capacity_factor")
        lm = mat("max_load")
        qm = mat("max_qos")
        e = vec("operating_cost")
        u = vec("usage_cost")

        if np.any(cap < 0) or not np.all(np.isfinite(cap)):
            raise ValidationError("capacities must be finite and >= 0")
        if np.any(fac <= 0) or np.any(fac > 1):
            raise ValidationError("capacity factors must lie in (0, 1]")
        if np.any(lm < 0) or np.any(lm >= 1):
            raise ValidationError("max_load entries must lie in [0, 1)")
        if np.any(qm < 0) or np.any(qm >= 1):
            raise ValidationError("max_qos entries must lie in [0, 1)")
        if np.any(e < 0) or np.any(u < 0):
            raise ValidationError("cost vectors must be >= 0")

        dc = np.ascontiguousarray(self.server_datacenter, dtype=np.int64)
        if dc.shape != (m,):
            raise DimensionError(
                f"server_datacenter has shape {dc.shape}, expected {(m,)}"
            )
        if np.any(dc < 0):
            raise ValidationError("datacenter ids must be >= 0")
        g = int(dc.max()) + 1
        present = np.unique(dc)
        if present.size != g:
            raise ValidationError(
                "datacenter ids must be contiguous 0..g-1 with every id used"
            )

        object.__setattr__(self, "capacity", cap)
        object.__setattr__(self, "capacity_factor", fac)
        object.__setattr__(self, "operating_cost", e)
        object.__setattr__(self, "usage_cost", u)
        object.__setattr__(self, "max_load", lm)
        object.__setattr__(self, "max_qos", qm)
        object.__setattr__(self, "server_datacenter", dc)
        if self.datacenter_names and len(self.datacenter_names) != g:
            raise DimensionError(
                f"{len(self.datacenter_names)} datacenter names for g={g}"
            )
        if self.server_names and len(self.server_names) != m:
            raise DimensionError(f"{len(self.server_names)} server names for m={m}")

        if self.server_provider is not None:
            sp = np.ascontiguousarray(self.server_provider, dtype=np.int64)
            if sp.shape != (m,):
                raise DimensionError(
                    f"server_provider has shape {sp.shape}, expected {(m,)}"
                )
            if np.any(sp < 0):
                raise ValidationError("provider ids must be >= 0")
            p = int(sp.max()) + 1
            if np.unique(sp).size != p:
                raise ValidationError(
                    "provider ids must be contiguous 0..p-1 with every id used"
                )
            object.__setattr__(self, "server_provider", sp)
        else:
            p = 1
        if self.provider_names and len(self.provider_names) != p:
            raise DimensionError(
                f"{len(self.provider_names)} provider names for p={p}"
            )

    # ------------------------------------------------------------------
    # Sizes (Table I notation)
    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        """Number of servers."""
        return self.capacity.shape[0]

    @property
    def h(self) -> int:
        """Number of attributes."""
        return self.capacity.shape[1]

    @property
    def g(self) -> int:
        """Number of datacenters."""
        return int(self.server_datacenter.max()) + 1

    @property
    def p(self) -> int:
        """Number of cloud providers (1 unless a market tagged servers)."""
        if self.server_provider is None:
            return 1
        return int(self.server_provider.max()) + 1

    @property
    def provider_of_server(self) -> IntArray:
        """Per-server provider id, shape (m,) — all zeros by default."""
        if self.server_provider is None:
            return np.zeros(self.m, dtype=np.int64)
        return self.server_provider

    def servers_in_provider(self, provider: int) -> IntArray:
        """Indices of the servers owned by ``provider``."""
        if not (0 <= provider < self.p):
            raise ValidationError(
                f"provider {provider} out of range [0, {self.p})"
            )
        return np.flatnonzero(self.provider_of_server == provider).astype(np.int64)

    # ------------------------------------------------------------------
    # Derived matrices
    # ------------------------------------------------------------------
    @property
    def effective_capacity(self) -> FloatArray:
        """``P * F`` element-wise — the usable capacity of Eq. 4's RHS."""
        return self.capacity * self.capacity_factor

    def servers_in_datacenter(self, datacenter: int) -> IntArray:
        """Indices of the servers hosted in ``datacenter``."""
        if not (0 <= datacenter < self.g):
            raise ValidationError(
                f"datacenter {datacenter} out of range [0, {self.g})"
            )
        return np.flatnonzero(self.server_datacenter == datacenter).astype(np.int64)

    def datacenter_sizes(self) -> IntArray:
        """Server count per datacenter, shape (g,)."""
        return np.bincount(self.server_datacenter, minlength=self.g).astype(np.int64)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_datacenters(cls, datacenters: Sequence[Datacenter]) -> "Infrastructure":
        """Flatten record-style :class:`Datacenter` objects into matrices."""
        if not datacenters:
            raise ValidationError("need at least one datacenter")
        servers: list[Server] = []
        dc_of: list[int] = []
        dc_names: list[str] = []
        for i, dc in enumerate(datacenters):
            if len(dc) == 0:
                raise ValidationError(f"datacenter {i} ({dc.name!r}) has no servers")
            dc_names.append(dc.name or f"dc{i}")
            for server in dc.servers:
                servers.append(server)
                dc_of.append(i)
        schema = servers[0].schema
        return cls(
            capacity=np.stack([s.capacity for s in servers]),
            capacity_factor=np.stack([s.capacity_factor for s in servers]),
            operating_cost=np.array([s.operating_cost for s in servers]),
            usage_cost=np.array([s.usage_cost for s in servers]),
            max_load=np.stack([s.max_load for s in servers]),
            max_qos=np.stack([s.max_qos for s in servers]),
            server_datacenter=np.array(dc_of, dtype=np.int64),
            schema=schema,
            datacenter_names=tuple(dc_names),
            server_names=tuple(
                s.name or f"srv{j}" for j, s in enumerate(servers)
            ),
        )

    @classmethod
    def homogeneous(
        cls,
        *,
        datacenters: int,
        servers_per_datacenter: int,
        capacity: Sequence[float],
        capacity_factor: Sequence[float] | None = None,
        operating_cost: float = 1.0,
        usage_cost: float = 1.0,
        max_load: float = 0.8,
        max_qos: float = 0.99,
        schema: AttributeSchema = DEFAULT_ATTRIBUTES,
    ) -> "Infrastructure":
        """Build a uniform estate — the common benchmarking substrate."""
        g = int(datacenters)
        per = int(servers_per_datacenter)
        if g < 1 or per < 1:
            raise ValidationError("need at least one datacenter and one server")
        m = g * per
        cap_row = np.asarray(capacity, dtype=np.float64)
        if cap_row.shape != (schema.h,):
            raise DimensionError(
                f"capacity row has shape {cap_row.shape}, expected ({schema.h},)"
            )
        fac_row = (
            np.ones(schema.h)
            if capacity_factor is None
            else np.asarray(capacity_factor, dtype=np.float64)
        )
        return cls(
            capacity=np.tile(cap_row, (m, 1)),
            capacity_factor=np.tile(fac_row, (m, 1)),
            operating_cost=np.full(m, float(operating_cost)),
            usage_cost=np.full(m, float(usage_cost)),
            max_load=np.full((m, schema.h), float(max_load)),
            max_qos=np.full((m, schema.h), float(max_qos)),
            server_datacenter=np.repeat(np.arange(g, dtype=np.int64), per),
            schema=schema,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Infrastructure(g={self.g}, m={self.m}, h={self.h}, "
            f"attrs={self.schema.names})"
        )
