"""Mutable platform state: what the scheduler knows "in real time".

The paper's scheduler "is aware of the cloud platform status in real
time" — committed placements consume capacity that later windows must
respect.  :class:`PlatformState` tracks the residual estate: committed
usage per server, which resources sit where, and the previous
allocation X^t needed by the migration-cost objective (Eq. 26).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SchedulerError
from repro.model.infrastructure import Infrastructure
from repro.model.placement import UNPLACED, Placement
from repro.model.request import Request
from repro.types import FloatArray, IntArray
from repro.utils.scatter import scatter_rows

__all__ = ["PlatformState"]


@dataclass
class PlatformState:
    """Running occupancy of an infrastructure across scheduling windows."""

    infrastructure: Infrastructure
    committed_usage: FloatArray = field(init=False)
    _residents: dict[str, tuple[IntArray, FloatArray]] = field(
        init=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        infra = self.infrastructure
        self.committed_usage = np.zeros((infra.m, infra.h))

    # ------------------------------------------------------------------
    @property
    def residual_capacity(self) -> FloatArray:
        """Usable capacity still free per server/attribute: P*F - usage."""
        return self.infrastructure.effective_capacity - self.committed_usage

    @property
    def committed_load(self) -> FloatArray:
        """Current load L_jl induced by committed resources (Eq. 25)."""
        cap = self.infrastructure.capacity
        with np.errstate(divide="ignore", invalid="ignore"):
            load = np.where(
                cap > 0, self.committed_usage / np.where(cap > 0, cap, 1.0), 0.0
            )
            load = np.where((cap == 0) & (self.committed_usage > 0), np.inf, load)
        return load

    @property
    def hosted_resource_count(self) -> int:
        """Total resources currently hosted across all tenants."""
        return sum(
            int(np.sum(assign != UNPLACED)) for assign, _ in self._residents.values()
        )

    def tenants(self) -> tuple[str, ...]:
        """Identifiers of the requests currently holding capacity."""
        return tuple(self._residents)

    # ------------------------------------------------------------------
    def commit(self, key: str, placement: Placement, request: Request) -> None:
        """Reserve capacity for ``placement`` of ``request`` under ``key``.

        Raises :class:`~repro.errors.SchedulerError` if the key is
        already committed or the placement refers to a different
        infrastructure.
        """
        if key in self._residents:
            raise SchedulerError(f"request key {key!r} already committed")
        if placement.infrastructure is not self.infrastructure:
            raise SchedulerError("placement belongs to a different infrastructure")
        if placement.n != request.n:
            raise SchedulerError(
                f"placement covers {placement.n} resources, request has {request.n}"
            )
        usage = placement.server_usage(request.demand)
        self.committed_usage += usage
        self._residents[key] = (placement.assignment.copy(), request.demand.copy())

    def release(self, key: str) -> None:
        """Free the capacity held by ``key`` (tenant departure)."""
        try:
            assignment, demand = self._residents.pop(key)
        except KeyError:
            raise SchedulerError(f"request key {key!r} is not committed") from None
        mask = assignment != UNPLACED
        self.committed_usage -= scatter_rows(
            assignment[mask], demand[mask], self.committed_usage.shape[0]
        )
        # Guard against float drift pulling usage microscopically negative.
        np.clip(self.committed_usage, 0.0, None, out=self.committed_usage)

    def previous_assignment(self, key: str) -> IntArray | None:
        """The committed assignment for ``key`` (X^t for Eq. 26), if any."""
        entry = self._residents.get(key)
        return None if entry is None else entry[0].copy()

    def reassign(self, key: str, placement: Placement, request: Request) -> IntArray:
        """Replace ``key``'s placement, returning the old assignment.

        This is the reconfiguration step: the caller computes migration
        cost from the returned X^t versus the new X^{t+1}.
        """
        old = self.previous_assignment(key)
        if old is None:
            raise SchedulerError(f"request key {key!r} is not committed")
        self.release(key)
        self.commit(key, placement, request)
        return old

    def snapshot_usage(self) -> FloatArray:
        """Defensive copy of the committed usage matrix."""
        return self.committed_usage.copy()

    def verify_consistency(self) -> None:
        """Recompute usage from residents and check it matches (test hook)."""
        expect = np.zeros_like(self.committed_usage)
        for assignment, demand in self._residents.values():
            mask = assignment != UNPLACED
            expect += scatter_rows(
                assignment[mask], demand[mask], expect.shape[0]
            )
        if not np.allclose(expect, self.committed_usage, atol=1e-9):
            raise SchedulerError("committed usage diverged from resident ledger")
