"""Consumer requests in matrix form (right half of Table I).

A :class:`Request` bundles ``n`` virtual resources — the demand matrix
``C`` (Eq. 2), QoS guarantees ``C^Q``, downtime penalties ``C^U`` and
migration costs ``M`` — together with the consumer's placement rules.
Each rule is a :class:`PlacementGroup`: one of the paper's four
affinity/anti-affinity relationships applied to a subset of the
request's resources.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConstraintError, DimensionError, ValidationError
from repro.model.attributes import DEFAULT_ATTRIBUTES, AttributeSchema
from repro.model.resources import VirtualResource
from repro.types import FloatArray, IntArray, PlacementRule

__all__ = ["PlacementGroup", "Request"]


@dataclass(frozen=True)
class PlacementGroup:
    """One affinity/anti-affinity rule over a group of resources.

    Parameters
    ----------
    rule:
        Which of the four Section III relationships applies.
    members:
        Indices (into the owning request's resources) of the group.
        At least two members — a placement rule over fewer is vacuous.
    """

    rule: PlacementRule
    members: tuple[int, ...]

    def __post_init__(self) -> None:
        members = tuple(int(k) for k in self.members)
        if len(members) < 2:
            raise ConstraintError(
                f"{self.rule.value} group needs >= 2 members, got {members}"
            )
        if len(set(members)) != len(members):
            raise ConstraintError(f"duplicate members in group {members}")
        if any(k < 0 for k in members):
            raise ConstraintError(f"negative resource index in group {members}")
        object.__setattr__(self, "members", members)

    @property
    def size(self) -> int:
        """Number of resources the rule binds."""
        return len(self.members)


@dataclass(frozen=True)
class Request:
    """A consumer request of ``n`` virtual resources plus placement rules.

    Parameters
    ----------
    demand:
        ``C`` of shape (n, h) — Eq. 2.
    qos_guarantee:
        ``C^Q`` of shape (n,), entries in (0, 1].
    downtime_cost:
        ``C^U`` of shape (n,), >= 0.
    migration_cost:
        ``M`` of shape (n,), >= 0.
    groups:
        The affinity/anti-affinity rules attached by the consumer.
    schema:
        Attribute schema; must match the infrastructure's (h = h').
    """

    demand: FloatArray
    qos_guarantee: FloatArray
    downtime_cost: FloatArray
    migration_cost: FloatArray
    groups: tuple[PlacementGroup, ...] = ()
    schema: AttributeSchema = field(default=DEFAULT_ATTRIBUTES)
    name: str = ""

    def __post_init__(self) -> None:
        dem = np.ascontiguousarray(self.demand, dtype=np.float64)
        if dem.ndim != 2:
            raise DimensionError(f"demand must be 2-D (n, h), got {dem.shape}")
        n, h = dem.shape
        if n == 0:
            raise ValidationError("a request needs at least one resource")
        if h != self.schema.h:
            raise DimensionError(
                f"demand has {h} attribute columns, schema has {self.schema.h}"
            )
        if np.any(dem < 0) or not np.all(np.isfinite(dem)):
            raise ValidationError("demands must be finite and >= 0")

        def vec(attr: str) -> np.ndarray:
            arr = np.ascontiguousarray(getattr(self, attr), dtype=np.float64)
            if arr.shape != (n,):
                raise DimensionError(f"{attr} has shape {arr.shape}, expected {(n,)}")
            return arr

        cq = vec("qos_guarantee")
        cu = vec("downtime_cost")
        mk = vec("migration_cost")
        if np.any(cq <= 0) or np.any(cq > 1):
            raise ValidationError("qos_guarantee entries must lie in (0, 1]")
        if np.any(cu < 0) or np.any(mk < 0):
            raise ValidationError("cost vectors must be >= 0")

        for group in self.groups:
            if max(group.members) >= n:
                raise ConstraintError(
                    f"group {group.members} references resource >= n={n}"
                )

        object.__setattr__(self, "demand", dem)
        object.__setattr__(self, "qos_guarantee", cq)
        object.__setattr__(self, "downtime_cost", cu)
        object.__setattr__(self, "migration_cost", mk)
        object.__setattr__(self, "groups", tuple(self.groups))

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of requested resources."""
        return self.demand.shape[0]

    @property
    def h(self) -> int:
        """Number of attributes."""
        return self.demand.shape[1]

    def groups_of(self, rule: PlacementRule) -> tuple[PlacementGroup, ...]:
        """All groups using ``rule``."""
        return tuple(gr for gr in self.groups if gr.rule is rule)

    def total_demand(self) -> FloatArray:
        """Column sums of C — aggregate demand per attribute."""
        return self.demand.sum(axis=0)

    # ------------------------------------------------------------------
    @classmethod
    def from_resources(
        cls,
        resources: Sequence[VirtualResource],
        groups: Iterable[PlacementGroup] = (),
        name: str = "",
    ) -> "Request":
        """Flatten record-style :class:`VirtualResource` objects."""
        if not resources:
            raise ValidationError("need at least one virtual resource")
        schema = resources[0].schema
        for vr in resources[1:]:
            if vr.schema.names != schema.names:
                raise ValidationError("all resources must share one attribute schema")
        return cls(
            demand=np.stack([vr.demand for vr in resources]),
            qos_guarantee=np.array([vr.qos_guarantee for vr in resources]),
            downtime_cost=np.array([vr.downtime_cost for vr in resources]),
            migration_cost=np.array([vr.migration_cost for vr in resources]),
            groups=tuple(groups),
            schema=schema,
            name=name,
        )

    @classmethod
    def concatenate(cls, requests: Sequence["Request"]) -> tuple["Request", IntArray]:
        """Merge several requests into one batch (the cyclic time window).

        Returns the merged request plus an ownership vector mapping each
        merged resource index back to its source request index — the
        scheduler uses that to attribute rejections per consumer.
        Group member indices are shifted to the merged numbering.
        """
        if not requests:
            raise ValidationError("need at least one request to concatenate")
        schema = requests[0].schema
        groups: list[PlacementGroup] = []
        owner: list[int] = []
        offset = 0
        for idx, req in enumerate(requests):
            if req.schema.names != schema.names:
                raise ValidationError("requests must share one attribute schema")
            for gr in req.groups:
                groups.append(
                    PlacementGroup(
                        rule=gr.rule,
                        members=tuple(k + offset for k in gr.members),
                    )
                )
            owner.extend([idx] * req.n)
            offset += req.n
        merged = cls(
            demand=np.concatenate([r.demand for r in requests]),
            qos_guarantee=np.concatenate([r.qos_guarantee for r in requests]),
            downtime_cost=np.concatenate([r.downtime_cost for r in requests]),
            migration_cost=np.concatenate([r.migration_cost for r in requests]),
            groups=tuple(groups),
            schema=schema,
            name="+".join(r.name or str(i) for i, r in enumerate(requests)),
        )
        return merged, np.asarray(owner, dtype=np.int64)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Request(n={self.n}, h={self.h}, groups={len(self.groups)}, "
            f"name={self.name!r})"
        )
