"""Resource attribute schema (the set H of Table I).

The paper fixes attention on CPU, RAM and disk but notes the model "can
be extended to other specific attributes".  :class:`AttributeSchema`
captures an ordered list of attribute names with units, and enforces
the paper's requirement that provider and consumer resources share the
same attribute set (h = h').
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.errors import ValidationError

__all__ = ["AttributeSchema", "DEFAULT_ATTRIBUTES"]


@dataclass(frozen=True)
class AttributeSchema:
    """An ordered, named set of resource attributes.

    Parameters
    ----------
    names:
        Attribute names, e.g. ``("cpu", "ram", "disk")``.  Order is
        significant: it fixes the column order of every capacity
        matrix (P, C, F) in the model.
    units:
        Optional per-attribute unit labels (``("vcpu", "GiB", "GiB")``).
        Purely documentary; defaults to dimensionless.
    """

    names: tuple[str, ...]
    units: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.names:
            raise ValidationError("an AttributeSchema needs at least one attribute")
        if len(set(self.names)) != len(self.names):
            raise ValidationError(f"duplicate attribute names in {self.names}")
        if self.units and len(self.units) != len(self.names):
            raise ValidationError(
                f"{len(self.units)} units for {len(self.names)} attributes"
            )
        if not self.units:
            object.__setattr__(self, "units", ("",) * len(self.names))

    @property
    def h(self) -> int:
        """The number of attributes (``h`` in Table I)."""
        return len(self.names)

    def index(self, name: str) -> int:
        """Column index of attribute ``name``; raises if unknown."""
        try:
            return self.names.index(name)
        except ValueError:
            raise ValidationError(
                f"unknown attribute {name!r}; schema has {self.names}"
            ) from None

    def __len__(self) -> int:
        return self.h

    def __iter__(self) -> Iterator[str]:
        return iter(self.names)

    def __contains__(self, name: object) -> bool:
        return name in self.names

    @classmethod
    def from_names(cls, names: Sequence[str]) -> "AttributeSchema":
        """Build a schema from any sequence of names."""
        return cls(tuple(names))


#: The paper's default attribute set: "we focus on attributes such as
#: CPU, RAM and disk for each virtual and physical resource".
DEFAULT_ATTRIBUTES = AttributeSchema(
    names=("cpu", "ram", "disk"),
    units=("vcpu", "GiB", "GiB"),
)
