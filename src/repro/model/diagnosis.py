"""Pre-flight diagnosis of an (infrastructure, request) instance.

Solvers report *that* a request is infeasible; operators want to know
*why* before any search runs.  :func:`diagnose_instance` performs the
cheap necessary-condition checks and returns human-readable findings:

* schema mismatch (h != h');
* resources no single server can ever host;
* aggregate demand exceeding estate capacity per attribute;
* anti-affinity pigeonhole violations (group larger than the number of
  datacenters/servers);
* same-server groups whose combined demand no server can hold;
* contradictory rule pairs (same members required both together and
  apart).

Findings are *necessary*-condition failures: any finding proves
infeasibility, but an empty report does not prove feasibility (that is
the solvers' job).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.infrastructure import Infrastructure
from repro.model.request import Request
from repro.types import PlacementRule

__all__ = ["Finding", "diagnose_instance"]


@dataclass(frozen=True)
class Finding:
    """One diagnosed impossibility."""

    code: str
    message: str
    resources: tuple[int, ...] = ()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.code}] {self.message}"


def diagnose_instance(
    infrastructure: Infrastructure, request: Request
) -> list[Finding]:
    """Run every necessary-condition check; empty list = nothing
    provably wrong."""
    findings: list[Finding] = []

    if request.h != infrastructure.h:
        findings.append(
            Finding(
                code="schema_mismatch",
                message=(
                    f"request has {request.h} attributes, "
                    f"infrastructure has {infrastructure.h} (paper requires h = h')"
                ),
            )
        )
        return findings  # nothing else is meaningful

    effective = infrastructure.effective_capacity

    # Per-resource hostability: some server must fit it alone.
    fits_somewhere = np.any(
        np.all(request.demand[:, None, :] <= effective[None, :, :] + 1e-9, axis=2),
        axis=1,
    )
    unhostable = np.flatnonzero(~fits_somewhere)
    for k in unhostable:
        findings.append(
            Finding(
                code="unhostable_resource",
                message=(
                    f"resource {int(k)} demands {request.demand[k].tolist()} "
                    "which no server can host even when empty"
                ),
                resources=(int(k),),
            )
        )

    # Aggregate capacity per attribute.
    total_demand = request.demand.sum(axis=0)
    total_capacity = effective.sum(axis=0)
    for l in range(request.h):
        if total_demand[l] > total_capacity[l] + 1e-9:
            findings.append(
                Finding(
                    code="aggregate_overcommit",
                    message=(
                        f"attribute {infrastructure.schema.names[l]!r}: total "
                        f"demand {total_demand[l]:.1f} exceeds estate capacity "
                        f"{total_capacity[l]:.1f}"
                    ),
                )
            )

    # Group-level checks.
    for group in request.groups:
        members = group.members
        if group.rule is PlacementRule.DIFFERENT_DATACENTERS:
            if group.size > infrastructure.g:
                findings.append(
                    Finding(
                        code="pigeonhole_datacenters",
                        message=(
                            f"group {members} needs {group.size} distinct "
                            f"datacenters but only {infrastructure.g} exist"
                        ),
                        resources=members,
                    )
                )
        elif group.rule is PlacementRule.DIFFERENT_SERVERS:
            if group.size > infrastructure.m:
                findings.append(
                    Finding(
                        code="pigeonhole_servers",
                        message=(
                            f"group {members} needs {group.size} distinct "
                            f"servers but only {infrastructure.m} exist"
                        ),
                        resources=members,
                    )
                )
        elif group.rule is PlacementRule.SAME_SERVER:
            combined = request.demand[list(members)].sum(axis=0)
            if not np.any(np.all(combined <= effective + 1e-9, axis=1)):
                findings.append(
                    Finding(
                        code="same_server_too_big",
                        message=(
                            f"same-server group {members} demands "
                            f"{combined.tolist()} combined; no server can "
                            "host them together"
                        ),
                        resources=members,
                    )
                )

    # Contradictory rule pairs over shared member pairs.
    for i, a in enumerate(request.groups):
        for b in request.groups[i + 1 :]:
            shared = set(a.members) & set(b.members)
            if len(shared) < 2:
                continue
            contradictory = (
                {a.rule, b.rule}
                in (
                    {PlacementRule.SAME_SERVER, PlacementRule.DIFFERENT_SERVERS},
                    {
                        PlacementRule.SAME_SERVER,
                        PlacementRule.DIFFERENT_DATACENTERS,
                    },
                    {
                        PlacementRule.SAME_DATACENTER,
                        PlacementRule.DIFFERENT_DATACENTERS,
                    },
                )
            )
            if contradictory:
                findings.append(
                    Finding(
                        code="contradictory_rules",
                        message=(
                            f"resources {tuple(sorted(shared))} appear in both a "
                            f"{a.rule.value} and a {b.rule.value} group — "
                            "unsatisfiable together"
                        ),
                        resources=tuple(sorted(shared)),
                    )
                )
    return findings
