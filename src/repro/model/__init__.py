"""Cloud model layer: the paper's Table I as first-class objects.

The model follows Section III of the paper.  A provider operates ``g``
datacenters containing ``m`` servers; each server exposes ``h``
attributes (CPU, RAM, disk by default).  Consumers submit requests of
``n`` virtual resources, each demanding capacity on the same ``h``
attributes, plus affinity/anti-affinity placement rules and QoS
guarantees.  Everything is stored as NumPy matrices so the constraint
and objective layers can evaluate whole populations without Python
loops.
"""

from repro.model.attributes import AttributeSchema, DEFAULT_ATTRIBUTES
from repro.model.resources import Datacenter, Server, VirtualResource
from repro.model.infrastructure import Infrastructure
from repro.model.request import PlacementGroup, Request
from repro.model.placement import Placement
from repro.model.state import PlatformState
from repro.model.diagnosis import Finding, diagnose_instance

__all__ = [
    "AttributeSchema",
    "DEFAULT_ATTRIBUTES",
    "Server",
    "Datacenter",
    "VirtualResource",
    "Infrastructure",
    "Request",
    "PlacementGroup",
    "Placement",
    "PlatformState",
    "Finding",
    "diagnose_instance",
]
