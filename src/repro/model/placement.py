"""Placement: the decision variable X_ijk and its flat genome form.

The paper encodes an allocation as a boolean tensor ``X_ijk`` (resource
k on server j of datacenter i) but evolves *genomes*: "Each individual
possesses chromosomes here standing for virtual machines.  Each gene
stands for a server ID".  :class:`Placement` is that flat form — an
integer vector ``assignment`` of length n whose entry is a global
server index (or :data:`UNPLACED` for a rejected/unhosted resource) —
with lossless conversion to and from the dense tensor.

Because exactly one server hosts each placed resource, the assignment
vector satisfies Eq. 5/17 (each resource allocated once) by
construction; the dense form exists for the LP backend and for tests
that exercise the tensor-level equations literally.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EncodingError
from repro.model.infrastructure import Infrastructure
from repro.types import BoolArray, FloatArray, IntArray
from repro.utils.scatter import scatter_rows

__all__ = ["Placement", "UNPLACED"]

#: Sentinel gene value for a resource that is not hosted anywhere.
UNPLACED: int = -1


@dataclass(frozen=True)
class Placement:
    """An assignment of n resources onto the servers of an infrastructure.

    Parameters
    ----------
    assignment:
        Integer vector (n,) of global server indices in ``[0, m)``,
        or :data:`UNPLACED` for unhosted resources.
    infrastructure:
        The provider estate the indices refer to.
    """

    assignment: IntArray
    infrastructure: Infrastructure

    def __post_init__(self) -> None:
        arr = np.ascontiguousarray(self.assignment, dtype=np.int64)
        if arr.ndim != 1:
            raise EncodingError(f"assignment must be 1-D, got shape {arr.shape}")
        m = self.infrastructure.m
        bad = (arr != UNPLACED) & ((arr < 0) | (arr >= m))
        if np.any(bad):
            raise EncodingError(
                f"assignment contains server ids outside [0, {m}): "
                f"{arr[bad][:5].tolist()}..."
            )
        object.__setattr__(self, "assignment", arr)

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of resources covered by this placement."""
        return self.assignment.shape[0]

    @property
    def placed_mask(self) -> BoolArray:
        """Boolean mask of resources that are actually hosted."""
        return self.assignment != UNPLACED

    @property
    def is_complete(self) -> bool:
        """True when every resource is hosted (Eq. 5 satisfied for all k)."""
        return bool(np.all(self.placed_mask))

    def datacenter_of(self) -> IntArray:
        """Datacenter index per resource (UNPLACED stays -1)."""
        out = np.full(self.n, UNPLACED, dtype=np.int64)
        mask = self.placed_mask
        out[mask] = self.infrastructure.server_datacenter[self.assignment[mask]]
        return out

    # ------------------------------------------------------------------
    # Tensor form
    # ------------------------------------------------------------------
    def to_dense(self) -> BoolArray:
        """Materialize the boolean tensor ``X`` with shape (g, m, n).

        ``X[i, j, k]`` is True iff resource k sits on server j *and*
        server j belongs to datacenter i — matching the paper's X_ijk.
        """
        infra = self.infrastructure
        x = np.zeros((infra.g, infra.m, self.n), dtype=bool)
        placed = np.flatnonzero(self.placed_mask)
        servers = self.assignment[placed]
        dcs = infra.server_datacenter[servers]
        x[dcs, servers, placed] = True
        return x

    @classmethod
    def from_dense(cls, x: BoolArray, infrastructure: Infrastructure) -> "Placement":
        """Collapse a dense tensor back to the flat genome.

        Raises :class:`~repro.errors.EncodingError` if any resource is
        hosted more than once or on a server/datacenter pair that
        disagrees with the infrastructure's server→datacenter map.
        """
        x = np.asarray(x, dtype=bool)
        g, m, n = infrastructure.g, infrastructure.m, x.shape[-1]
        if x.shape != (g, m, n):
            raise EncodingError(
                f"dense X has shape {x.shape}, expected {(g, m, n)}"
            )
        per_resource = x.sum(axis=(0, 1))
        if np.any(per_resource > 1):
            raise EncodingError("some resource is hosted on multiple servers")
        dc_idx, srv_idx, res_idx = np.nonzero(x)
        if np.any(infrastructure.server_datacenter[srv_idx] != dc_idx):
            raise EncodingError("X places a server in the wrong datacenter")
        assignment = np.full(n, UNPLACED, dtype=np.int64)
        assignment[res_idx] = srv_idx
        return cls(assignment=assignment, infrastructure=infrastructure)

    # ------------------------------------------------------------------
    # Loads
    # ------------------------------------------------------------------
    def server_usage(self, demand: FloatArray) -> FloatArray:
        """Total demand placed on each server: shape (m, h).

        ``demand`` is the request's C matrix (n, h).  Vectorized with a
        scatter-add; unplaced resources contribute nothing.
        """
        demand = np.asarray(demand, dtype=np.float64)
        if demand.shape[0] != self.n:
            raise EncodingError(
                f"demand rows ({demand.shape[0]}) != placement size ({self.n})"
            )
        infra = self.infrastructure
        mask = self.placed_mask
        return scatter_rows(self.assignment[mask], demand[mask], infra.m)

    def loads(self, demand: FloatArray) -> FloatArray:
        """Per-server, per-attribute load L_jl of Eq. 25 (usage / capacity).

        Servers with zero capacity on an attribute report load 0 when
        unused and ``inf`` when anything is placed on them.
        """
        usage = self.server_usage(demand)
        cap = self.infrastructure.capacity
        with np.errstate(divide="ignore", invalid="ignore"):
            load = np.where(cap > 0, usage / np.where(cap > 0, cap, 1.0), 0.0)
            load = np.where((cap == 0) & (usage > 0), np.inf, load)
        return load

    def with_assignment(self, resource: int, server: int) -> "Placement":
        """Return a copy with one gene changed (used by repair moves)."""
        new = self.assignment.copy()
        new[resource] = server
        return Placement(assignment=new, infrastructure=self.infrastructure)

    def copy(self) -> "Placement":
        """Independent copy (the assignment array is duplicated)."""
        return Placement(
            assignment=self.assignment.copy(), infrastructure=self.infrastructure
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Placement):
            return NotImplemented
        return (
            self.infrastructure is other.infrastructure
            and np.array_equal(self.assignment, other.assignment)
        )

    def __hash__(self) -> int:
        return hash((id(self.infrastructure), self.assignment.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        placed = int(self.placed_mask.sum())
        return f"Placement(n={self.n}, placed={placed})"
