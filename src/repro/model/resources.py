"""Individual resource objects: servers, datacenters, virtual resources.

These are the ergonomic, record-style view of the model.  For
computation the library flattens collections of them into the matrix
form of :class:`~repro.model.infrastructure.Infrastructure` and
:class:`~repro.model.request.Request`; the dataclasses here exist so
examples and topology builders can speak in domain terms ("a rack of
16 servers with 32 cores each") instead of raw matrices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import ValidationError
from repro.model.attributes import DEFAULT_ATTRIBUTES, AttributeSchema

__all__ = ["Server", "Datacenter", "VirtualResource"]


@dataclass
class Server:
    """A physical host (one row j of the provider matrices).

    Parameters
    ----------
    capacity:
        Attribute capacities ``P_j,:`` (Eq. 1), e.g. ``[32, 128, 2000]``
        for 32 cores / 128 GiB RAM / 2 TB disk.
    capacity_factor:
        Virtual-to-physical overhead factors ``F_j,:`` (Eq. 3); the
        usable fraction of each attribute once virtualization overhead
        is paid.  1.0 means no overhead.
    operating_cost:
        ``E_j`` (Eq. 6): power, floor space, storage, IT operations.
    usage_cost:
        ``U_j`` (Eq. 7): per-hosted-resource usage cost.
    max_load:
        ``LM_j,:`` (Eq. 8): per-attribute load knee in [0, 1) beyond
        which QoS degrades.
    max_qos:
        ``QM_j,:`` (Eq. 8): per-attribute best achievable QoS in [0, 1).
    name:
        Optional label for reporting.
    """

    capacity: Sequence[float]
    capacity_factor: Sequence[float] | None = None
    operating_cost: float = 1.0
    usage_cost: float = 1.0
    max_load: Sequence[float] | None = None
    max_qos: Sequence[float] | None = None
    name: str = ""
    schema: AttributeSchema = field(default=DEFAULT_ATTRIBUTES)

    def __post_init__(self) -> None:
        h = self.schema.h
        cap = np.asarray(self.capacity, dtype=np.float64)
        if cap.shape != (h,):
            raise ValidationError(
                f"server capacity has shape {cap.shape}, schema expects ({h},)"
            )
        if np.any(cap < 0) or not np.all(np.isfinite(cap)):
            raise ValidationError("server capacities must be finite and >= 0")
        self.capacity = cap
        if self.capacity_factor is None:
            self.capacity_factor = np.ones(h)
        else:
            fac = np.asarray(self.capacity_factor, dtype=np.float64)
            if fac.shape != (h,):
                raise ValidationError(
                    f"capacity_factor has shape {fac.shape}, expected ({h},)"
                )
            if np.any(fac <= 0) or np.any(fac > 1):
                raise ValidationError("capacity factors must lie in (0, 1]")
            self.capacity_factor = fac
        if self.operating_cost < 0 or self.usage_cost < 0:
            raise ValidationError("server costs must be >= 0")
        self.max_load = self._fraction_field(self.max_load, 0.8, "max_load")
        self.max_qos = self._fraction_field(self.max_qos, 0.99, "max_qos")

    def _fraction_field(self, value, default: float, name: str) -> np.ndarray:
        h = self.schema.h
        if value is None:
            return np.full(h, default)
        arr = np.asarray(value, dtype=np.float64)
        if arr.shape != (h,):
            raise ValidationError(f"{name} has shape {arr.shape}, expected ({h},)")
        if np.any(arr < 0) or np.any(arr >= 1):
            raise ValidationError(f"{name} values must lie in [0, 1)")
        return arr

    @property
    def effective_capacity(self) -> np.ndarray:
        """``P_j,: * F_j,:`` — the right-hand side of Eq. 4."""
        return self.capacity * self.capacity_factor


@dataclass
class Datacenter:
    """A named group of servers (one element i of the set G).

    The spine-leaf topology layer attaches network structure; for the
    allocation model a datacenter is just the affinity boundary used by
    the SAME_DATACENTER / DIFFERENT_DATACENTERS rules.
    """

    servers: list[Server] = field(default_factory=list)
    name: str = ""

    def __post_init__(self) -> None:
        if self.servers:
            first = self.servers[0].schema
            for server in self.servers[1:]:
                if server.schema.names != first.names:
                    raise ValidationError(
                        "all servers in a datacenter must share one attribute schema"
                    )

    def add(self, server: Server) -> None:
        """Append a server, enforcing schema consistency."""
        if self.servers and server.schema.names != self.servers[0].schema.names:
            raise ValidationError("server schema differs from datacenter schema")
        self.servers.append(server)

    def __len__(self) -> int:
        return len(self.servers)


@dataclass
class VirtualResource:
    """A requested virtual resource (one row k of the consumer matrices).

    Parameters
    ----------
    demand:
        ``C_k,:`` (Eq. 2): requested capacity per attribute.
    qos_guarantee:
        ``C^Q_k``: the QoS level the provider promises, in (0, 1).
    downtime_cost:
        ``C^U_k``: penalty per unit of QoS shortfall (Eq. 23).
    migration_cost:
        ``M_k``: cost of moving this resource during reconfiguration
        (Eq. 26).
    name:
        Optional label.
    """

    demand: Sequence[float]
    qos_guarantee: float = 0.95
    downtime_cost: float = 1.0
    migration_cost: float = 1.0
    name: str = ""
    schema: AttributeSchema = field(default=DEFAULT_ATTRIBUTES)

    def __post_init__(self) -> None:
        dem = np.asarray(self.demand, dtype=np.float64)
        if dem.shape != (self.schema.h,):
            raise ValidationError(
                f"demand has shape {dem.shape}, schema expects ({self.schema.h},)"
            )
        if np.any(dem < 0) or not np.all(np.isfinite(dem)):
            raise ValidationError("demands must be finite and >= 0")
        self.demand = dem
        if not (0 < self.qos_guarantee <= 1):
            raise ValidationError(
                f"qos_guarantee must lie in (0, 1], got {self.qos_guarantee}"
            )
        if self.downtime_cost < 0 or self.migration_cost < 0:
            raise ValidationError("costs must be >= 0")
