"""Deterministic random-number plumbing.

Every stochastic component in the library (scenario generation, genetic
operators, tabu tie-breaking) takes a ``seed`` argument accepting either
``None``, an ``int``, or an existing :class:`numpy.random.Generator`.
Centralizing the coercion here keeps experiments reproducible: the paper
averages over 100 randomly generated scenarios, and regenerating *the
same* 100 scenarios across benchmark runs requires stable seeding.
"""

from __future__ import annotations

import numpy as np

from repro.types import SeedLike

__all__ = ["as_generator", "spawn_generators", "root_sequence", "derive_sequence"]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged (shared stream);
    anything else is fed to :func:`numpy.random.default_rng`.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def root_sequence(seed: SeedLike = None) -> np.random.SeedSequence:
    """Coerce ``seed`` into a root :class:`numpy.random.SeedSequence`.

    A generator contributes its own seed sequence when it has one (so a
    component handed a generator derives the same child streams as one
    handed the seed that built it); ``None`` draws fresh OS entropy —
    still a *fixed* root, so streams derived from it stay coherent
    within the component even when the run as a whole is unseeded.
    """
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if isinstance(seed, np.random.Generator):
        seq = getattr(seed.bit_generator, "seed_seq", None)
        if isinstance(seq, np.random.SeedSequence):
            return seq
        return np.random.SeedSequence()  # pragma: no cover - exotic bit gens
    return np.random.SeedSequence(seed)


def derive_sequence(
    root: np.random.SeedSequence, *path: int
) -> np.random.SeedSequence:
    """The child stream at ``path`` below ``root``.

    Mirrors :meth:`numpy.random.SeedSequence.spawn` semantics — a child
    carries ``spawn_key = parent.spawn_key + path`` over the same
    entropy — but addresses children by *coordinate* instead of by
    spawn order.  That is what makes parallel fan-out deterministic:
    deriving stream ``(generation, individual)`` yields the same
    :class:`~numpy.random.SeedSequence` no matter how many workers run
    or which finishes first.
    """
    return np.random.SeedSequence(
        entropy=root.entropy,
        spawn_key=(*root.spawn_key, *(int(p) for p in path)),
    )


def spawn_generators(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent generators from ``seed``.

    Used by the multi-run evaluation harness so that run *i* of an
    experiment sees the same scenario stream regardless of how many
    total runs were requested.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    root = as_generator(seed)
    seq = root.bit_generator.seed_seq  # type: ignore[attr-defined]
    if seq is None:  # pragma: no cover - only for exotic bit generators
        return [np.random.default_rng(root.integers(2**63)) for _ in range(count)]
    return [np.random.default_rng(child) for child in seq.spawn(count)]
