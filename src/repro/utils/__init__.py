"""Small shared utilities: RNG handling, validation, timers, Pareto math."""

from repro.utils.rng import as_generator, spawn_generators
from repro.utils.timers import Stopwatch, format_duration
from repro.utils.validation import (
    check_fraction,
    check_nonnegative,
    check_positive_int,
    check_shape,
)
from repro.utils.pareto import (
    dominates,
    non_dominated_mask,
    pareto_front_indices,
)

__all__ = [
    "as_generator",
    "spawn_generators",
    "Stopwatch",
    "format_duration",
    "check_fraction",
    "check_nonnegative",
    "check_positive_int",
    "check_shape",
    "dominates",
    "non_dominated_mask",
    "pareto_front_indices",
]
