"""Argument validators shared across model constructors.

The model layer carries many same-shaped matrices (P, C, F, loads,
QoS); shape bugs there surface far away inside vectorized objective
code, so constructors validate eagerly with precise error messages.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import DimensionError, ValidationError

__all__ = [
    "check_positive_int",
    "check_nonnegative",
    "check_fraction",
    "check_shape",
    "as_float_matrix",
    "as_float_vector",
]


def check_positive_int(value: int, name: str) -> int:
    """Require ``value`` to be an integer >= 1 and return it as ``int``."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise ValidationError(f"{name} must be an int, got {type(value).__name__}")
    if value < 1:
        raise ValidationError(f"{name} must be >= 1, got {value}")
    return int(value)


def check_nonnegative(array: np.ndarray, name: str) -> None:
    """Require every element of ``array`` to be finite and >= 0."""
    if not np.all(np.isfinite(array)):
        raise ValidationError(f"{name} contains non-finite values")
    if np.any(array < 0):
        raise ValidationError(f"{name} contains negative values")


def check_fraction(array: np.ndarray, name: str, *, strict_upper: bool = True) -> None:
    """Require every element to lie in ``[0, 1)`` (or ``[0, 1]``).

    The load/QoS quantities of Eq. 8 are defined on ``[0, 1)``.
    """
    check_nonnegative(array, name)
    upper_ok = np.all(array < 1) if strict_upper else np.all(array <= 1)
    if not upper_ok:
        bound = "< 1" if strict_upper else "<= 1"
        raise ValidationError(f"{name} must be {bound} everywhere")


def check_shape(array: np.ndarray, shape: Sequence[int], name: str) -> None:
    """Require ``array.shape == tuple(shape)``."""
    if array.shape != tuple(shape):
        raise DimensionError(
            f"{name} has shape {array.shape}, expected {tuple(shape)}"
        )


def as_float_matrix(data, rows: int, cols: int, name: str) -> np.ndarray:
    """Convert to a C-contiguous float64 matrix of shape (rows, cols)."""
    array = np.ascontiguousarray(data, dtype=np.float64)
    check_shape(array, (rows, cols), name)
    return array


def as_float_vector(data, size: int, name: str) -> np.ndarray:
    """Convert to a C-contiguous float64 vector of length ``size``."""
    array = np.ascontiguousarray(data, dtype=np.float64)
    check_shape(array, (size,), name)
    return array
