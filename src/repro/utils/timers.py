"""Wall-clock measurement helpers for the evaluation harness.

Execution time is one of the paper's four comparison criteria
(Figures 7 and 8), so timing is a first-class concern: every algorithm
run is wrapped in a :class:`Stopwatch` and the elapsed seconds travel
with the :class:`~repro.evaluation.metrics.AllocationOutcome`.
"""

from __future__ import annotations

import time

__all__ = ["Stopwatch", "format_duration"]


class Stopwatch:
    """A restartable monotonic stopwatch.

    Usage::

        with Stopwatch() as sw:
            run_algorithm()
        print(sw.elapsed)
    """

    def __init__(self, elapsed: float = 0.0) -> None:
        if elapsed < 0:
            raise ValueError(f"elapsed must be >= 0, got {elapsed}")
        self._start: float | None = None
        # Pre-charged seconds: a resumed run restores the wall clock its
        # earlier incarnation already spent, so time limits stay honest.
        self._elapsed: float = float(elapsed)

    def start(self) -> "Stopwatch":
        """Begin (or resume) timing."""
        if self._start is None:
            self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop timing and return the accumulated elapsed seconds."""
        if self._start is not None:
            self._elapsed += time.perf_counter() - self._start
            self._start = None
        return self._elapsed

    def split(self) -> float:
        """Lap time of the in-flight segment, without stopping.

        Seconds since the most recent :meth:`start` — unlike
        :attr:`elapsed` this excludes previously accumulated segments,
        so the tracer can timestamp child spans relative to their
        enclosing span.  Returns 0.0 when the stopwatch is stopped.
        """
        if self._start is None:
            return 0.0
        return time.perf_counter() - self._start

    def reset(self) -> None:
        """Zero the stopwatch (also stops it)."""
        self._start = None
        self._elapsed = 0.0

    @property
    def running(self) -> bool:
        """Whether the stopwatch is currently accumulating time."""
        return self._start is not None

    @property
    def elapsed(self) -> float:
        """Accumulated seconds (includes the in-flight span when running)."""
        if self._start is not None:
            return self._elapsed + (time.perf_counter() - self._start)
        return self._elapsed

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def format_duration(seconds: float) -> str:
    """Render seconds as a human-readable string (``1.23 s``, ``45 ms``...).

    Tiny negative values in ``(-1e-9, 0)`` are floating-point noise
    (they arise when a span's self-time is computed as total minus
    children) and are clamped to zero; anything more negative is a
    caller bug and still raises.
    """
    if -1e-9 < seconds < 0:
        seconds = 0.0
    if seconds < 0:
        raise ValueError(f"duration must be >= 0, got {seconds}")
    if seconds >= 60.0:
        minutes, rem = divmod(seconds, 60.0)
        return f"{int(minutes)} min {rem:.1f} s"
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f} ms"
    return f"{seconds * 1e6:.0f} us"
