"""Bincount-based scatter-add helpers.

``np.add.at`` is the textbook way to accumulate duplicate-index
updates, but it dispatches through the generalized ufunc machinery and
is an order of magnitude slower than ``np.bincount`` for the dense
integer-index scatters this codebase performs (demand rows onto
servers, penalties onto hosts, usage onto datacenters).

Both primitives accumulate duplicate indices **in input order**, so for
float64 weights the sums are bit-identical — the property every
replacement in this repo relies on and the parity tests in
``tests/unit/test_scatter_helpers.py`` pin down.

These helpers live in ``repro.utils`` (below the model layer) so model,
analysis and scheduler code can use them without importing the engine's
kernel registry.
"""

from __future__ import annotations

import numpy as np

from repro.types import FloatArray, IntArray

__all__ = ["scatter_rows", "scatter_values"]


def scatter_rows(index: IntArray, rows: FloatArray, length: int) -> FloatArray:
    """Sum 2-D ``rows`` into a fresh ``(length, h)`` accumulator.

    The bincount equivalent of::

        out = np.zeros((length, h)); np.add.at(out, index, rows)

    ``index`` values must lie in ``[0, length)``.
    """
    index = np.asarray(index, dtype=np.int64)
    rows = np.asarray(rows, dtype=np.float64)
    if rows.ndim != 2:
        raise ValueError(f"rows must be 2-D, got shape {rows.shape}")
    h = rows.shape[1]
    out = np.empty((length, h), dtype=np.float64)
    for col in range(h):
        out[:, col] = np.bincount(
            index, weights=rows[:, col], minlength=length
        )[:length]
    return out


def scatter_values(index: IntArray, values: FloatArray, length: int) -> FloatArray:
    """Sum 1-D ``values`` into a fresh ``(length,)`` accumulator.

    The bincount equivalent of::

        out = np.zeros(length); np.add.at(out, index, values)
    """
    index = np.asarray(index, dtype=np.int64)
    values = np.asarray(values, dtype=np.float64)
    return np.bincount(index, weights=values, minlength=length)[:length]
