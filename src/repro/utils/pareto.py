"""Pareto-dominance primitives shared by the EA layer and the reporters.

All functions operate on *minimization* objective matrices of shape
``(n_points, n_objectives)``.  The EA layer builds its fast
nondominated sort on top of the pairwise machinery here; tests use the
naive implementations as oracles for the optimized ones.
"""

from __future__ import annotations

import numpy as np

from repro.types import BoolArray, FloatArray, IntArray

__all__ = [
    "dominates",
    "dominance_matrix",
    "non_dominated_mask",
    "pareto_front_indices",
    "ideal_point",
    "nadir_point",
]


def dominates(a: FloatArray, b: FloatArray) -> bool:
    """Return True iff objective vector ``a`` Pareto-dominates ``b``.

    ``a`` dominates ``b`` when it is no worse in every objective and
    strictly better in at least one (minimization).
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return bool(np.all(a <= b) and np.any(a < b))


def dominance_matrix(objectives: FloatArray) -> BoolArray:
    """Pairwise dominance: ``out[i, j]`` is True iff point i dominates j.

    Vectorized via broadcasting — O(n^2 * m) memory but no Python loop,
    which is the profitable trade for the population sizes used here
    (Table III: population 100).
    """
    obj = np.asarray(objectives, dtype=np.float64)
    if obj.ndim != 2:
        raise ValueError(f"objectives must be 2-D, got shape {obj.shape}")
    le = np.all(obj[:, None, :] <= obj[None, :, :], axis=2)
    lt = np.any(obj[:, None, :] < obj[None, :, :], axis=2)
    return le & lt


def non_dominated_mask(objectives: FloatArray) -> BoolArray:
    """Boolean mask of points not dominated by any other point."""
    dom = dominance_matrix(objectives)
    return ~np.any(dom, axis=0)


def pareto_front_indices(objectives: FloatArray) -> IntArray:
    """Indices of the (first) Pareto front, in ascending index order."""
    return np.flatnonzero(non_dominated_mask(objectives)).astype(np.int64)


def ideal_point(objectives: FloatArray) -> FloatArray:
    """Component-wise minimum — the ideal point used by the tabu selection.

    The paper picks, among repaired candidates, "the solution that is
    found closer to the ideal point where cost and rejection rate are
    the next to naught" (Section III).
    """
    obj = np.asarray(objectives, dtype=np.float64)
    if obj.ndim != 2 or obj.shape[0] == 0:
        raise ValueError("objectives must be a non-empty 2-D array")
    return obj.min(axis=0)


def nadir_point(objectives: FloatArray) -> FloatArray:
    """Component-wise maximum over the first Pareto front."""
    obj = np.asarray(objectives, dtype=np.float64)
    front = pareto_front_indices(obj)
    return obj[front].max(axis=0)
