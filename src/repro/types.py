"""Shared enums and type aliases used across the repro library.

The vocabulary mirrors the paper:

* :class:`PlacementRule` — the four affinity/anti-affinity relationships
  of Section III (Eq. 9-12).
* :class:`AlgorithmKind` — the six compared algorithms of Section IV.
* :class:`ObjectiveKind` — the three cost objectives aggregated into the
  global objective Z (Eq. 15).
"""

from __future__ import annotations

import enum
from typing import Union

import numpy as np
import numpy.typing as npt

__all__ = [
    "PlacementRule",
    "AlgorithmKind",
    "ObjectiveKind",
    "ConstraintHandling",
    "FloatArray",
    "IntArray",
    "BoolArray",
    "SeedLike",
]

#: A float64 NumPy array.
FloatArray = npt.NDArray[np.float64]
#: An integer NumPy array (genomes, index maps).
IntArray = npt.NDArray[np.int64]
#: A boolean NumPy array (masks).
BoolArray = npt.NDArray[np.bool_]
#: Anything acceptable to :func:`numpy.random.default_rng`.
SeedLike = Union[None, int, np.random.Generator]


class PlacementRule(enum.Enum):
    """The four consumer affinity/anti-affinity relationships (Section III).

    Members
    -------
    SAME_DATACENTER
        *Co-localization in same datacenter* (Eq. 9): all resources in
        the group must land in one datacenter.
    SAME_SERVER
        *Co-localization on same server* (Eq. 10): all resources in the
        group must land on one physical server.
    DIFFERENT_DATACENTERS
        *Separation in different datacenters* (Eq. 11): no two resources
        of the group may share a datacenter.
    DIFFERENT_SERVERS
        *Separation on different servers* (Eq. 12): no two resources of
        the group may share a server (same datacenter allowed).
    """

    SAME_DATACENTER = "same_datacenter"
    SAME_SERVER = "same_server"
    DIFFERENT_DATACENTERS = "different_datacenters"
    DIFFERENT_SERVERS = "different_servers"

    @property
    def is_affinity(self) -> bool:
        """True for the two co-localization rules."""
        return self in (PlacementRule.SAME_DATACENTER, PlacementRule.SAME_SERVER)

    @property
    def is_anti_affinity(self) -> bool:
        """True for the two separation rules."""
        return not self.is_affinity


class AlgorithmKind(enum.Enum):
    """The six allocation algorithms compared in Section IV."""

    ROUND_ROBIN = "round_robin"
    CONSTRAINT_PROGRAMMING = "constraint_programming"
    NSGA2 = "nsga2"
    NSGA3 = "nsga3"
    NSGA3_CONSTRAINT_SOLVER = "nsga3_constraint_solver"
    NSGA3_TABU = "nsga3_tabu"


class ObjectiveKind(enum.Enum):
    """The three monetary objectives aggregated into Z (Eq. 15)."""

    USAGE_AND_OPERATING_COST = "usage_and_operating_cost"  # Eq. 22
    DOWNTIME_COST = "downtime_cost"  # Eq. 23
    MIGRATION_COST = "migration_cost"  # Eq. 26


class ConstraintHandling(enum.Enum):
    """Strategies for strict constraints in evolutionary search (Section III).

    The paper lists four methods and adopts repair; we implement the
    first three plus the penalty variant the authors tried and rejected.
    """

    NONE = "none"  # unmodified NSGA: constraints ignored
    EXCLUDE = "exclude"  # method 1: drop infeasible individuals
    REPAIR_TABU = "repair_tabu"  # method 2 with tabu search (the contribution)
    REPAIR_CP = "repair_cp"  # method 2 with the constraint solver
    PENALTY = "penalty"  # attempted-and-rejected: violation penalty
