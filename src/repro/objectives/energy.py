"""Energy cost — an optional provider-side power term (off by default).

The paper's related-work section (Panggabean et al.) optimizes data
center energy with the standard linear server power model: an *active*
host draws a constant idle power plus a dynamic component proportional
to its load fraction::

    energy(X) = sum_{j active under X} idle_j + dynamic_j * load_j

where ``load_j`` is the mean utilized fraction over the host's
resource attributes (committed base usage included) and a host is
active when it receives at least one resource of the current batch.

The paper prices everything in "equivalent monetary cost", so the term
folds into objective column 0 (usage + operating cost) scaled by a
configurable ``energy_weight`` rather than growing the objective
space; weight 0.0 — the default everywhere — leaves the published
three-objective formulation byte-identical.  The power price vectors
are derived deterministically from the infrastructure's own cost
vectors (:func:`power_model`), so compiled-problem fingerprints and
caches are unchanged by the feature.
"""

from __future__ import annotations

import numpy as np

from repro.engine.kernels import active_kernel
from repro.errors import DimensionError
from repro.model.infrastructure import Infrastructure
from repro.model.placement import UNPLACED
from repro.types import FloatArray, IntArray

__all__ = ["ENERGY_IDLE_FRACTION", "EnergyCost", "power_model"]

#: Fraction of a host's power price charged the moment it is switched
#: on, regardless of load — the conventional ~60/40 idle/dynamic split
#: of the linear server power model.
ENERGY_IDLE_FRACTION = 0.6


def power_model(
    infrastructure: Infrastructure,
) -> tuple[FloatArray, FloatArray]:
    """Per-server (idle, dynamic) power price vectors.

    Derived from ``E_j + U_j`` — the same coefficient Eq. 22 charges —
    split by :data:`ENERGY_IDLE_FRACTION`, so no new instance data is
    required and instance fingerprints stay stable.
    """
    rate = infrastructure.operating_cost + infrastructure.usage_cost
    idle = ENERGY_IDLE_FRACTION * rate
    dynamic = (1.0 - ENERGY_IDLE_FRACTION) * rate
    return idle, dynamic


class EnergyCost:
    """Vectorized linear-power-model energy evaluator.

    Parameters
    ----------
    infrastructure:
        Supplies capacities and, via :func:`power_model`, the default
        power prices.
    demand:
        The request's (n, h) demand matrix — needed to scatter usage
        when the caller has none at hand.
    base_usage:
        Committed usage from earlier windows; counts toward each
        host's load fraction but never toggles a host active.
    idle_power, dynamic_power:
        Override price vectors (m,); defaults come from
        :func:`power_model`.
    """

    name = "energy"

    def __init__(
        self,
        infrastructure: Infrastructure,
        demand: FloatArray,
        *,
        base_usage: FloatArray | None = None,
        idle_power: FloatArray | None = None,
        dynamic_power: FloatArray | None = None,
    ) -> None:
        self.infrastructure = infrastructure
        self._demand = np.asarray(demand, dtype=np.float64)
        default_idle, default_dynamic = power_model(infrastructure)
        self.idle_power: FloatArray = (
            default_idle if idle_power is None
            else np.asarray(idle_power, dtype=np.float64)
        )
        self.dynamic_power: FloatArray = (
            default_dynamic if dynamic_power is None
            else np.asarray(dynamic_power, dtype=np.float64)
        )
        capacity = infrastructure.effective_capacity
        self._base: FloatArray = (
            np.zeros_like(capacity) if base_usage is None
            else np.asarray(base_usage, dtype=np.float64)
        )
        # Load fraction is 0 on degenerate zero-capacity cells.
        self._inv_capacity: FloatArray = np.where(
            capacity > 0, 1.0 / np.where(capacity > 0, capacity, 1.0), 0.0
        )

    # ------------------------------------------------------------------
    def upper_bound(self) -> float:
        """Energy with every host on at load 1 — the invariant ceiling.

        Loads can exceed 1 only on *violating* placements; feasible
        ones (what the invariant catalog checks) stay under this.
        """
        return float((self.idle_power + self.dynamic_power).sum())

    def value(
        self, assignment: IntArray, usage: FloatArray | None = None
    ) -> float:
        """Energy of one genome; pass ``usage`` (m, h) to skip a scatter."""
        assignment = np.asarray(assignment, dtype=np.int64)
        mask = assignment != UNPLACED
        placed = assignment[mask]
        if usage is None:
            usage = active_kernel().scatter_usage(
                placed, self._demand[mask], self._base.shape[0]
            )
        active = np.zeros(self.infrastructure.m, dtype=bool)
        active[placed] = True
        load = ((usage + self._base) * self._inv_capacity).mean(axis=1)
        return float(
            (self.idle_power[active]
             + self.dynamic_power[active] * load[active]).sum()
        )

    def batch(
        self, population: IntArray, usage: FloatArray | None = None
    ) -> FloatArray:
        """Energy per individual; pass ``usage`` (pop, m, h) to reuse it."""
        population = np.asarray(population, dtype=np.int64)
        if population.ndim != 2:
            raise DimensionError(
                f"population must be 2-D, got shape {population.shape}"
            )
        pop, n = population.shape
        m = self.infrastructure.m
        kernel = active_kernel()
        active = kernel.batch_active(population, m)
        if usage is None:
            usage = kernel.batch_usage(population, self._demand, m)
        load = ((usage + self._base[None, :, :])
                * self._inv_capacity[None, :, :]).mean(axis=2)
        per_server = self.idle_power[None, :] + self.dynamic_power[None, :] * load
        return np.where(active, per_server, 0.0).sum(axis=1)
