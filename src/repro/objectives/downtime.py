"""Downtime cost — the second term of Z (Eq. 23).

The provider pays a penalty C^U_k whenever the QoS delivered to
resource k (the Eq. 24 curve evaluated at the Eq. 25 loads of its host)
misses the guaranteed level C^Q_k.  A resource's delivered QoS is the
*worst* attribute of its host: one saturated attribute (CPU, say)
degrades the hosted service regardless of how idle the others are.

Two accounting modes:

``"shortfall"`` (default)
    penalty_k = C^U_k * max(0, (C^Q_k - Q) / C^Q_k) — zero while the
    guarantee holds, growing with the relative shortfall.  This matches
    the prose ("if it is not respected the provider pays a downtime
    penalty").
``"literal"``
    penalty_k = C^U_k * (Q / C^Q_k) — the formula exactly as printed in
    Eq. 23.  Note it *rewards* degradation readers should treat it as a
    typo; it is kept for fidelity experiments only.
"""

from __future__ import annotations

import numpy as np

from repro.engine.kernels import active_kernel
from repro.errors import DimensionError, ValidationError
from repro.model.infrastructure import Infrastructure
from repro.model.placement import UNPLACED
from repro.model.request import Request
from repro.types import FloatArray, IntArray

__all__ = ["DowntimeCost"]

_MODES = ("shortfall", "literal")


class DowntimeCost:
    """Vectorized Eq. 23 evaluator.

    Parameters
    ----------
    infrastructure, request:
        The problem instance (supplies LM, QM, C, C^Q, C^U).
    base_usage:
        Committed usage from prior windows; adds to the load every
        candidate induces.
    mode:
        ``"shortfall"`` or ``"literal"`` (see module docstring).
    """

    name = "downtime_cost"

    def __init__(
        self,
        infrastructure: Infrastructure,
        request: Request,
        base_usage: FloatArray | None = None,
        mode: str = "shortfall",
    ) -> None:
        if mode not in _MODES:
            raise ValidationError(f"mode must be one of {_MODES}, got {mode!r}")
        self.infrastructure = infrastructure
        self.request = request
        self.mode = mode
        if base_usage is None:
            base_usage = np.zeros((infrastructure.m, infrastructure.h))
        else:
            base_usage = np.ascontiguousarray(base_usage, dtype=np.float64)
            if base_usage.shape != (infrastructure.m, infrastructure.h):
                raise DimensionError(
                    f"base_usage shape {base_usage.shape}, expected "
                    f"{(infrastructure.m, infrastructure.h)}"
                )
        self.base_usage = base_usage

    # ------------------------------------------------------------------
    def _server_min_qos(self, usage: FloatArray) -> FloatArray:
        """Worst-attribute QoS per server for a usage array (..., m, h)."""
        infra = self.infrastructure
        return active_kernel().server_min_qos(
            usage, self.base_usage, infra.capacity, infra.max_load, infra.max_qos
        )

    def _penalties(self, qos_per_resource: FloatArray) -> FloatArray:
        """Map delivered QoS per resource to monetary penalties."""
        cq = self.request.qos_guarantee
        cu = self.request.downtime_cost
        if self.mode == "literal":
            return cu * (qos_per_resource / cq)
        shortfall = np.maximum(0.0, (cq - qos_per_resource) / cq)
        return cu * shortfall

    # ------------------------------------------------------------------
    def value(self, assignment: IntArray) -> float:
        """Downtime cost of one genome."""
        assignment = np.asarray(assignment, dtype=np.int64)
        infra = self.infrastructure
        mask = assignment != UNPLACED
        usage = active_kernel().scatter_usage(
            assignment[mask], self.request.demand[mask], infra.m
        )
        return self.value_from_usage(assignment, usage)

    def value_from_usage(self, assignment: IntArray, usage: FloatArray) -> float:
        """Downtime cost of one genome whose (m, h) usage matrix is
        already known — shares the scatter-add with the capacity check
        (the single-genome analogue of :meth:`batch`)."""
        assignment = np.asarray(assignment, dtype=np.int64)
        mask = assignment != UNPLACED
        server_qos = self._server_min_qos(usage)
        per_resource = np.zeros(self.request.n)
        per_resource[mask] = server_qos[assignment[mask]]
        penalties = self._penalties(per_resource)
        return float(penalties[mask].sum())

    def batch(self, population: IntArray, usage: FloatArray) -> FloatArray:
        """Downtime cost per individual.

        ``usage`` is the (pop, m, h) tensor already computed by the
        capacity constraint's batch pass — sharing it avoids a second
        scatter-add over the population.
        """
        population = np.asarray(population, dtype=np.int64)
        pop, n = population.shape
        if usage.shape[0] != pop:
            raise DimensionError(
                f"usage tensor covers {usage.shape[0]} individuals, "
                f"population has {pop}"
            )
        server_qos = self._server_min_qos(usage)  # (pop, m)
        mask = population != UNPLACED
        safe = np.where(mask, population, 0)
        delivered = np.take_along_axis(server_qos, safe, axis=1)
        penalties = self._penalties(delivered)
        penalties = np.where(mask, penalties, 0.0)
        return penalties.sum(axis=1)
