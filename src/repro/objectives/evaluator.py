"""PopulationEvaluator: one-stop evaluation of genomes and populations.

This is the "evaluation process" box of the paper's Figure 3: given a
problem instance it computes, for each candidate placement, the three
objective values (Eq. 22/23/26) and the total constraint violations.
The batch path shares a single usage-tensor scatter-add between the
capacity constraint and the downtime objective, which keeps the 10 000
evaluations of Table III tractable in pure Python.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constraints.registry import ConstraintSet
from repro.engine.kernels import active_kernel
from repro.model.infrastructure import Infrastructure
from repro.model.request import Request
from repro.objectives.aggregate import ObjectiveVector, aggregate_scalar
from repro.objectives.downtime import DowntimeCost
from repro.objectives.energy import EnergyCost
from repro.objectives.migration import MigrationCost
from repro.objectives.usage_cost import UsageOperatingCost
from repro.types import FloatArray, IntArray

__all__ = ["PopulationEvaluator", "EvaluationResult"]


@dataclass(frozen=True)
class EvaluationResult:
    """Batch evaluation output.

    Attributes
    ----------
    objectives:
        (pop, 3) matrix in canonical objective order.
    violations:
        (pop,) total constraint violations per individual.
    """

    objectives: FloatArray
    violations: IntArray

    @property
    def feasible(self) -> np.ndarray:
        """Boolean feasibility mask."""
        return self.violations == 0

    def aggregate(self, weights: FloatArray | None = None) -> FloatArray:
        """Scalar Z per individual (Eq. 15)."""
        return aggregate_scalar(self.objectives, weights)


class PopulationEvaluator:
    """Evaluate genomes against one allocation problem instance.

    Parameters
    ----------
    infrastructure, request:
        The instance.
    base_usage:
        Committed usage from earlier windows.
    previous_assignment:
        X^t for the migration objective (None for first placement).
    downtime_mode:
        Passed through to :class:`DowntimeCost`.
    per_server_operating:
        Passed through to :class:`UsageOperatingCost`.
    include_assignment_constraint:
        Whether unplaced genes count as violations (off for EAs whose
        genomes are always fully placed).
    qos_strict:
        Enable the hard load-cap constraint (L <= LM) in addition to
        plain capacity (see :mod:`repro.constraints.load_cap`).
    energy_weight:
        Weight of the optional :class:`EnergyCost` term folded into
        objective column 0 (see :mod:`repro.objectives.energy`);
        0.0 — the default — skips the term entirely and reproduces the
        paper's formulation bit for bit.
    constraints:
        An already-built :class:`ConstraintSet` for this instance and
        these options (e.g. bound from a
        :class:`repro.engine.CompiledProblem`); when given it is used
        as-is instead of constructing a fresh one.
    """

    def __init__(
        self,
        infrastructure: Infrastructure,
        request: Request,
        *,
        base_usage: FloatArray | None = None,
        previous_assignment: IntArray | None = None,
        downtime_mode: str = "shortfall",
        per_server_operating: bool = False,
        include_assignment_constraint: bool = False,
        qos_strict: bool = False,
        energy_weight: float = 0.0,
        constraints: ConstraintSet | None = None,
    ) -> None:
        self.infrastructure = infrastructure
        self.request = request
        self.constraints = constraints if constraints is not None else ConstraintSet(
            infrastructure,
            request,
            base_usage=base_usage,
            include_assignment=include_assignment_constraint,
            qos_strict=qos_strict,
        )
        self.usage_cost = UsageOperatingCost(
            infrastructure, per_server_operating=per_server_operating
        )
        self.downtime = DowntimeCost(
            infrastructure, request, base_usage=base_usage, mode=downtime_mode
        )
        self.migration = MigrationCost(request, previous_assignment)
        self.energy_weight = float(energy_weight)
        self.energy: EnergyCost | None = (
            EnergyCost(infrastructure, request.demand, base_usage=base_usage)
            if self.energy_weight > 0.0
            else None
        )
        self._evaluations = 0

    # ------------------------------------------------------------------
    @property
    def evaluation_count(self) -> int:
        """Genome evaluations performed so far (Table III budget metric)."""
        return self._evaluations

    def reset_counter(self) -> None:
        """Zero the evaluation counter (between algorithm runs)."""
        self._evaluations = 0

    # ------------------------------------------------------------------
    def evaluate(self, assignment: IntArray) -> ObjectiveVector:
        """Objective vector of one genome."""
        self._evaluations += 1
        provider = self.usage_cost.value(assignment)
        if self.energy is not None:
            provider += self.energy_weight * self.energy.value(assignment)
        return ObjectiveVector(
            usage_and_operating_cost=provider,
            downtime_cost=self.downtime.value(assignment),
            migration_cost=self.migration.value(assignment),
        )

    def violations(self, assignment: IntArray) -> int:
        """Total constraint violations of one genome."""
        return self.constraints.violations(assignment)

    def scalar(self, assignment: IntArray, weights: FloatArray | None = None) -> float:
        """The aggregate Z of one genome (Eq. 15)."""
        return self.evaluate(assignment).aggregate(weights)

    def assess(self, assignment: IntArray) -> tuple[ObjectiveVector, int]:
        """Objectives *and* violations of one genome in a single pass.

        The usage matrix is scattered once and shared between the
        capacity check and the downtime objective — callers that need
        both (tabu scoring, parity verification) pay one evaluation
        instead of two.
        """
        assignment = np.ascontiguousarray(assignment, dtype=np.int64)
        self._evaluations += 1
        capacity = self.constraints.capacity
        usage = capacity.server_usage(assignment)
        violations = int(np.count_nonzero(usage > capacity._threshold))
        for constraint in self.constraints.group_constraints:
            violations += constraint.violations(assignment)
        if self.constraints.load_cap is not None:
            violations += self.constraints.load_cap.violations(assignment)
        if self.constraints.assignment is not None:
            violations += self.constraints.assignment.violations(assignment)
        provider = self.usage_cost.value(assignment)
        if self.energy is not None:
            provider += self.energy_weight * self.energy.value(assignment, usage)
        objectives = ObjectiveVector(
            usage_and_operating_cost=provider,
            downtime_cost=self.downtime.value_from_usage(assignment, usage),
            migration_cost=self.migration.value(assignment),
        )
        return objectives, violations

    # ------------------------------------------------------------------
    def evaluate_population(self, population: IntArray) -> EvaluationResult:
        """Vectorized evaluation of a population matrix (pop, n)."""
        population = np.ascontiguousarray(population, dtype=np.int64)
        if population.ndim != 2:
            raise ValueError(
                f"population must be 2-D (pop, n), got {population.shape}"
            )
        pop = population.shape[0]
        self._evaluations += pop

        kernel = active_kernel()
        capacity = self.constraints.capacity
        usage = capacity.batch_usage(population)
        violations = kernel.batch_over_counts(usage, capacity._threshold)
        layout = (
            self.constraints.group_layout()
            if kernel.vectorized_groups and self.constraints.group_constraints
            else None
        )
        if layout is not None:
            # One pass over every group of the whole population
            # (integer arithmetic — identical counts to the per-group
            # loop below, which stays for third-party constraints and
            # the reference backend).
            violations += kernel.batch_group_violations(population, layout)
        else:
            for constraint in self.constraints.group_constraints:
                violations += constraint.batch_violations(population)
        if self.constraints.load_cap is not None:
            violations += self.constraints.load_cap.batch_violations(population)
        if self.constraints.assignment is not None:
            violations += self.constraints.assignment.batch_violations(population)

        objectives = np.empty((pop, 3))
        objectives[:, 0] = self.usage_cost.batch(population)
        if self.energy is not None:
            objectives[:, 0] += self.energy_weight * self.energy.batch(
                population, usage
            )
        objectives[:, 1] = self.downtime.batch(population, usage)
        objectives[:, 2] = self.migration.batch(population)
        return EvaluationResult(objectives=objectives, violations=violations)
