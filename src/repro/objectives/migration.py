"""Migration (reconfiguration) cost — the third term of Z (Eq. 26).

The reconfiguration-plan size is estimated from the difference between
the current allocation X^t and the candidate X^{t+1}: every resource
whose host changes pays its migration charge M_k::

    cost = sum_k M_k * [X^{t+1}_k != X^t_k]

For a request not yet hosted anywhere (first placement) there is no
X^t and the objective is identically zero — matching the paper, where
migration cost only matters across optimization cycles.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DimensionError
from repro.model.placement import UNPLACED
from repro.model.request import Request
from repro.types import FloatArray, IntArray

__all__ = ["MigrationCost"]


class MigrationCost:
    """Vectorized Eq. 26 evaluator.

    Parameters
    ----------
    request:
        Supplies the migration charge vector M (shape (n,)).
    previous_assignment:
        X^t as a flat genome, or None when the request is new.
        :data:`UNPLACED` entries in X^t mean "was not hosted": placing
        such a resource is a fresh boot, not a migration, and costs
        nothing.
    """

    name = "migration_cost"

    def __init__(
        self, request: Request, previous_assignment: IntArray | None = None
    ) -> None:
        self.request = request
        if previous_assignment is not None:
            previous_assignment = np.ascontiguousarray(
                previous_assignment, dtype=np.int64
            )
            if previous_assignment.shape != (request.n,):
                raise DimensionError(
                    f"previous assignment shape {previous_assignment.shape}, "
                    f"expected ({request.n},)"
                )
        self.previous_assignment = previous_assignment

    @property
    def is_active(self) -> bool:
        """False for first placements (objective identically zero)."""
        return self.previous_assignment is not None

    def value(self, assignment: IntArray) -> float:
        """Migration cost of one genome."""
        if self.previous_assignment is None:
            return 0.0
        assignment = np.asarray(assignment, dtype=np.int64)
        prev = self.previous_assignment
        moved = (assignment != prev) & (prev != UNPLACED)
        return float(self.request.migration_cost[moved].sum())

    def batch(self, population: IntArray) -> FloatArray:
        """Migration cost per individual (pop,)."""
        population = np.asarray(population, dtype=np.int64)
        pop = population.shape[0]
        if self.previous_assignment is None:
            return np.zeros(pop)
        prev = self.previous_assignment
        moved = (population != prev[None, :]) & (prev[None, :] != UNPLACED)
        return moved @ self.request.migration_cost
