"""Aggregation of the three objectives into Z (Eq. 15).

The paper converts all objectives "to an equivalent monetary cost so
they can be aggregated" and assigns them equal weights "without loss of
generality ... that can otherwise be tuned and configured differently
by the stakeholders".  :class:`ObjectiveVector` keeps the vector form
(for Pareto work in NSGA) and :func:`aggregate_scalar` produces the
weighted scalar Z used by single-point searches (tabu, CP branch &
bound, ideal-point selection).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.types import FloatArray, ObjectiveKind

__all__ = ["ObjectiveVector", "aggregate_scalar", "OBJECTIVE_ORDER"]

#: Fixed column order of objective matrices throughout the library.
OBJECTIVE_ORDER: tuple[ObjectiveKind, ...] = (
    ObjectiveKind.USAGE_AND_OPERATING_COST,
    ObjectiveKind.DOWNTIME_COST,
    ObjectiveKind.MIGRATION_COST,
)


@dataclass(frozen=True)
class ObjectiveVector:
    """One solution's objective values in OBJECTIVE_ORDER."""

    usage_and_operating_cost: float
    downtime_cost: float
    migration_cost: float

    def as_array(self) -> FloatArray:
        """The (3,) float vector in canonical column order."""
        return np.array(
            [
                self.usage_and_operating_cost,
                self.downtime_cost,
                self.migration_cost,
            ]
        )

    @classmethod
    def from_array(cls, values: FloatArray) -> "ObjectiveVector":
        """Inverse of :meth:`as_array`."""
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (3,):
            raise ValidationError(
                f"objective vector must have shape (3,), got {values.shape}"
            )
        return cls(*(float(v) for v in values))

    def aggregate(self, weights: FloatArray | None = None) -> float:
        """The scalar Z of Eq. 15 (equal weights by default)."""
        return float(aggregate_scalar(self.as_array(), weights))


def aggregate_scalar(
    objectives: FloatArray, weights: FloatArray | None = None
) -> FloatArray:
    """Weighted sum along the last axis (works on (3,) or (pop, 3)).

    ``weights`` defaults to all-ones (the paper's equal weighting).
    """
    objectives = np.asarray(objectives, dtype=np.float64)
    if objectives.shape[-1] != len(OBJECTIVE_ORDER):
        raise ValidationError(
            f"expected {len(OBJECTIVE_ORDER)} objective columns, "
            f"got {objectives.shape[-1]}"
        )
    if weights is None:
        weights = np.ones(len(OBJECTIVE_ORDER))
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (len(OBJECTIVE_ORDER),):
            raise ValidationError(
                f"weights must have shape ({len(OBJECTIVE_ORDER)},), "
                f"got {weights.shape}"
            )
        if np.any(weights < 0):
            raise ValidationError("weights must be >= 0")
    return objectives @ weights
