"""Objective system: the three monetary objectives of Eq. 15.

* :class:`UsageOperatingCost` — Eq. 22, provider exploitation (E) plus
  consumer usage (U) costs for every hosted resource.
* :class:`DowntimeCost` — Eq. 23, penalties accrued where the QoS model
  (Eq. 24 over the loads of Eq. 25) misses the guarantee C^Q.
* :class:`MigrationCost` — Eq. 26, the reconfiguration-plan estimate:
  migration charges for every resource whose host changed between the
  current allocation X^t and the candidate X^{t+1}.

:class:`ObjectiveVector` aggregates them (equal weights by default, as
in the paper) and :class:`PopulationEvaluator` evaluates whole
populations without Python-level loops.
"""

from repro.objectives.qos import qos_from_load, loads_from_usage
from repro.objectives.usage_cost import UsageOperatingCost
from repro.objectives.downtime import DowntimeCost
from repro.objectives.energy import ENERGY_IDLE_FRACTION, EnergyCost, power_model
from repro.objectives.migration import MigrationCost
from repro.objectives.aggregate import ObjectiveVector, aggregate_scalar
from repro.objectives.evaluator import PopulationEvaluator
from repro.objectives.network import CommunicationCost, uniform_group_traffic

__all__ = [
    "qos_from_load",
    "loads_from_usage",
    "UsageOperatingCost",
    "DowntimeCost",
    "ENERGY_IDLE_FRACTION",
    "EnergyCost",
    "power_model",
    "MigrationCost",
    "ObjectiveVector",
    "aggregate_scalar",
    "PopulationEvaluator",
    "CommunicationCost",
    "uniform_group_traffic",
]
