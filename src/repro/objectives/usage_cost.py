"""Usage and operating cost — the first term of Z (Eq. 22).

Reading Eq. 22 literally, every hosted consumer resource k on server j
contributes the server's exploitation cost E_j plus its usage cost U_j::

    cost(X) = sum_k hosted on j  (E_j + U_j)

An alternative accounting — E_j paid once per *activated* (non-empty)
server, the consolidation view — is offered behind
``per_server_operating=True`` because it is what energy-oriented work
in the related-work section optimizes; the default follows the paper's
equation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DimensionError
from repro.model.infrastructure import Infrastructure
from repro.model.placement import UNPLACED
from repro.types import FloatArray, IntArray

__all__ = ["UsageOperatingCost"]


class UsageOperatingCost:
    """Vectorized Eq. 22 evaluator.

    Parameters
    ----------
    infrastructure:
        Supplies the E and U cost vectors.
    per_server_operating:
        When True, E_j is charged once per non-empty server instead of
        once per hosted resource.
    """

    name = "usage_and_operating_cost"

    def __init__(
        self, infrastructure: Infrastructure, per_server_operating: bool = False
    ) -> None:
        self.infrastructure = infrastructure
        self.per_server_operating = bool(per_server_operating)
        #: E_j + U_j per server — the per-resource charge of Eq. 22.
        self._per_resource_rate: FloatArray = (
            infrastructure.operating_cost + infrastructure.usage_cost
        )

    def value(self, assignment: IntArray) -> float:
        """Cost of one genome."""
        assignment = np.asarray(assignment, dtype=np.int64)
        mask = assignment != UNPLACED
        placed = assignment[mask]
        if self.per_server_operating:
            usage = float(self.infrastructure.usage_cost[placed].sum())
            active = np.unique(placed)
            operating = float(self.infrastructure.operating_cost[active].sum())
            return usage + operating
        return float(self._per_resource_rate[placed].sum())

    def batch(self, population: IntArray) -> FloatArray:
        """Cost per individual for a population matrix (pop, n)."""
        population = np.asarray(population, dtype=np.int64)
        if population.ndim != 2:
            raise DimensionError(
                f"population must be 2-D, got shape {population.shape}"
            )
        m = self.infrastructure.m
        mask = population != UNPLACED
        if not self.per_server_operating:
            rates = np.where(mask, self._per_resource_rate[np.where(mask, population, 0)], 0.0)
            return rates.sum(axis=1)
        usage_rates = np.where(
            mask, self.infrastructure.usage_cost[np.where(mask, population, 0)], 0.0
        )
        usage = usage_rates.sum(axis=1)
        pop = population.shape[0]
        servers = np.where(mask, population, m)
        flat = (np.arange(pop)[:, None] * (m + 1) + servers).ravel()
        counts = np.bincount(flat, minlength=pop * (m + 1)).reshape(pop, m + 1)[:, :m]
        operating = (counts > 0) @ self.infrastructure.operating_cost
        return usage + operating
