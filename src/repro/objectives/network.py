"""Communication cost — a topology-aware extension objective.

The paper grounds its model in the spine-leaf fabric for "redundancy
and bandwidth" but never charges for traffic.  This extension closes
that loop: given a pairwise VM traffic matrix and the fabric's hop
distances, the communication cost of a placement is::

    sum_{i < j} traffic[i, j] * hops(server(i), server(j))

Affinity rules then have a measurable network meaning — SAME_SERVER
collapses a pair's cost to zero, SAME_DATACENTER caps it at
intra-fabric hops, DIFFERENT_DATACENTERS pays the core crossing — and
the ablation in ``examples``/tests can quantify what each rule buys.

This objective is *not* part of the paper's aggregate Z (Eq. 15 has
exactly three terms); it is exposed standalone for extension studies.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DimensionError, ValidationError
from repro.model.placement import UNPLACED
from repro.types import FloatArray, IntArray

__all__ = ["CommunicationCost", "uniform_group_traffic"]


def uniform_group_traffic(
    n: int, groups: list[tuple[int, ...]] | tuple[tuple[int, ...], ...], rate: float = 1.0
) -> FloatArray:
    """Symmetric traffic matrix: ``rate`` between every pair that shares
    a communication group (e.g. the VMs of one consumer request)."""
    if n < 1:
        raise ValidationError(f"n must be >= 1, got {n}")
    if rate < 0:
        raise ValidationError(f"rate must be >= 0, got {rate}")
    traffic = np.zeros((n, n))
    for members in groups:
        idx = np.asarray(members, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= n):
            raise ValidationError(f"group {members} outside [0, {n})")
        for a in idx:
            traffic[a, idx] = rate
    np.fill_diagonal(traffic, 0.0)
    return traffic


class CommunicationCost:
    """Hop-weighted traffic cost of a placement.

    Parameters
    ----------
    traffic:
        (n, n) symmetric nonnegative matrix; ``traffic[i, j]`` is the
        flow between VMs i and j (units x hop = cost).
    hop_matrix:
        (m, m) server-to-server hop distances, e.g. from
        :func:`repro.topology.analysis.hop_matrix`.
    """

    name = "communication_cost"

    def __init__(self, traffic: FloatArray, hop_matrix: FloatArray) -> None:
        traffic = np.ascontiguousarray(traffic, dtype=np.float64)
        hops = np.ascontiguousarray(hop_matrix, dtype=np.float64)
        if traffic.ndim != 2 or traffic.shape[0] != traffic.shape[1]:
            raise DimensionError(f"traffic must be square, got {traffic.shape}")
        if hops.ndim != 2 or hops.shape[0] != hops.shape[1]:
            raise DimensionError(f"hop matrix must be square, got {hops.shape}")
        if not np.allclose(traffic, traffic.T):
            raise ValidationError("traffic matrix must be symmetric")
        if np.any(traffic < 0) or np.any(hops < 0):
            raise ValidationError("traffic and hops must be >= 0")
        self.traffic = traffic
        self.hop_matrix = hops
        # Upper-triangle pair list once; evaluation gathers through it.
        iu, ju = np.triu_indices(traffic.shape[0], k=1)
        weights = traffic[iu, ju]
        keep = weights > 0
        self._pair_i = iu[keep]
        self._pair_j = ju[keep]
        self._pair_w = weights[keep]

    @property
    def n(self) -> int:
        """Number of VMs the traffic matrix covers."""
        return self.traffic.shape[0]

    @property
    def n_flows(self) -> int:
        """Nonzero traffic pairs."""
        return int(self._pair_w.size)

    # ------------------------------------------------------------------
    def value(self, assignment: IntArray) -> float:
        """Communication cost of one genome (unplaced pairs are free)."""
        assignment = np.asarray(assignment, dtype=np.int64)
        if assignment.shape != (self.n,):
            raise DimensionError(
                f"assignment shape {assignment.shape}, expected ({self.n},)"
            )
        if self._pair_w.size == 0:
            return 0.0
        a = assignment[self._pair_i]
        b = assignment[self._pair_j]
        live = (a != UNPLACED) & (b != UNPLACED)
        if not live.any():
            return 0.0
        hops = self.hop_matrix[a[live], b[live]]
        return float((self._pair_w[live] * hops).sum())

    def batch(self, population: IntArray) -> FloatArray:
        """Cost per individual for a population matrix (pop, n)."""
        population = np.asarray(population, dtype=np.int64)
        if population.ndim != 2 or population.shape[1] != self.n:
            raise DimensionError(
                f"population shape {population.shape}, expected (pop, {self.n})"
            )
        if self._pair_w.size == 0:
            return np.zeros(population.shape[0])
        a = population[:, self._pair_i]
        b = population[:, self._pair_j]
        live = (a != UNPLACED) & (b != UNPLACED)
        hops = self.hop_matrix[np.where(live, a, 0), np.where(live, b, 0)]
        hops = np.where(live, hops, 0.0)
        return hops @ self._pair_w
