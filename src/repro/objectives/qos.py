"""The load → quality-of-service model of Eq. 24 and Eq. 25.

Empirical studies cited by the paper ([23], [24]) observe that hosted
QoS "decreases exponentially with increasing workload"; Eq. 24 models
that as a piecewise function with a knee at the maximum safe load::

    Q_jl = QM_jl                              if L_jl <= LM_jl
    Q_jl = QM_jl * exp((LM_jl - L_jl) / (1 - LM_jl))   otherwise

Both functions here are pure ufunc-style transformations usable on any
shape: a single server row, the full (m, h) matrix, or a population
tensor (pop, m, h).
"""

from __future__ import annotations

import numpy as np

from repro.types import FloatArray

__all__ = ["qos_from_load", "loads_from_usage"]


def qos_from_load(
    load: FloatArray, max_load: FloatArray, max_qos: FloatArray
) -> FloatArray:
    """Apply Eq. 24 element-wise.

    Parameters broadcast against each other, so a (pop, m, h) load
    tensor works against (m, h) knee/ceiling matrices.
    """
    load = np.asarray(load, dtype=np.float64)
    max_load = np.asarray(max_load, dtype=np.float64)
    max_qos = np.asarray(max_qos, dtype=np.float64)
    if np.any(max_load >= 1) or np.any(max_load < 0):
        raise ValueError("max_load must lie in [0, 1)")
    overload = load > max_load
    # exp argument is <= 0 in the overload branch, so decay only.
    decay = np.exp(
        np.minimum(0.0, (max_load - load) / (1.0 - max_load))
    )
    return np.where(overload, max_qos * decay, max_qos)


def loads_from_usage(usage: FloatArray, capacity: FloatArray) -> FloatArray:
    """Eq. 25: load = placed demand / capacity, element-wise.

    Zero-capacity attributes report load 0 when unused and ``inf`` when
    anything is placed on them (so the QoS branch collapses to ~0 and
    the downtime objective punishes the placement).
    """
    usage = np.asarray(usage, dtype=np.float64)
    capacity = np.asarray(capacity, dtype=np.float64)
    safe = np.where(capacity > 0, capacity, 1.0)
    load = usage / safe
    return np.where((capacity <= 0) & (usage > 0), np.inf, load)
