"""Labeled metrics: counters, gauges and histograms with snapshot/merge.

The paper's whole evaluation (Figures 7-11) is built on observing
solver behaviour — execution time, rejection rate, violations, cost.
:class:`MetricsRegistry` is the substrate those observations flow
through at runtime: instrumented code records into the *default*
registry (:func:`get_registry`), experiments swap in a scoped registry
(:func:`use_registry`), and process-parallel sweeps snapshot each
worker's registry and fold the :class:`MetricsSnapshot` back into the
parent (snapshots are plain picklable dataclasses; merging is
associative and commutative, so the merged parent registry equals the
sum of its per-worker snapshots).

Metric semantics follow the usual conventions:

* **counter** — monotonically accumulated float (merge: sum);
* **gauge** — last observed value (merge: the later snapshot wins);
* **histogram** — count/total/min/max summary of observations
  (merge: component-wise combination).

Series are keyed by ``name{label=value,...}`` with labels sorted, so
the same logical series always lands in the same slot regardless of
keyword order at the call site.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = [
    "HistogramSummary",
    "MetricsSnapshot",
    "MetricsRegistry",
    "series_key",
    "get_registry",
    "set_registry",
    "use_registry",
]


def series_key(name: str, labels: dict | None = None) -> str:
    """Canonical series key: ``name`` or ``name{a=1,b=x}`` (sorted)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


@dataclass(frozen=True)
class HistogramSummary:
    """Mergeable summary of a stream of observations."""

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    @property
    def mean(self) -> float:
        """Average observation (0.0 for an empty summary)."""
        return self.total / self.count if self.count else 0.0

    def observe(self, value: float) -> "HistogramSummary":
        """Return a new summary including ``value``."""
        return HistogramSummary(
            count=self.count + 1,
            total=self.total + value,
            minimum=min(self.minimum, value),
            maximum=max(self.maximum, value),
        )

    def combine(self, other: "HistogramSummary") -> "HistogramSummary":
        """Merge two summaries (order-independent)."""
        return HistogramSummary(
            count=self.count + other.count,
            total=self.total + other.total,
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
        )


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable, picklable view of a registry at one instant."""

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, HistogramSummary] = field(default_factory=dict)

    @staticmethod
    def merge_all(snapshots: Iterable["MetricsSnapshot"]) -> "MetricsSnapshot":
        """Fold any number of snapshots into one (sum semantics)."""
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, HistogramSummary] = {}
        for snapshot in snapshots:
            for key, value in snapshot.counters.items():
                counters[key] = counters.get(key, 0.0) + value
            gauges.update(snapshot.gauges)
            for key, summary in snapshot.histograms.items():
                existing = histograms.get(key)
                histograms[key] = (
                    summary if existing is None else existing.combine(summary)
                )
        return MetricsSnapshot(
            counters=counters, gauges=gauges, histograms=histograms
        )

    def __add__(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        return MetricsSnapshot.merge_all((self, other))

    def counter_total(self, name: str) -> float:
        """Sum of one counter across all of its label series."""
        prefix = f"{name}{{"
        return sum(
            value
            for key, value in self.counters.items()
            if key == name or key.startswith(prefix)
        )

    @property
    def empty(self) -> bool:
        """Whether nothing was recorded."""
        return not (self.counters or self.gauges or self.histograms)


class MetricsRegistry:
    """Mutable metric store; see the module docstring for semantics.

    All mutators are guarded by one lock so concurrent recording from
    threads (e.g. a thread-pool variant of the experiment runner) stays
    consistent; the per-call cost is a dict update, negligible next to
    the population evaluations it sits beside.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, HistogramSummary] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def count(self, name: str, value: float = 1.0, **labels) -> None:
        """Increment a counter series by ``value``."""
        key = series_key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + float(value)

    def gauge(self, name: str, value: float, **labels) -> None:
        """Set a gauge series to ``value``."""
        with self._lock:
            self._gauges[series_key(name, labels)] = float(value)

    def observe(self, name: str, value: float, **labels) -> None:
        """Record one observation into a histogram series."""
        key = series_key(name, labels)
        with self._lock:
            summary = self._histograms.get(key, HistogramSummary())
            self._histograms[key] = summary.observe(float(value))

    # ------------------------------------------------------------------
    # Snapshot / merge
    # ------------------------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        """Immutable copy of the current state."""
        with self._lock:
            return MetricsSnapshot(
                counters=dict(self._counters),
                gauges=dict(self._gauges),
                histograms=dict(self._histograms),
            )

    def merge(self, snapshot: MetricsSnapshot) -> None:
        """Fold a snapshot (e.g. from a worker process) into this registry."""
        with self._lock:
            for key, value in snapshot.counters.items():
                self._counters[key] = self._counters.get(key, 0.0) + value
            self._gauges.update(snapshot.gauges)
            for key, summary in snapshot.histograms.items():
                existing = self._histograms.get(key)
                self._histograms[key] = (
                    summary if existing is None else existing.combine(summary)
                )

    def reset(self) -> None:
        """Drop every recorded series."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # ------------------------------------------------------------------
    def format_summary(self) -> str:
        """Human-readable dump, one series per line (sorted)."""
        snapshot = self.snapshot()
        lines: list[str] = []
        for key in sorted(snapshot.counters):
            lines.append(f"counter   {key} = {snapshot.counters[key]:g}")
        for key in sorted(snapshot.gauges):
            lines.append(f"gauge     {key} = {snapshot.gauges[key]:g}")
        for key in sorted(snapshot.histograms):
            h = snapshot.histograms[key]
            lines.append(
                f"histogram {key} count={h.count} mean={h.mean:.6g} "
                f"min={h.minimum:.6g} max={h.maximum:.6g}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Process-default registry
# ----------------------------------------------------------------------
_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-default registry instrumented code records into."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the default registry; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scope ``registry`` as the default for the ``with`` block.

    The experiment runners use this so one sweep's metrics are isolated
    from everything else recorded in the process.
    """
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
