"""repro.telemetry — metrics, tracing and event instrumentation.

The measurement substrate under the allocation stack, in three parts
(each zero-cost when unconfigured):

* :mod:`~repro.telemetry.registry` — labeled counters / gauges /
  histograms with picklable snapshots that merge across worker
  processes (:class:`MetricsRegistry`, :func:`get_registry`,
  :func:`use_registry`);
* :mod:`~repro.telemetry.tracer` — span-based hierarchical timing
  built on :class:`~repro.utils.timers.Stopwatch` (:func:`span`,
  :class:`Tracer`);
* :mod:`~repro.telemetry.events` / :mod:`~repro.telemetry.sinks` —
  typed events (GenerationCompleted, RepairInvoked, TabuIteration,
  WindowClosed, RequestRejected, MigrationPlanned) fanned out to
  pluggable sinks (in-memory, JSONL file, console).

Operator entry point: :func:`configure` ("console", "jsonl:PATH"),
wired to the CLI's ``--telemetry`` flag.  The event catalog and usage
guide live in ``docs/OBSERVABILITY.md``.
"""

from repro.telemetry.config import configure, shutdown
from repro.telemetry.events import (
    EventBus,
    GenerationCompleted,
    MigrationPlanned,
    RepairInvoked,
    RequestRejected,
    TabuIteration,
    TelemetryEvent,
    WindowClosed,
    capture_events,
    get_bus,
    set_bus,
    use_bus,
)
from repro.telemetry.registry import (
    HistogramSummary,
    MetricsRegistry,
    MetricsSnapshot,
    get_registry,
    series_key,
    set_registry,
    use_registry,
)
from repro.telemetry.sinks import (
    ConsoleSink,
    InMemorySink,
    JsonlSink,
    NullSink,
    Sink,
)
from repro.telemetry.tracer import (
    SpanRecord,
    Tracer,
    get_tracer,
    set_tracer,
    span,
    use_tracer,
)

__all__ = [
    # registry
    "MetricsRegistry",
    "MetricsSnapshot",
    "HistogramSummary",
    "series_key",
    "get_registry",
    "set_registry",
    "use_registry",
    # tracer
    "Tracer",
    "SpanRecord",
    "span",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    # events
    "TelemetryEvent",
    "GenerationCompleted",
    "RepairInvoked",
    "TabuIteration",
    "WindowClosed",
    "RequestRejected",
    "MigrationPlanned",
    "EventBus",
    "get_bus",
    "set_bus",
    "use_bus",
    "capture_events",
    # sinks
    "Sink",
    "NullSink",
    "InMemorySink",
    "JsonlSink",
    "ConsoleSink",
    # config
    "configure",
    "shutdown",
]
