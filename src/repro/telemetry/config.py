"""Telemetry sink configuration from a spec string.

The CLI (and anything else taking operator input) describes its
telemetry target as a compact spec::

    off            no sink (the default no-op bus)
    console        human-readable lines on stderr
    jsonl:PATH     one JSON object per event appended to PATH
    memory         an in-memory sink (mostly for tests/notebooks)

:func:`configure` parses the spec, builds the sink, subscribes it to
the default bus and returns it; :func:`shutdown` unsubscribes and
closes it.  Unknown specs raise
:class:`~repro.errors.ValidationError`.
"""

from __future__ import annotations

from repro.errors import ValidationError
from repro.telemetry.events import get_bus
from repro.telemetry.sinks import ConsoleSink, InMemorySink, JsonlSink, Sink

__all__ = ["configure", "shutdown"]


def configure(spec: str | None) -> Sink | None:
    """Build the sink described by ``spec`` and attach it to the bus.

    Returns the subscribed sink, or None for ``None``/``"off"`` (the
    default no-op configuration).
    """
    if spec is None or spec == "off":
        return None
    if spec == "console":
        sink: Sink = ConsoleSink()
    elif spec == "memory":
        sink = InMemorySink()
    elif spec.startswith("jsonl:"):
        path = spec[len("jsonl:"):]
        if not path:
            raise ValidationError("jsonl telemetry spec needs a path: jsonl:PATH")
        sink = JsonlSink(path)
    else:
        raise ValidationError(
            f"unknown telemetry spec {spec!r} "
            "(expected off, console, memory, or jsonl:PATH)"
        )
    get_bus().subscribe(sink)
    return sink


def shutdown(sink: Sink | None) -> None:
    """Detach and close a sink returned by :func:`configure`."""
    if sink is None:
        return
    get_bus().unsubscribe(sink)
    sink.close()
