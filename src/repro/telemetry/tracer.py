"""Span-based tracing: hierarchical wall-clock timing trees.

A *span* is one named, timed region of execution, possibly with
children::

    with span("nsga3.generation", gen=i):
        ...

Spans are built on :class:`~repro.utils.timers.Stopwatch` — each span
carries its own stopwatch, and a child's ``start_offset`` is the
parent stopwatch's in-flight lap (:meth:`Stopwatch.split`) at entry,
so a rendered trace shows *when* within its parent each child began.

The default tracer is **disabled**: :func:`span` then returns a shared
no-op context manager, so instrumentation in hot loops costs one
attribute check per call.  Enable tracing by installing an enabled
:class:`Tracer` (``set_tracer(Tracer(enabled=True))`` or the
:func:`use_tracer` scope) and read the result with
:meth:`Tracer.format_tree`.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.utils.timers import Stopwatch, format_duration

__all__ = [
    "SpanRecord",
    "Tracer",
    "span",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]


@dataclass
class SpanRecord:
    """One completed (or in-flight) span of the timing tree."""

    name: str
    attributes: dict = field(default_factory=dict)
    start_offset: float = 0.0  # seconds into the parent span (or trace)
    elapsed: float = 0.0
    children: list["SpanRecord"] = field(default_factory=list)

    @property
    def self_time(self) -> float:
        """Time spent in this span outside any child span."""
        return self.elapsed - sum(child.elapsed for child in self.children)

    def walk(self) -> Iterator["SpanRecord"]:
        """Depth-first iteration over this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()


class Tracer:
    """Collects spans into a forest of :class:`SpanRecord` trees.

    Single-threaded by design (one tracer per worker/process): the
    span stack is plain instance state.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = bool(enabled)
        self.roots: list[SpanRecord] = []
        self._stack: list[tuple[SpanRecord, Stopwatch]] = []

    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, **attributes) -> Iterator[SpanRecord | None]:
        """Open a span as the child of the innermost active span."""
        if not self.enabled:
            yield None
            return
        offset = self._stack[-1][1].split() if self._stack else 0.0
        record = SpanRecord(
            name=name, attributes=dict(attributes), start_offset=offset
        )
        if self._stack:
            self._stack[-1][0].children.append(record)
        else:
            self.roots.append(record)
        stopwatch = Stopwatch().start()
        self._stack.append((record, stopwatch))
        try:
            yield record
        finally:
            record.elapsed = stopwatch.stop()
            self._stack.pop()

    def reset(self) -> None:
        """Drop every recorded span (open spans stay on the stack)."""
        self.roots = []

    # ------------------------------------------------------------------
    def format_tree(self) -> str:
        """Render the recorded forest, one span per line::

            nsga3.run                          1.21 s
              nsga3.generation gen=1  +12 ms   58 ms  (self 41 ms)
        """
        lines: list[str] = []

        def render(record: SpanRecord, depth: int) -> None:
            attrs = " ".join(
                f"{k}={v}" for k, v in sorted(record.attributes.items())
            )
            head = f"{'  ' * depth}{record.name}"
            if attrs:
                head += f" {attrs}"
            if depth:
                head += f"  +{format_duration(record.start_offset)}"
            line = f"{head}  {format_duration(record.elapsed)}"
            if record.children:
                line += f"  (self {format_duration(record.self_time)})"
            lines.append(line)
            for child in record.children:
                render(child, depth + 1)

        for root in self.roots:
            render(root, 0)
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Process-default tracer (disabled: spans are no-ops)
# ----------------------------------------------------------------------
_default_tracer = Tracer(enabled=False)


@contextmanager
def _null_span() -> Iterator[None]:
    yield None


def get_tracer() -> Tracer:
    """The process-default tracer."""
    return _default_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Replace the default tracer; returns the previous one."""
    global _default_tracer
    previous = _default_tracer
    _default_tracer = tracer
    return previous


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Scope ``tracer`` as the default for the ``with`` block."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def span(name: str, **attributes):
    """Open a span on the default tracer (no-op when disabled)."""
    tracer = _default_tracer
    if not tracer.enabled:
        return _null_span()
    return tracer.span(name, **attributes)
