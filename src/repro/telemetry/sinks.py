"""Event sinks: where emitted telemetry events end up.

Three concrete sinks cover the common needs:

* :class:`InMemorySink` — a list, for tests and programmatic analysis;
* :class:`JsonlSink` — one JSON object per line, for offline tooling;
* :class:`ConsoleSink` — human-readable lines on a stream.

:class:`NullSink` exists for completeness (an explicit "discard"
target); the usual zero-cost path is simply an empty bus, which the
instrumented code skips entirely.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.telemetry.events import TelemetryEvent

__all__ = ["Sink", "NullSink", "InMemorySink", "JsonlSink", "ConsoleSink"]


class Sink:
    """Base sink: subclasses override :meth:`handle`."""

    def handle(self, event: TelemetryEvent) -> None:
        """Receive one event (synchronously, in emission order)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources (files, streams); idempotent."""


class NullSink(Sink):
    """Discards everything."""

    def handle(self, event: TelemetryEvent) -> None:
        """Drop the event."""
        pass


class InMemorySink(Sink):
    """Accumulates events in a list (``.events``)."""

    def __init__(self) -> None:
        self.events: list[TelemetryEvent] = []

    def handle(self, event: TelemetryEvent) -> None:
        """Append the event to the in-memory list."""
        self.events.append(event)

    def of(self, event_type: type) -> list[TelemetryEvent]:
        """The captured events of one type, in emission order."""
        return [e for e in self.events if isinstance(e, event_type)]

    def clear(self) -> None:
        """Forget everything captured so far."""
        self.events.clear()


class JsonlSink(Sink):
    """Appends one JSON object per event to a file.

    Each line is the event's :meth:`~TelemetryEvent.to_dict` payload
    plus a ``ts`` wall-clock field.  Lines are flushed per event so a
    crashed or killed run still leaves a readable log.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._handle = self.path.open("a", encoding="utf-8")

    def handle(self, event: TelemetryEvent) -> None:
        """Write the event as one JSON line."""
        payload = event.to_dict()
        payload["ts"] = time.time()
        self._handle.write(json.dumps(payload) + "\n")
        self._handle.flush()

    def close(self) -> None:
        """Flush and close the underlying file."""
        if not self._handle.closed:
            self._handle.close()


class ConsoleSink(Sink):
    """Writes ``[telemetry] event_name key=value ...`` lines."""

    def __init__(self, stream=None) -> None:
        self._stream = stream if stream is not None else sys.stderr

    def handle(self, event: TelemetryEvent) -> None:
        """Print the event to the configured stream."""
        payload = event.to_dict()
        name = payload.pop("event")
        fields = " ".join(
            f"{key}={value:.6g}" if isinstance(value, float) else f"{key}={value}"
            for key, value in payload.items()
        )
        print(f"[telemetry] {name} {fields}", file=self._stream)
