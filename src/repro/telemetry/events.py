"""Typed telemetry events and the bus that fans them out to sinks.

Every interesting decision point of the allocation stack emits one of
a small catalog of frozen dataclass events (the catalog is documented
for humans in ``docs/OBSERVABILITY.md``):

* :class:`GenerationCompleted` — one NSGA generation finished
  (``ea/nsga_base.py``; generation 0 is the evaluated initial
  population);
* :class:`RepairInvoked` — a repair engine treated one infeasible
  genome (tabu or CP repair);
* :class:`TabuIteration` — one iteration of the standalone tabu
  search accepted (or failed to find) a move;
* :class:`WindowClosed` — the time-window scheduler finished a window;
* :class:`RequestRejected` — a consumer request could not be placed in
  its window;
* :class:`MigrationPlanned` — a reconfiguration cycle produced an
  X^t -> X^{t+1} plan.

The default :class:`EventBus` has **no sinks**, and every emit site is
guarded by ``bus.enabled`` — with telemetry off the hot paths pay one
attribute check, nothing more.  Sinks (see :mod:`repro.telemetry.sinks`)
subscribe to the default bus via :func:`get_bus` or the CLI's
``--telemetry`` flag.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import asdict, dataclass
from typing import ClassVar, Iterator

__all__ = [
    "TelemetryEvent",
    "GenerationCompleted",
    "RepairInvoked",
    "TabuIteration",
    "WindowClosed",
    "RequestRejected",
    "MigrationPlanned",
    "EventBus",
    "get_bus",
    "set_bus",
    "use_bus",
    "capture_events",
]


@dataclass(frozen=True)
class TelemetryEvent:
    """Base class; ``name`` is the stable wire identifier of the type."""

    name: ClassVar[str] = "event"

    def to_dict(self) -> dict:
        """Flat JSON-ready payload: ``{"event": name, **fields}``."""
        return {"event": self.name, **asdict(self)}


@dataclass(frozen=True)
class GenerationCompleted(TelemetryEvent):
    """One NSGA generation evaluated and selected."""

    name: ClassVar[str] = "generation_completed"

    algorithm: str
    generation: int
    evaluations: int
    best_aggregate: float
    mean_aggregate: float
    feasible_fraction: float
    min_violations: int


@dataclass(frozen=True)
class RepairInvoked(TelemetryEvent):
    """A repair engine processed one infeasible genome."""

    name: ClassVar[str] = "repair_invoked"

    repairer: str  # "tabu" or "cp"
    moves: int  # relocations performed (0 for a failed CP repair)
    repaired: bool  # whether the genome came back feasible


@dataclass(frozen=True)
class TabuIteration(TelemetryEvent):
    """One iteration of the standalone tabu search."""

    name: ClassVar[str] = "tabu_iteration"

    iteration: int
    moves_evaluated: int
    accepted: bool
    best_violations: int
    best_aggregate: float


@dataclass(frozen=True)
class WindowClosed(TelemetryEvent):
    """The scheduler closed one cyclic time window."""

    name: ClassVar[str] = "window_closed"

    window_index: int
    start_time: float
    end_time: float
    arrivals: int
    departures: int
    accepted: int
    rejected: int
    displaced: int
    failures: int
    recoveries: int
    drains: int = 0


@dataclass(frozen=True)
class RequestRejected(TelemetryEvent):
    """A consumer request could not be hosted in its window."""

    name: ClassVar[str] = "request_rejected"

    key: str
    window_index: int
    reason: str  # "capacity" (fresh arrival) or "displaced" (failure victim)


@dataclass(frozen=True)
class MigrationPlanned(TelemetryEvent):
    """A reconfiguration cycle produced a migration plan."""

    name: ClassVar[str] = "migration_planned"

    tenants: int
    moves: int
    boots: int
    shutdowns: int
    cost: float
    applied: bool


class EventBus:
    """Fans emitted events out to subscribed sinks, synchronously.

    A sink is any object with ``handle(event)``; see
    :mod:`repro.telemetry.sinks`.  Emission order is program order —
    sinks observe events exactly as the instrumented code produced
    them, which the scheduler tests rely on.
    """

    def __init__(self, sinks=()) -> None:
        self._sinks = list(sinks)

    @property
    def enabled(self) -> bool:
        """True when at least one sink is subscribed."""
        return bool(self._sinks)

    def subscribe(self, sink) -> None:
        """Attach a sink (idempotent)."""
        if sink not in self._sinks:
            self._sinks.append(sink)

    def unsubscribe(self, sink) -> None:
        """Detach a sink; missing sinks are ignored."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass

    def emit(self, event: TelemetryEvent) -> None:
        """Deliver one event to every sink, in subscription order."""
        for sink in self._sinks:
            sink.handle(event)


# ----------------------------------------------------------------------
# Process-default bus (no sinks: emits are skipped at the call sites)
# ----------------------------------------------------------------------
_default_bus = EventBus()


def get_bus() -> EventBus:
    """The process-default event bus."""
    return _default_bus


def set_bus(bus: EventBus) -> EventBus:
    """Replace the default bus; returns the previous one."""
    global _default_bus
    previous = _default_bus
    _default_bus = bus
    return previous


@contextmanager
def use_bus(bus: EventBus) -> Iterator[EventBus]:
    """Scope ``bus`` as the default for the ``with`` block."""
    previous = set_bus(bus)
    try:
        yield bus
    finally:
        set_bus(previous)


@contextmanager
def capture_events():
    """Subscribe an in-memory sink to the default bus for the block.

    Test helper::

        with capture_events() as sink:
            scheduler.run_window()
        assert sink.of(WindowClosed)
    """
    from repro.telemetry.sinks import InMemorySink

    sink = InMemorySink()
    bus = get_bus()
    bus.subscribe(sink)
    try:
        yield sink
    finally:
        bus.unsubscribe(sink)
