"""Command-line interface: regenerate any paper artifact from a shell.

Usage (after ``pip install -e .``)::

    python -m repro compare  --servers 32 --vms 64 --seed 7
    python -m repro fig7     --runs 2
    python -m repro fig9     --runs 2 --tightness 0.7
    python -m repro fig10
    python -m repro fig11
    python -m repro table2
    python -m repro table3
    python -m repro generate --servers 40 --vms 80 --out scenario.json
    python -m repro scenario list
    python -m repro scenario run steady_churn --seed 7
    python -m repro compare  --providers 3 --prefer 'provider_cost>qos'
    python -m repro scenario run steady_churn --providers 3
    python -m repro verify   --check-market
    python -m repro verify   --fuzz 20 --seed 7
    python -m repro verify   --fuzz 10 --scenario maintenance_drain
    python -m repro serve    --port 8080 --checkpoint-dir state/
    python -m repro serve    --scenario failure_storm --port 0
    python -m repro compare  --telemetry console       # live event stream
    python -m repro fig9     --telemetry jsonl:events.jsonl

Every figure command prints the corresponding series as a text table
(sizes down the rows, algorithms across the columns).  Budgets are the
bench defaults — reduced from the paper's Table III so a figure
regenerates in seconds-to-minutes; pass ``--population/--evaluations``
to raise them.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro import telemetry
from repro import (
    CPAllocator,
    NSGA2Allocator,
    NSGA3Allocator,
    NSGA3CPAllocator,
    NSGA3TabuAllocator,
    NSGAConfig,
    RoundRobinAllocator,
    ScenarioGenerator,
    ScenarioSpec,
    SearchLimits,
)
from repro.evaluation import (
    ExperimentRunner,
    TABLE2_CRITERIA,
    capability_matrix,
    format_series_table,
    format_table,
)

__all__ = ["main", "build_parser"]

_INTERRUPTED_MSG = (
    "sweep interrupted — completed cells are journaled; rerun the same "
    "command (or `python -m repro resume DIR`) to continue"
)


def _factories(
    args,
    include_cp_hybrid: bool = False,
    include_portfolio: bool = False,
) -> dict[str, Callable]:
    config = NSGAConfig(
        population_size=args.population,
        max_evaluations=args.evaluations,
        seed=args.seed,
        n_workers=getattr(args, "workers", 0),
        checkpoint_dir=getattr(args, "checkpoint_dir", None),
        checkpoint_every=getattr(args, "checkpoint_every", None),
        energy_weight=getattr(args, "energy_weight", 0.0),
    )
    factories: dict[str, Callable] = {
        "round_robin": lambda: RoundRobinAllocator(),
        "constraint_programming": lambda: CPAllocator(
            optimize=False, limits=SearchLimits(max_nodes=50_000, time_limit=5.0)
        ),
        "nsga2": lambda: NSGA2Allocator(config),
        "nsga3": lambda: NSGA3Allocator(config),
        "nsga3_tabu": lambda: NSGA3TabuAllocator(config),
    }
    if include_cp_hybrid:
        factories["nsga3_cp"] = lambda: NSGA3CPAllocator(
            config, repair_limits=SearchLimits(max_nodes=500, time_limit=0.1)
        )
    if include_portfolio:
        from repro.portfolio import PortfolioAllocator

        factories["portfolio"] = lambda: PortfolioAllocator(
            config=config,
            members=getattr(args, "members", None) or "nsga3_tabu+cp+tabu",
            deadline_ms=getattr(args, "deadline_ms", None),
        )
    return factories


def _sweep_specs(sizes: list[tuple[int, int]], tightness: float) -> list[ScenarioSpec]:
    return [
        ScenarioSpec(
            servers=servers,
            datacenters=2 if servers < 100 else 4,
            vms=vms,
            tightness=tightness,
        )
        for servers, vms in sizes
    ]


def _run_figure(args, sizes, metric: str, title: str) -> int:
    runner = ExperimentRunner(
        _factories(args, include_cp_hybrid=args.include_cp_hybrid),
        runs=args.runs,
        seed=args.seed,
    )
    result = runner.run_sweep(
        _sweep_specs(sizes, args.tightness),
        checkpoint_dir=getattr(args, "checkpoint_dir", None),
    )
    if result.interrupted:
        print(_INTERRUPTED_MSG)
        return 130
    print(format_series_table(result, metric, title=title))
    return 0


def cmd_fig7(args) -> int:
    """Run ``python -m repro fig7``."""
    return _run_figure(
        args,
        [(10, 20), (20, 40), (40, 80)],
        "execution_time",
        "Figure 7: mean execution time (s), few resources",
    )


def cmd_fig8(args) -> int:
    """Run ``python -m repro fig8``."""
    sizes = [(100, 200), (200, 400)]
    if args.full:
        sizes += [(400, 800), (800, 1600)]
    return _run_figure(
        args,
        sizes,
        "execution_time",
        "Figure 8: mean execution time (s), many resources",
    )


def cmd_fig9(args) -> int:
    """Run ``python -m repro fig9``."""
    return _run_figure(
        args,
        [(16, 32), (32, 64), (64, 128)],
        "rejection_rate",
        "Figure 9: mean rejection rate vs size",
    )


def cmd_fig10(args) -> int:
    """Run ``python -m repro fig10``."""
    return _run_figure(
        args,
        [(16, 32), (32, 64), (64, 128)],
        "violations",
        "Figure 10: mean violated constraints vs size",
    )


def cmd_fig11(args) -> int:
    """Run ``python -m repro fig11``."""
    runner = ExperimentRunner(
        _factories(args, include_cp_hybrid=args.include_cp_hybrid),
        runs=args.runs,
        seed=args.seed,
    )
    result = runner.run_sweep(
        _sweep_specs([(16, 32), (32, 64)], args.tightness),
        checkpoint_dir=getattr(args, "checkpoint_dir", None),
    )
    if result.interrupted:
        print(_INTERRUPTED_MSG)
        return 130
    print(
        format_series_table(
            result, "provider_cost", title="Figure 11: mean provider cost"
        )
    )
    print()
    print(
        format_series_table(
            result,
            "cost_per_request",
            title="Figure 11 (future-work metric): cost per accepted request",
        )
    )
    return 0


def cmd_table2(args) -> int:
    """Run ``python -m repro table2``."""
    rows = capability_matrix(
        _factories(args, include_cp_hybrid=True), seed=args.seed, runs=args.runs
    )
    headers = ["criterion", *(r.algorithm for r in rows)]
    body = [
        [criterion, *(getattr(r, criterion) for r in rows)]
        for criterion in TABLE2_CRITERIA
    ]
    print(format_table(headers, body, title="Table II (measured)"))
    return 0


def cmd_table3(args) -> int:
    """Run ``python -m repro table3``."""
    config = NSGAConfig()
    rows = [
        ["populationSize", config.population_size],
        ["Number of evaluations", config.max_evaluations],
        ["sbx.rate", config.sbx_rate],
        ["sbx.distributionIndex", config.sbx_distribution_index],
        ["pm.rate", config.pm_rate],
        ["pm.distributionIndex", config.pm_distribution_index],
    ]
    print(format_table(["parameter", "value"], rows, title="Table III (defaults)"))
    return 0


def cmd_compare(args) -> int:
    """Run ``python -m repro compare``."""
    spec = ScenarioSpec(
        servers=args.servers,
        datacenters=2 if args.servers < 100 else 4,
        vms=args.vms,
        tightness=args.tightness,
    )
    scenario = ScenarioGenerator(spec, seed=args.seed).generate()
    factories = _factories(args, include_cp_hybrid=True, include_portfolio=True)
    if args.allocator is not None:
        if args.allocator not in factories:
            print(
                f"error: unknown allocator {args.allocator!r}; "
                f"pick from {', '.join(sorted(factories))}",
                file=sys.stderr,
            )
            return 2
        factories = {args.allocator: factories[args.allocator]}
    providers = getattr(args, "providers", 1)
    market = None
    if providers > 1:
        from repro.market import BrokeredAllocator, ProviderMarket

        market = ProviderMarket.from_infrastructure(
            scenario.infrastructure, providers
        )
    rows = []
    for label, factory in factories.items():
        if market is not None:
            brokered = BrokeredAllocator(market, factory).allocate(
                scenario.requests
            )
            outcome, route = brokered.deployed.outcome, brokered.deployed.route
        else:
            allocator = factory()
            try:
                outcome = allocator.allocate(
                    scenario.infrastructure, scenario.requests
                )
            finally:
                allocator.close()
            route = None
        row = [
            label,
            f"{outcome.elapsed:.3f}",
            f"{outcome.rejection_rate:.2f}",
            outcome.violations,
            f"{outcome.provider_cost:.1f}",
        ]
        if market is not None:
            row.append(route)
        rows.append(row)
    headers = ["algorithm", "time (s)", "rejection", "violations", "provider cost"]
    title = (
        f"Comparison on {spec.servers} servers / {spec.vms} VMs "
        f"(seed {args.seed})"
    )
    if market is not None:
        headers.append("brokered route")
        title += f", brokered across {providers} providers"
    print(format_table(headers, rows, title=title))
    return 0


def cmd_diagnose(args) -> int:
    """Run ``python -m repro diagnose``."""
    from repro.model import Request, diagnose_instance
    from repro.serialization import load_json, scenario_from_dict

    scenario = scenario_from_dict(load_json(args.scenario))
    merged, _owner = Request.concatenate(scenario.requests)
    findings = diagnose_instance(scenario.infrastructure, merged)
    print(
        f"{scenario.infrastructure.m} servers / {scenario.n_vms} VMs / "
        f"{scenario.n_requests} requests"
    )
    if not findings:
        print("no provable infeasibility found (solvers may still reject)")
        return 0
    for finding in findings:
        print(f"  [{finding.code}] {finding.message}")
    return 1


def _parse_sizes(text: str) -> tuple[tuple[int, int], ...]:
    """``"4x8,16x32"`` → ``((4, 8), (16, 32))``."""
    sizes = []
    for chunk in text.split(","):
        servers, _, vms = chunk.strip().partition("x")
        if not vms:
            raise argparse.ArgumentTypeError(
                f"size {chunk!r} must look like SERVERSxVMS, e.g. 16x32"
            )
        sizes.append((int(servers), int(vms)))
    return tuple(sizes)


def _parse_perturb(text: str) -> tuple[str, float]:
    """``"usage_cost:0.5"`` → ``("usage_cost", 0.5)`` (delta defaults 1)."""
    term, _, delta = text.partition(":")
    return term, float(delta) if delta else 1.0


def _parse_workers(text: str) -> tuple[int, ...]:
    """``"1,2,4"`` → ``(1, 2, 4)``."""
    try:
        counts = tuple(int(chunk) for chunk in text.split(",") if chunk.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"worker list {text!r} must be comma-separated integers"
        ) from None
    if not counts or any(count < 1 for count in counts):
        raise argparse.ArgumentTypeError(
            f"worker counts must be >= 1, got {text!r}"
        )
    return counts


def _parse_prefer(text: str):
    """Validate a ``crit>crit>...`` preference spec at parse time."""
    from repro.errors import ValidationError
    from repro.market.preferences import parse_preference

    try:
        return parse_preference(text)
    except ValidationError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _providers_count(text: str) -> int:
    count = int(text)
    if count < 1:
        raise argparse.ArgumentTypeError(
            f"--providers must be >= 1, got {text!r}"
        )
    return count


def cmd_scenario(args) -> int:
    """Run ``python -m repro scenario list|run``."""
    from repro.workloads.scenarios import (
        compile_scenario,
        get_scenario,
        scenario_names,
    )

    if args.action == "list":
        rows = [
            [
                name,
                get_scenario(name).servers,
                get_scenario(name).traffic,
                f"{get_scenario(name).horizon:g}",
                get_scenario(name).description,
            ]
            for name in scenario_names()
        ]
        print(
            format_table(
                ["name", "servers", "traffic", "horizon", "description"],
                rows,
                title="Registered dynamic scenarios (docs/SCENARIOS.md)",
            )
        )
        return 0
    if not args.name:
        print(
            "error: `scenario run` needs a scenario name; "
            f"pick from {', '.join(scenario_names())}",
            file=sys.stderr,
        )
        return 2
    if args.name not in scenario_names():
        print(
            f"error: unknown scenario {args.name!r}; "
            f"pick from {', '.join(scenario_names())}",
            file=sys.stderr,
        )
        return 2
    factories = _factories(args, include_cp_hybrid=True, include_portfolio=True)
    if args.allocator not in factories:
        print(
            f"error: unknown allocator {args.allocator!r}; "
            f"pick from {', '.join(sorted(factories))}",
            file=sys.stderr,
        )
        return 2
    compiled = compile_scenario(args.name, seed=args.seed)
    providers = getattr(args, "providers", 1)
    if providers > 1:
        # Tag + price the estate across N providers; the merged
        # infrastructure drives every window (p == 1 is byte-identical
        # and skipped so default runs keep their ledger fingerprints).
        from repro.market import ProviderMarket

        compiled.infrastructure = ProviderMarket.from_infrastructure(
            compiled.infrastructure, providers
        ).compile(at=0.0).infrastructure
    allocator = factories[args.allocator]()
    try:
        result = compiled.run(allocator)
    finally:
        allocator.close()
    metrics = result.metrics
    print(
        format_table(
            [
                "windows",
                "time (s)",
                "rejection",
                "violations",
                "provider cost",
                "sla rate",
                "churn",
            ],
            [metrics.as_row()],
            title=(
                f"Scenario {args.name!r} x {result.algorithm} "
                f"(seed {args.seed}, {len(compiled)} events)"
            ),
        )
    )
    print(
        f"accepted {metrics.accepted} / rejected {metrics.rejected} / "
        f"displaced {metrics.displaced} decisions; "
        f"{metrics.failures} failure(s), {metrics.drains} drain(s), "
        f"{metrics.migration_moves} migration move(s)"
    )
    print(
        f"event fingerprint {compiled.event_fingerprint()}  "
        f"ledger {result.ledger_fingerprint}"
    )
    return 0


def cmd_verify(args) -> int:
    """Run ``python -m repro verify``."""
    from repro.telemetry import get_registry
    from repro.verify import (
        FuzzConfig,
        check_parallel_determinism,
        check_resume_determinism,
        run_fuzz,
    )

    fuzz_kwargs = {}
    if args.scenario:
        from repro.workloads.scenarios import scenario_names

        names: list[str] = []
        for entry in args.scenario:
            if entry == "all":
                names.extend(scenario_names())
            else:
                names.append(entry)
        unknown = sorted(set(names) - set(scenario_names()))
        if unknown:
            print(
                f"error: unknown scenario(s) {', '.join(unknown)}; "
                f"pick from {', '.join(scenario_names())} (or 'all')",
                file=sys.stderr,
            )
            return 2
        fuzz_kwargs["dynamic_scenarios"] = tuple(names)
    if args.allocator is not None:
        factories = _factories(
            args, include_cp_hybrid=True, include_portfolio=True
        )
        if args.allocator not in factories:
            print(
                f"error: unknown allocator {args.allocator!r}; "
                f"pick from {', '.join(sorted(factories))}",
                file=sys.stderr,
            )
            return 2
        fuzz_kwargs["allocator_factory"] = factories[args.allocator]
    config = FuzzConfig(
        scenarios=args.fuzz,
        seed=args.seed,
        sizes=args.sizes,
        walk_detours=args.walk_detours,
        perturb=args.perturb,
        **fuzz_kwargs,
    )
    report = run_fuzz(config)
    print(report.format())
    ok = report.ok
    if args.check_anytime:
        from repro.verify import check_anytime_conformance

        anytime_report = check_anytime_conformance(seed=args.seed)
        print()
        print(anytime_report.format())
        ok = ok and anytime_report.ok
    if args.check_market:
        from repro.verify import check_market_conformance

        market_report = check_market_conformance(seed=args.seed)
        print()
        print(market_report.format())
        ok = ok and market_report.ok
    if args.check_parallel is not None:
        parallel_report = check_parallel_determinism(
            args.check_parallel, seed=args.seed
        )
        print()
        print(parallel_report.format())
        ok = ok and parallel_report.ok
    if args.check_kernels:
        from repro.verify import check_kernel_conformance

        kernels_report = check_kernel_conformance(seed=args.seed)
        print()
        print(kernels_report.format())
        ok = ok and kernels_report.ok
    if args.check_resume:
        resume_report = check_resume_determinism(seed=args.seed)
        print()
        print(resume_report.format())
        ok = ok and resume_report.ok
    if args.check_service is not False:
        from repro.verify import check_service_conformance

        service_report = check_service_conformance(
            args.check_service, seed=args.seed
        )
        print()
        print(service_report.format())
        ok = ok and service_report.ok
    snapshot = get_registry().format_summary()
    verify_lines = [line for line in snapshot.splitlines() if "verify." in line]
    if verify_lines:
        print("\n-- verify.* telemetry --")
        print("\n".join(verify_lines))
    return 0 if ok else 1


def cmd_resume(args) -> int:
    """Run ``python -m repro resume``: replay a campaign's manifest argv."""
    from pathlib import Path

    from repro.errors import CheckpointError
    from repro.runtime.checkpoint import read_checked_json

    try:
        manifest = read_checked_json(
            Path(args.path) / "manifest.json", "campaign_manifest"
        )
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        print(
            f"{args.path!r} is not a campaign checkpoint directory — "
            "expected the manifest written by a run with --checkpoint-dir",
            file=sys.stderr,
        )
        return 1
    argv = [str(chunk) for chunk in manifest["argv"]]
    print(f"resuming campaign: python -m repro {' '.join(argv)}")
    return main(argv)


def cmd_serve(args) -> int:
    """Run ``python -m repro serve``: the always-on allocation service."""
    from repro.service import ServiceApp, ServiceConfig

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        servers=args.servers,
        datacenters=args.datacenters,
        vms=args.vms,
        tightness=args.tightness,
        seed=args.seed,
        window_length=args.window_length,
        window_every=args.window_every,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every or 50,
        max_queue=args.max_queue,
        rate=args.rate,
        burst=args.burst,
        population=args.population,
        evaluations=args.evaluations,
        workers=args.workers,
        members=args.members or "nsga3_tabu+cp+tabu",
        deadline_ms=args.deadline_ms,
        scenario=args.scenario,
        resume=args.resume,
    )
    return ServiceApp(config).run()


def cmd_generate(args) -> int:
    """Run ``python -m repro generate``."""
    from repro.serialization import save_json, scenario_to_dict

    spec = ScenarioSpec(
        servers=args.servers,
        datacenters=2 if args.servers < 100 else 4,
        vms=args.vms,
        tightness=args.tightness,
    )
    scenario = ScenarioGenerator(spec, seed=args.seed).generate()
    path = save_json(scenario_to_dict(scenario), args.out)
    print(
        f"wrote {path} ({scenario.n_requests} requests, "
        f"{scenario.n_vms} VMs on {spec.servers} servers)"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument grammar (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate artifacts of the IPDPSW 2017 IaaS-allocation paper.",
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--seed", type=int, default=0)
    common.add_argument("--runs", type=int, default=1, help="scenarios per point")
    common.add_argument("--tightness", type=float, default=0.65)
    common.add_argument("--population", type=int, default=20)
    common.add_argument("--evaluations", type=int, default=600)
    common.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="worker processes for the intra-run parallel engine "
        "(0 = serial, the default; results are byte-identical either "
        "way — see docs/PARALLEL.md)",
    )
    common.add_argument(
        "--kernel",
        default=None,
        choices=("reference", "numpy", "numba", "auto"),
        help="evaluation kernel backend (default: $REPRO_KERNEL or "
        "'auto' = numba when importable, else numpy; all backends are "
        "bitwise-conformant — see docs/PERFORMANCE.md)",
    )
    common.add_argument(
        "--include-cp-hybrid",
        action="store_true",
        help="include the slow nsga3_cp hybrid in sweeps",
    )
    common.add_argument(
        "--energy-weight",
        type=float,
        default=0.0,
        metavar="W",
        help="fold a datacenter energy-cost term into the provider "
        "objective with this weight (0 = off, the default; "
        "docs/PORTFOLIO.md)",
    )
    common.add_argument(
        "--members",
        default=None,
        metavar="SPEC",
        help="portfolio member spec, '+'-joined (default "
        "nsga3_tabu+cp+tabu; used by --allocator portfolio and "
        "`repro serve`; docs/PORTFOLIO.md)",
    )
    common.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="wall-clock budget for portfolio solves: the race ships "
        "its best pooled incumbent when the clock expires "
        "(default none = run every member to its own budget; "
        "docs/PORTFOLIO.md)",
    )
    common.add_argument(
        "--prefer",
        type=_parse_prefer,
        default=None,
        metavar="SPEC",
        help="ceteris-paribus preference order selecting the deployed "
        "solution from any Pareto front, most important criterion "
        "first (e.g. provider_cost>qos>migration; default: the "
        "paper's ideal-point pick — docs/MARKET.md)",
    )
    common.add_argument(
        "--telemetry",
        default=None,
        metavar="SPEC",
        help="event sink: console, jsonl:PATH, or off (default; see "
        "docs/OBSERVABILITY.md)",
    )
    common.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="campaign checkpoint directory: finished sweep cells and "
        "mid-run EA state land here, and an identical rerun (or "
        "`python -m repro resume DIR`) continues instead of restarting "
        "(docs/RUNBOOK.md)",
    )
    common.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="G",
        help="EA checkpoint cadence in generations (default 10; only "
        "meaningful with --checkpoint-dir)",
    )

    sub = parser.add_subparsers(dest="command", required=True)
    for name, fn, help_text in [
        ("fig7", cmd_fig7, "execution time, few resources"),
        ("fig8", cmd_fig8, "execution time, many resources"),
        ("fig9", cmd_fig9, "rejection rate vs size"),
        ("fig10", cmd_fig10, "violated constraints vs size"),
        ("fig11", cmd_fig11, "provider cost (+ cost per request)"),
        ("table2", cmd_table2, "measured capability matrix"),
        ("table3", cmd_table3, "NSGA settings"),
        ("compare", cmd_compare, "all algorithms on one scenario"),
        ("generate", cmd_generate, "dump a scenario to JSON"),
        ("diagnose", cmd_diagnose, "pre-flight feasibility checks on a scenario JSON"),
        ("scenario", cmd_scenario, "dynamic scenario registry: list / run (docs/SCENARIOS.md)"),
        ("verify", cmd_verify, "cross-solver conformance fuzzing (docs/VERIFY.md)"),
        ("serve", cmd_serve, "always-on allocation service (docs/SERVICE.md)"),
    ]:
        p = sub.add_parser(name, help=help_text, parents=[common])
        p.set_defaults(func=fn)
        if name == "scenario":
            p.add_argument(
                "action",
                choices=("list", "run"),
                help="list the registry, or compile+run one scenario",
            )
            p.add_argument(
                "name",
                nargs="?",
                default=None,
                metavar="NAME",
                help="registered scenario name (required for `run`)",
            )
            p.add_argument(
                "--allocator",
                default="round_robin",
                metavar="NAME",
                help="allocator driving the scenario's windows "
                "(default round_robin)",
            )
        if name == "verify":
            p.add_argument(
                "--scenario",
                action="append",
                default=None,
                metavar="NAME",
                help="also check the dynamic metamorphic laws against "
                "this registered scenario's event stream each iteration "
                "(repeatable; 'all' = entire registry; docs/SCENARIOS.md)",
            )
            p.add_argument(
                "--fuzz",
                type=int,
                default=20,
                metavar="N",
                help="random scenarios to fuzz (default 20)",
            )
            p.add_argument(
                "--sizes",
                type=_parse_sizes,
                default=((4, 8), (8, 16), (16, 32)),
                metavar="SxV,...",
                help="(servers)x(vms) pairs cycled across scenarios "
                "(default 4x8,8x16,16x32)",
            )
            p.add_argument(
                "--walk-detours",
                type=int,
                default=2,
                help="random intermediate moves per VM in oracle walks",
            )
            p.add_argument(
                "--perturb",
                type=_parse_perturb,
                default=None,
                metavar="TERM[:DELTA]",
                help="fault-inject an objective/constraint term into the "
                "incremental path (self-test: the run must then fail)",
            )
            p.add_argument(
                "--check-parallel",
                type=_parse_workers,
                default=None,
                metavar="W1,W2,...",
                help="also prove serial-vs-parallel byte-identity of the "
                "execution engine at these worker counts (docs/PARALLEL.md)",
            )
            p.add_argument(
                "--check-resume",
                action="store_true",
                help="also prove kill-and-resume byte-identity of the "
                "checkpoint subsystem, serial and 2-worker "
                "(docs/RUNBOOK.md)",
            )
            p.add_argument(
                "--check-service",
                nargs="?",
                default=False,
                const=None,
                metavar="DIR",
                help="also prove live-vs-batch conformance of the "
                "allocation service: bare flag replays a synthetic "
                "in-process session, DIR replays the admission log of "
                "a `repro serve` checkpoint directory (docs/SERVICE.md)",
            )
            p.add_argument(
                "--check-kernels",
                action="store_true",
                help="also prove bitwise conformance of every kernel "
                "backend (reference/numpy/numba) on fuzzed and "
                "edge-case instances (docs/PERFORMANCE.md)",
            )
            p.add_argument(
                "--check-market",
                action="store_true",
                help="also prove the market layer's promises: "
                "single-provider byte-identity, brokered-front "
                "non-domination with provider confinement, and "
                "deterministic total preference selection "
                "(docs/MARKET.md)",
            )
            p.add_argument(
                "--check-anytime",
                action="store_true",
                help="also prove the anytime portfolio contract: "
                "monotone pooled front, allocate ≡ stepwise parity, "
                "seed determinism and the reoptimizer's portfolio "
                "wiring (docs/PORTFOLIO.md)",
            )
            p.add_argument(
                "--allocator",
                default=None,
                metavar="NAME",
                help="route the fuzz scenarios' invariant/metamorphic "
                "layers through this allocator (e.g. portfolio) "
                "instead of round robin",
            )
        if name == "compare":
            p.add_argument(
                "--allocator",
                default=None,
                metavar="NAME",
                help="run only this allocator (e.g. portfolio) instead "
                "of the whole lineup",
            )
        if name in ("compare", "scenario"):
            p.add_argument(
                "--providers",
                type=_providers_count,
                default=1,
                metavar="N",
                help="partition the estate across N cloud providers with "
                "default price books; compare then brokers each "
                "allocator across them, scenario run prices the merged "
                "estate (default 1 = the paper's single-provider model, "
                "byte-identical — docs/MARKET.md)",
            )
        if name == "fig8":
            p.add_argument(
                "--full", action="store_true", help="include 400x800 and 800x1600"
            )
        if name in ("compare", "generate"):
            p.add_argument("--servers", type=int, default=32)
            p.add_argument("--vms", type=int, default=64)
        if name == "serve":
            p.add_argument("--host", default="127.0.0.1")
            p.add_argument(
                "--port",
                type=int,
                default=8080,
                help="listen port (0 = ephemeral; the bound port is printed)",
            )
            p.add_argument("--servers", type=int, default=16)
            p.add_argument("--datacenters", type=int, default=2)
            p.add_argument("--vms", type=int, default=32)
            p.add_argument(
                "--window-length",
                type=float,
                default=1.0,
                help="logical duration of one admission micro-batch window",
            )
            p.add_argument(
                "--window-every",
                type=float,
                default=30.0,
                metavar="SECONDS",
                help="interval between background reoptimization cycles",
            )
            p.add_argument(
                "--max-queue",
                type=int,
                default=256,
                help="admission queue bound (overflow answers 429)",
            )
            p.add_argument(
                "--rate",
                type=float,
                default=0.0,
                help="token-bucket rate limit in requests/s (0 = unlimited)",
            )
            p.add_argument("--burst", type=int, default=64)
            p.add_argument(
                "--scenario",
                default=None,
                metavar="JSON|NAME",
                help="serve this scenario JSON's infrastructure instead "
                "of generating one — or the name of a registered "
                "dynamic scenario (`repro scenario list`), which the "
                "service then plays back through live admission",
            )
            p.add_argument(
                "--resume",
                action="store_true",
                help="restore state from --checkpoint-dir's service "
                "checkpoint (docs/SERVICE.md)",
            )
        if name == "generate":
            p.add_argument("--out", default="scenario.json")
        if name == "diagnose":
            p.add_argument("scenario", help="path to a scenario JSON")
    resume_parser = sub.add_parser(
        "resume",
        help="continue a killed campaign from its checkpoint directory",
    )
    resume_parser.add_argument(
        "path", help="checkpoint directory of the interrupted campaign"
    )
    resume_parser.set_defaults(func=cmd_resume)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point (``python -m repro ...``)."""
    argv = list(sys.argv[1:] if argv is None else argv)
    args = build_parser().parse_args(argv)
    if getattr(args, "checkpoint_dir", None):
        # Record the invocation so `python -m repro resume DIR` can
        # re-issue it; reruns overwrite atomically with the same argv.
        from pathlib import Path

        from repro.runtime.checkpoint import atomic_write_json

        directory = Path(args.checkpoint_dir)
        directory.mkdir(parents=True, exist_ok=True)
        atomic_write_json(
            directory / "manifest.json", "campaign_manifest", {"argv": argv}
        )
    if getattr(args, "kernel", None):
        from repro.engine.kernels import set_kernel

        set_kernel(args.kernel)
    if getattr(args, "prefer", None) is not None:
        # Installed process-wide, like the kernel backend: every site
        # that commits a single plan consults it (docs/MARKET.md).
        from repro.market.preferences import set_preference

        set_preference(args.prefer)
    sink = telemetry.configure(getattr(args, "telemetry", None))
    try:
        from repro.runtime.signals import GracefulShutdown

        with GracefulShutdown():
            return args.func(args)
    finally:
        telemetry.shutdown(sink)
        if sink is not None:
            # Sweeps attach their metrics to the SweepResult; whatever
            # was recorded outside a sweep (compare, scheduler runs) is
            # summarized here so console/jsonl users see both streams.
            summary = telemetry.get_registry().format_summary()
            if summary:
                print("\n-- telemetry (process registry) --")
                print(summary)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
