"""Round Robin with server affinity (the paper's first baseline).

After Mahajan, Makroo & Dahiya (JIPS 2013): servers are tried in
rotating order from a persistent pointer, so consecutive placements
spread across the estate; the affinity twist sorts each request's
resources so that placement-rule group members are allocated together
(see :meth:`GreedyAllocator._placement_order`).  The pointer advances
past each server that receives a resource, giving the classic
load-spreading behaviour that is fast but blind to cost and QoS —
which is why Figure 9 shows it rejecting far more requests than the
evolutionary approaches once instances tighten.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.greedy_base import GreedyAllocator
from repro.model.infrastructure import Infrastructure
from repro.types import AlgorithmKind, FloatArray, IntArray

__all__ = ["RoundRobinAllocator"]


class RoundRobinAllocator(GreedyAllocator):
    """Rotating-pointer placement with affinity-sorted resources."""

    name = "round_robin"
    kind = AlgorithmKind.ROUND_ROBIN

    def __init__(self, seed=None) -> None:
        super().__init__(seed=seed)
        self._pointer = 0

    def reset(self) -> None:
        """Rewind the rotation pointer (between independent scenarios)."""
        self._pointer = 0

    def runtime_state(self) -> dict | None:
        """RNG state plus the persistent rotation pointer."""
        state = super().runtime_state() or {}
        state["pointer"] = self._pointer
        return state

    def restore_runtime_state(self, state: dict) -> None:
        """Restore RNG state and rotation pointer."""
        super().restore_runtime_state(state)
        self._pointer = int(state["pointer"])

    def _candidate_order(
        self,
        infrastructure: Infrastructure,
        usage: FloatArray,
        demand: FloatArray,
        valid: np.ndarray,
    ) -> IntArray:
        m = infrastructure.m
        rotation = (np.arange(m) + self._pointer) % m
        ordered = rotation[valid[rotation]]
        # Advance the pointer past the server about to be used.
        self._pointer = (int(ordered[0]) + 1) % m
        return ordered.astype(np.int64)
