"""Vector bin-packing heuristics: first-fit decreasing and dot-product.

The paper frames allocation as multidimensional bin packing (its
NP-hardness argument cites the vector scheduling literature); these are
that literature's workhorse heuristics, added as stronger greedy
reference points than plain first-fit:

* **FFD** — process resources largest-first (by normalized demand
  magnitude), place each on the first server that fits.  Sorting
  first is the classic approximation-ratio improvement over first-fit.
* **Dot-product** — place each resource on the valid server whose
  remaining-capacity vector best *aligns* with the demand vector
  (maximum dot product of normalized vectors), the multi-dimensional
  analogue of best-fit that avoids fragmenting one attribute while
  another idles (Panigrahy et al.'s heuristic family).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.greedy_base import GreedyAllocator
from repro.model.infrastructure import Infrastructure
from repro.model.request import Request
from repro.types import FloatArray, IntArray

__all__ = ["FirstFitDecreasingAllocator", "DotProductAllocator"]


class FirstFitDecreasingAllocator(GreedyAllocator):
    """First-fit over resources sorted by decreasing normalized size."""

    name = "first_fit_decreasing"

    def _placement_order(self, request: Request) -> IntArray:
        # Normalize each attribute by the request's own maximum so one
        # huge-valued attribute (disk) does not dominate the size rank.
        demand = request.demand
        scale = demand.max(axis=0)
        scale = np.where(scale > 0, scale, 1.0)
        size = (demand / scale).sum(axis=1)
        by_size = np.argsort(-size, kind="stable")
        # Keep affinity-group members early (they need freedom), but
        # order within the two blocks by size.
        grouped = np.zeros(request.n, dtype=bool)
        for group in request.groups:
            grouped[list(group.members)] = True
        first = [int(k) for k in by_size if grouped[k]]
        rest = [int(k) for k in by_size if not grouped[k]]
        return np.asarray(first + rest, dtype=np.int64)

    def _candidate_order(
        self,
        infrastructure: Infrastructure,
        usage: FloatArray,
        demand: FloatArray,
        valid: np.ndarray,
    ) -> IntArray:
        return np.flatnonzero(valid).astype(np.int64)


class DotProductAllocator(GreedyAllocator):
    """Maximum demand/residual alignment (normalized dot product)."""

    name = "dot_product"

    def _candidate_order(
        self,
        infrastructure: Infrastructure,
        usage: FloatArray,
        demand: FloatArray,
        valid: np.ndarray,
    ) -> IntArray:
        candidates = np.flatnonzero(valid)
        residual = infrastructure.effective_capacity[candidates] - usage[candidates]
        # Normalize both vectors so the score is pure alignment; a tiny
        # epsilon guards fully drained servers that still "fit" due to
        # the capacity mask's tolerance.
        res_norm = np.linalg.norm(residual, axis=1)
        dem_norm = np.linalg.norm(demand)
        score = residual @ demand / (res_norm * dem_norm + 1e-12)
        return candidates[np.argsort(-score, kind="stable")].astype(np.int64)
