"""Filter-scheduler baseline — Table II's "Filtering Algorithm" column.

The production-cloud allocation style the paper's Table II grades
alongside Round Robin, constraint programming and NSGA: the
filter-and-weigh scheduler popularized by OpenStack Nova.  Placement of
each resource is a two-phase decision:

1. **Filter** — drop servers that cannot host the resource (capacity,
   affinity/anti-affinity consistency) — exactly the validity masks of
   the shared greedy scaffolding;
2. **Weigh** — score the survivors with a weighted sum of normalized
   criteria and take the best.  Weighers here: free capacity (spread),
   cost rate (cheapness), both normalized to [0, 1] per decision.

Table II's verdict on this family — good constraint compliance and
infrastructure control, weaker scalability story than NSGA — falls out
of the measurement in `bench_table2_capabilities.py`.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.greedy_base import GreedyAllocator
from repro.errors import ValidationError
from repro.model.infrastructure import Infrastructure
from repro.types import FloatArray, IntArray

__all__ = ["FilterSchedulerAllocator"]


class FilterSchedulerAllocator(GreedyAllocator):
    """Filter + weigh placement (OpenStack-style).

    Parameters
    ----------
    free_capacity_weight:
        Weight of the normalized free-capacity score (higher = spread
        load, the availability-friendly pull).
    cost_weight:
        Weight of the normalized cheapness score (higher = consolidate
        onto cheap servers, the provider-cost pull).
    """

    name = "filter_scheduler"

    def __init__(
        self,
        free_capacity_weight: float = 1.0,
        cost_weight: float = 1.0,
        seed=None,
    ) -> None:
        super().__init__(seed=seed)
        if free_capacity_weight < 0 or cost_weight < 0:
            raise ValidationError("weights must be >= 0")
        if free_capacity_weight == 0 and cost_weight == 0:
            raise ValidationError("at least one weigher must be active")
        self.free_capacity_weight = float(free_capacity_weight)
        self.cost_weight = float(cost_weight)

    def _candidate_order(
        self,
        infrastructure: Infrastructure,
        usage: FloatArray,
        demand: FloatArray,
        valid: np.ndarray,
    ) -> IntArray:
        candidates = np.flatnonzero(valid)
        if candidates.size == 1:
            return candidates.astype(np.int64)

        # Weigher 1: normalized free capacity after hosting the demand.
        free = (
            infrastructure.effective_capacity[candidates]
            - usage[candidates]
            - demand
        ).sum(axis=1)
        free_span = free.max() - free.min()
        free_score = (
            (free - free.min()) / free_span if free_span > 0 else np.ones_like(free)
        )

        # Weigher 2: normalized cheapness (lower E+U rate = higher score).
        rate = (
            infrastructure.operating_cost[candidates]
            + infrastructure.usage_cost[candidates]
        )
        rate_span = rate.max() - rate.min()
        cheap_score = (
            (rate.max() - rate) / rate_span if rate_span > 0 else np.ones_like(rate)
        )

        score = (
            self.free_capacity_weight * free_score
            + self.cost_weight * cheap_score
        )
        return candidates[np.argsort(-score, kind="stable")].astype(np.int64)
