"""Scaffolding shared by the greedy baseline allocators.

A greedy allocator walks the window request by request.  For each
request it places resources one at a time — affinity-group members
first, so co-location decisions are made while the most freedom remains
— using the subclass's candidate ordering.  Capacity and the request's
own placement rules are enforced via the same vectorized masks the tabu
repair uses (:class:`~repro.tabu.neighborhood.NeighborFinder`).  If any
resource cannot be placed the whole request rolls back and is rejected;
accepted requests commit their usage before the next request is tried.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.allocator import Allocator, BatchOutcome
from repro.model.infrastructure import Infrastructure
from repro.model.placement import UNPLACED
from repro.model.request import Request
from repro.tabu.neighborhood import NeighborFinder
from repro.types import FloatArray, IntArray
from repro.utils.rng import as_generator
from repro.utils.timers import Stopwatch

__all__ = ["GreedyAllocator"]


class GreedyAllocator(Allocator):
    """Template for request-sequential, never-violating allocators."""

    def __init__(self, seed=None) -> None:
        self._rng = as_generator(seed)

    def runtime_state(self) -> dict | None:
        """Cross-window state: the tie-break RNG's bit-generator state."""
        return {"rng_state": self._rng.bit_generator.state}

    def restore_runtime_state(self, state: dict) -> None:
        """Restore the tie-break RNG captured by :meth:`runtime_state`."""
        self._rng.bit_generator.state = state["rng_state"]

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _candidate_order(
        self,
        infrastructure: Infrastructure,
        usage: FloatArray,
        demand: FloatArray,
        valid: np.ndarray,
    ) -> IntArray:
        """Order the valid servers for one resource placement.

        ``valid`` is the boolean mask of servers passing capacity and
        affinity; implementations return indices (a permutation of
        ``np.flatnonzero(valid)`` — the first entry is used).
        """

    def _placement_order(self, request: Request) -> IntArray:
        """Resource visit order: group members first ("sorted by
        affinity"), then the rest in index order."""
        grouped: list[int] = []
        seen = set()
        for group in request.groups:
            for member in group.members:
                if member not in seen:
                    grouped.append(member)
                    seen.add(member)
        rest = [k for k in range(request.n) if k not in seen]
        return np.asarray(grouped + rest, dtype=np.int64)

    # ------------------------------------------------------------------
    def allocate(
        self,
        infrastructure: Infrastructure,
        requests: Sequence[Request],
        base_usage: FloatArray | None = None,
        previous_assignment: IntArray | None = None,
    ) -> BatchOutcome:
        """Greedily place every request; see :meth:`Allocator.allocate`."""
        merged, owner = self.merge_requests(requests)
        stopwatch = Stopwatch().start()

        usage = (
            np.zeros((infrastructure.m, infrastructure.h))
            if base_usage is None
            else np.asarray(base_usage, dtype=np.float64).copy()
        )
        finder = NeighborFinder(infrastructure, merged, base_usage=None)
        # NeighborFinder checks capacity against effective capacity minus
        # `usage`; we thread the *running* usage (base + committed
        # requests + current request's partial placement) through it.
        finder.limit = infrastructure.effective_capacity

        assignment = np.full(merged.n, UNPLACED, dtype=np.int64)
        offset = 0
        for request in requests:
            indices = offset + self._placement_order(request)
            placed: list[tuple[int, int]] = []
            success = True
            for k in indices:
                k = int(k)
                demand = merged.demand[k]
                valid = finder.capacity_mask(usage, assignment, k)
                valid &= finder.affinity_mask(assignment, k)
                if not valid.any():
                    success = False
                    break
                order = self._candidate_order(
                    infrastructure, usage, demand, valid
                )
                server = int(order[0])
                assignment[k] = server
                usage[server] += demand
                placed.append((k, server))
            if not success:
                for k, server in placed:  # roll the request back
                    usage[server] -= merged.demand[k]
                    assignment[k] = UNPLACED
            offset += request.n

        stopwatch.stop()
        return self.finalize(
            infrastructure,
            merged,
            owner,
            assignment,
            elapsed=stopwatch.elapsed,
            base_usage=base_usage,
            previous_assignment=previous_assignment,
        )
