"""Classical greedy packing heuristics: first-fit, best-fit, worst-fit,
random-fit.

Not compared in the paper's figures, but the natural extra reference
points: the related work frames cloud allocation as multidimensional
bin packing, and these are its canonical online heuristics.  They share
the greedy scaffolding (capacity + per-request affinity enforcement,
reject-on-failure) so every difference in the benches is purely the
candidate ordering.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.greedy_base import GreedyAllocator
from repro.model.infrastructure import Infrastructure
from repro.types import FloatArray, IntArray

__all__ = [
    "FirstFitAllocator",
    "BestFitAllocator",
    "WorstFitAllocator",
    "RandomAllocator",
]


class FirstFitAllocator(GreedyAllocator):
    """Lowest-id server that fits — the fastest packing heuristic."""

    name = "first_fit"

    def _candidate_order(
        self,
        infrastructure: Infrastructure,
        usage: FloatArray,
        demand: FloatArray,
        valid: np.ndarray,
    ) -> IntArray:
        return np.flatnonzero(valid).astype(np.int64)


class BestFitAllocator(GreedyAllocator):
    """Tightest server first: minimizes leftover headroom, consolidating
    load onto few servers (the provider-cost-friendly greedy)."""

    name = "best_fit"

    def _candidate_order(
        self,
        infrastructure: Infrastructure,
        usage: FloatArray,
        demand: FloatArray,
        valid: np.ndarray,
    ) -> IntArray:
        candidates = np.flatnonzero(valid)
        headroom = (
            infrastructure.effective_capacity[candidates]
            - usage[candidates]
            - demand
        ).sum(axis=1)
        return candidates[np.argsort(headroom, kind="stable")].astype(np.int64)


class WorstFitAllocator(GreedyAllocator):
    """Roomiest server first: spreads load, the availability-friendly
    greedy (cf. the load-balancing placement work in related work)."""

    name = "worst_fit"

    def _candidate_order(
        self,
        infrastructure: Infrastructure,
        usage: FloatArray,
        demand: FloatArray,
        valid: np.ndarray,
    ) -> IntArray:
        candidates = np.flatnonzero(valid)
        headroom = (
            infrastructure.effective_capacity[candidates]
            - usage[candidates]
            - demand
        ).sum(axis=1)
        return candidates[np.argsort(-headroom, kind="stable")].astype(np.int64)


class RandomAllocator(GreedyAllocator):
    """Uniformly random valid server — the chance-level baseline."""

    name = "random_fit"

    def _candidate_order(
        self,
        infrastructure: Infrastructure,
        usage: FloatArray,
        demand: FloatArray,
        valid: np.ndarray,
    ) -> IntArray:
        candidates = np.flatnonzero(valid).astype(np.int64)
        self._rng.shuffle(candidates)
        return candidates
