"""Non-evolutionary baseline allocators.

* :class:`RoundRobinAllocator` — the paper's Round Robin baseline,
  after Mahajan et al.'s "Round Robin with Server Affinity": a rotating
  server pointer, with request resources sorted so affinity groups are
  placed together.
* :class:`FirstFitAllocator`, :class:`BestFitAllocator`,
  :class:`WorstFitAllocator`, :class:`RandomAllocator` — classical
  greedy packing heuristics, included as extra reference points (the
  bin-packing family the paper's related work positions against).

All greedy allocators process requests in arrival order, respect
capacity and the request's own affinity rules, and *reject* (leave
unplaced) any request they cannot satisfy — they never emit violating
placements, which is exactly how they behave in Figures 9-10.
"""

from repro.baselines.greedy_base import GreedyAllocator
from repro.baselines.round_robin import RoundRobinAllocator
from repro.baselines.fits import (
    BestFitAllocator,
    FirstFitAllocator,
    RandomAllocator,
    WorstFitAllocator,
)
from repro.baselines.filter_scheduler import FilterSchedulerAllocator
from repro.baselines.vector_packing import (
    DotProductAllocator,
    FirstFitDecreasingAllocator,
)

__all__ = [
    "GreedyAllocator",
    "RoundRobinAllocator",
    "FirstFitAllocator",
    "BestFitAllocator",
    "WorstFitAllocator",
    "RandomAllocator",
    "FirstFitDecreasingAllocator",
    "DotProductAllocator",
    "FilterSchedulerAllocator",
]
