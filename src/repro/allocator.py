"""Uniform allocator interface and outcome records.

Section IV compares six very different algorithms on four shared
criteria: execution time, rejection rate, violated constraints and
provider cost.  That only works if every algorithm reports through the
same lens; :class:`Allocator` is that lens.

An allocator receives a *batch* of consumer requests (the paper's
cyclic time window collects "all requests within a cyclic time
window"), the provider infrastructure, committed usage from earlier
windows and, for reconfiguration runs, the previous assignment.  It
returns a :class:`BatchOutcome`: the merged placement, which requests
were rejected, the violation breakdown and the objective values of the
final allocation.

Rejection semantics (Figure 9): a request is **rejected** when, in the
returned allocation, any of its resources is unplaced, sits on a
server whose capacity is exceeded, or belongs to a violated
affinity/anti-affinity group.  Greedy algorithms reject by leaving
resources unplaced; unmodified evolutionary algorithms "reject" by
emitting violating placements — the same counter captures both.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.constraints.registry import ConstraintSet
from repro.engine import CompiledProblem, ParallelEngine, ProblemCache
from repro.runtime.checkpoint import CheckpointManager
from repro.model.infrastructure import Infrastructure
from repro.model.placement import UNPLACED
from repro.model.request import Request
from repro.types import AlgorithmKind, BoolArray, FloatArray, IntArray
from repro.utils.timers import Stopwatch

__all__ = ["AnytimeRun", "BatchOutcome", "Allocator", "per_request_rejections"]


def per_request_rejections(
    assignment: IntArray,
    merged: Request,
    owner: IntArray,
    constraints: ConstraintSet,
) -> BoolArray:
    """Rejected-request mask for a merged batch.

    Parameters
    ----------
    assignment:
        Flat genome over the merged request (UNPLACED allowed).
    merged:
        The merged request (resources of all batch members).
    owner:
        (n,) map from merged resource index to batch request index.
    constraints:
        The merged instance's constraint set.

    Returns
    -------
    Boolean vector over batch requests; True = rejected.
    """
    assignment = np.asarray(assignment, dtype=np.int64)
    owner = np.asarray(owner, dtype=np.int64)
    n_requests = int(owner.max()) + 1 if owner.size else 0
    rejected = np.zeros(n_requests, dtype=bool)

    # Unplaced resources reject their request.
    unplaced = assignment == UNPLACED
    if unplaced.any():
        rejected[np.unique(owner[unplaced])] = True

    # Resources on overloaded servers reject their request.
    offenders = constraints.capacity.overloaded_servers(assignment)
    if offenders.size:
        affected = np.isin(assignment, offenders)
        if affected.any():
            rejected[np.unique(owner[affected])] = True

    # Violated groups reject the request owning the group.
    for gi, group in enumerate(merged.groups):
        constraint = constraints.group_constraints[gi]
        if constraint.violations(assignment) > 0:
            rejected[owner[group.members[0]]] = True
    return rejected


@dataclass
class BatchOutcome:
    """What one algorithm did with one window of requests.

    Attributes
    ----------
    algorithm:
        Label used in figures ("nsga3_tabu", "round_robin", ...).
    assignment:
        Flat genome over the merged request (UNPLACED where rejected).
    accepted:
        Per-batch-request acceptance mask.
    violations:
        Total constraint violations of the returned allocation.
    violation_breakdown:
        Violations keyed by constraint name.
    objectives:
        (3,) objective vector of the returned allocation (Eq. 22/23/26).
    elapsed:
        Wall-clock seconds the algorithm spent.
    evaluations:
        Objective evaluations consumed (0 for non-EA algorithms).
    extra:
        Algorithm-specific diagnostics (CP node counts, repair moves...).
    """

    algorithm: str
    assignment: IntArray
    accepted: BoolArray
    violations: int
    violation_breakdown: dict[str, int]
    objectives: FloatArray
    elapsed: float
    evaluations: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def n_requests(self) -> int:
        """Batch size."""
        return int(self.accepted.shape[0])

    @property
    def rejection_rate(self) -> float:
        """Fraction of batch requests rejected (Figure 9's y-axis)."""
        if self.accepted.size == 0:
            return 0.0
        return float(1.0 - self.accepted.mean())

    @property
    def provider_cost(self) -> float:
        """Usage + operating cost of the allocation (Figure 11's y-axis)."""
        return float(self.objectives[0])


class AnytimeRun(abc.ABC):
    """One in-progress solve exposing the anytime contract.

    Obtained from :meth:`Allocator.start`.  The owner advances the run
    in bounded slices with :meth:`step` and may read
    :meth:`best_solution` / :meth:`best_front` *between any two steps*
    — both are required to be valid (possibly trivial) at every
    instant, which is what lets a portfolio racer or a deadline-bound
    service interrupt the solve at an arbitrary epoch and still ship a
    plan.  :meth:`finish` freezes the run into the same
    :class:`BatchOutcome` the blocking :meth:`Allocator.allocate` path
    reports, so downstream reporting is oblivious to how the solve was
    driven.
    """

    def __init__(
        self,
        allocator: "Allocator",
        infrastructure: Infrastructure,
        merged: Request,
        owner: IntArray,
        base_usage: FloatArray | None = None,
        previous_assignment: IntArray | None = None,
        compiled: CompiledProblem | None = None,
    ) -> None:
        self.allocator = allocator
        self.infrastructure = infrastructure
        self.merged = merged
        self.owner = owner
        self.base_usage = base_usage
        self.previous_assignment = previous_assignment
        if compiled is None:
            compiled = allocator.compile_problem(infrastructure, merged)
        self.compiled = compiled
        #: Objective evaluations consumed so far; implementations keep
        #: this current so :meth:`finish` reports honestly.
        self.evaluations = 0
        self.stopwatch = Stopwatch().start()
        self._outcome: BatchOutcome | None = None
        self._front_eval = None

    # -- the contract ---------------------------------------------------
    @abc.abstractmethod
    def step(self, budget: int = 1) -> bool:
        """Advance by ``budget`` work units; False = nothing left to do.

        A *work unit* is implementation-defined (an EA generation, a
        block of tabu iterations, one CP sub-problem) but must be
        bounded, so the caller controls slice length.
        """

    @abc.abstractmethod
    def best_solution(self) -> IntArray:
        """Current incumbent genome (UNPLACED allowed), at any instant."""

    def best_front(self) -> FloatArray:
        """(k, 3) objective rows of the current nondominated incumbents.

        The default scores :meth:`best_solution` through the shared
        compiled evaluator — a one-point front.  Population-based runs
        override this with their true front.
        """
        if self._front_eval is None:
            self._front_eval = self.compiled.evaluator(
                base_usage=self.base_usage,
                previous_assignment=self.previous_assignment,
                include_assignment_constraint=True,
                energy_weight=self.allocator.energy_weight,
            )
        point = self._front_eval.evaluate(self.best_solution()).as_array()
        return point[np.newaxis, :]

    def finish(self) -> BatchOutcome:
        """Freeze the run into a :class:`BatchOutcome` (idempotent).

        Does *not* drain remaining work — it reports whatever the steps
        taken so far produced.  Callers wanting the full batch result
        loop ``while run.step(): pass`` first.
        """
        if self._outcome is None:
            self.stopwatch.stop()
            self._outcome = self._finalize()
        return self._outcome

    def set_deadline(self, deadline: float) -> None:
        """Absolute ``time.perf_counter()`` deadline hint (no-op here).

        Implementations owning inner loops that can overshoot a step
        budget (tabu repair rounds, CP node search) propagate this so a
        wall-clock-bound caller is never stuck inside one slice.
        """

    def close(self) -> None:
        """Release per-run resources (no-op here; safe to repeat)."""

    # -- hooks ----------------------------------------------------------
    def _finalize(self) -> BatchOutcome:
        """Build the outcome; runs once, from :meth:`finish`."""
        return self.allocator.finalize(
            self.infrastructure,
            self.merged,
            self.owner,
            self.best_solution(),
            self.stopwatch.stop(),
            base_usage=self.base_usage,
            previous_assignment=self.previous_assignment,
            evaluations=self.evaluations,
            extra=self._extra(),
            compiled=self.compiled,
        )

    def _extra(self) -> dict | None:
        """Algorithm-specific diagnostics for the outcome (hook)."""
        return None


class _BatchStepRun(AnytimeRun):
    """Degenerate anytime run: the whole solve is one step.

    Wraps any blocking :meth:`Allocator.allocate` implementation —
    greedy and round-robin baselines finish in microseconds, so slicing
    them buys nothing.  Before the first step the incumbent is the
    everything-unplaced genome (a valid, maximally-rejecting plan).
    """

    def __init__(
        self,
        allocator: "Allocator",
        infrastructure: Infrastructure,
        requests: Sequence[Request],
        base_usage: FloatArray | None = None,
        previous_assignment: IntArray | None = None,
    ) -> None:
        merged, owner = Allocator.merge_requests(requests)
        super().__init__(
            allocator,
            infrastructure,
            merged,
            owner,
            base_usage=base_usage,
            previous_assignment=previous_assignment,
        )
        self._requests = list(requests)

    def step(self, budget: int = 1) -> bool:
        if self._outcome is None:
            self.stopwatch.stop()
            self._outcome = self.allocator.allocate(
                self.infrastructure,
                self._requests,
                base_usage=self.base_usage,
                previous_assignment=self.previous_assignment,
            )
            self.evaluations = self._outcome.evaluations
        return False

    def best_solution(self) -> IntArray:
        if self._outcome is None:
            return np.full(self.merged.n, UNPLACED, dtype=np.int64)
        return self._outcome.assignment

    def finish(self) -> BatchOutcome:
        if self._outcome is None:
            self.step()
        return self._outcome


class Allocator(abc.ABC):
    """Base class every compared algorithm implements."""

    #: Label used in reports and figures.
    name: str = "allocator"
    #: Which of the paper's algorithm families this is.
    kind: AlgorithmKind | None = None
    #: Compilation cache shared across windows.  The scheduler injects
    #: one so repeated solves of the same (infrastructure, request)
    #: instance reuse the compiled facts; standalone use lazily creates
    #: a private cache on first :meth:`compile_problem` call.
    problem_cache: ProblemCache | None = None
    #: Intra-run parallel execution engine (worker pool + shared-memory
    #: instances).  ``None`` = serial.  The scheduler can inject one so
    #: the pool persists across windows; EA allocators also create one
    #: lazily when their config asks for workers.  Whoever triggered
    #: creation should call :meth:`close` when done.
    execution_engine: ParallelEngine | None = None
    #: Checkpoint store for crash-safe runs.  ``None`` = no snapshots
    #: (EA allocators still honor ``NSGAConfig.checkpoint_dir`` on
    #: their own).  The scheduler injects one so every window's run
    #: checkpoints into a single campaign directory, stamped with the
    #: window index.  Non-EA allocators ignore it: their solves are
    #: single-pass and cheap to redo.
    checkpoint_manager: CheckpointManager | None = None
    #: Weight of the optional energy term folded into the provider-cost
    #: objective (column 0).  0.0 — the default everywhere — keeps the
    #: evaluation stack byte-identical to the paper's three-objective
    #: formulation; EA allocators override from ``NSGAConfig``.
    energy_weight: float = 0.0

    @abc.abstractmethod
    def allocate(
        self,
        infrastructure: Infrastructure,
        requests: Sequence[Request],
        base_usage: FloatArray | None = None,
        previous_assignment: IntArray | None = None,
    ) -> BatchOutcome:
        """Place one window of requests and report uniformly."""

    def start(
        self,
        infrastructure: Infrastructure,
        requests: Sequence[Request],
        base_usage: FloatArray | None = None,
        previous_assignment: IntArray | None = None,
    ) -> AnytimeRun:
        """Begin an anytime solve of one window.

        The default wraps :meth:`allocate` in a single-step run, which
        is exactly right for the sub-millisecond greedy baselines.
        Iterative allocators override this with genuinely incremental
        runs (generation-, iteration- or subproblem-granular).
        """
        return _BatchStepRun(
            self,
            infrastructure,
            requests,
            base_usage=base_usage,
            previous_assignment=previous_assignment,
        )

    def runtime_state(self) -> dict | None:
        """JSON-able cross-call state, for scheduler checkpoints.

        Stateless allocators (each ``allocate`` call independent)
        return ``None`` — the default.  Allocators carrying state
        across windows (round-robin's rotation pointer, a greedy
        tie-break RNG) override this and :meth:`restore_runtime_state`
        so a resumed scheduler continues byte-identically.  EA
        trajectory state is *not* captured here; that lives in the EA's
        own :class:`~repro.runtime.checkpoint.RunCheckpoint`.
        """
        return None

    def restore_runtime_state(self, state: dict) -> None:
        """Restore state captured by :meth:`runtime_state` (no-op here)."""

    # ------------------------------------------------------------------
    # Shared helpers for implementations
    # ------------------------------------------------------------------
    @staticmethod
    def merge_requests(requests: Sequence[Request]) -> tuple[Request, IntArray]:
        """Concatenate the window into one instance + ownership map."""
        return Request.concatenate(list(requests))

    def compile_problem(
        self, infrastructure: Infrastructure, request: Request
    ) -> CompiledProblem:
        """The cached compilation of one instance.

        Uses :attr:`problem_cache` (injected by the scheduler, or
        lazily created per allocator), so re-solving an already-seen
        instance — across windows, reoptimize passes or repeated
        ``allocate`` calls — skips the compile step entirely.
        """
        cache = self.problem_cache
        if cache is None:
            cache = self.problem_cache = ProblemCache()
        return cache.get(infrastructure, request)

    def close(self) -> None:
        """Release the execution engine (pool + shared memory), if any.

        Safe to call repeatedly; allocators without an engine are
        unaffected.  Serial operation continues to work afterwards.
        """
        engine = self.execution_engine
        if engine is not None:
            engine.close()
            self.execution_engine = None

    def finalize(
        self,
        infrastructure: Infrastructure,
        merged: Request,
        owner: IntArray,
        assignment: IntArray,
        elapsed: float,
        base_usage: FloatArray | None = None,
        previous_assignment: IntArray | None = None,
        evaluations: int = 0,
        extra: dict | None = None,
        compiled: CompiledProblem | None = None,
    ) -> BatchOutcome:
        """Uniform post-processing: violations, objectives, rejections."""
        if compiled is None:
            compiled = self.compile_problem(infrastructure, merged)
        evaluator = compiled.evaluator(
            base_usage=base_usage,
            previous_assignment=previous_assignment,
            include_assignment_constraint=True,
            energy_weight=self.energy_weight,
        )
        assignment = np.asarray(assignment, dtype=np.int64)
        objectives = evaluator.evaluate(assignment).as_array()
        breakdown = evaluator.constraints.breakdown(assignment)
        # Unplaced resources are *rejections* (Figure 9), not violated
        # constraints (Figure 10): a greedy/CP algorithm that declines a
        # request it cannot satisfy has violated nothing.
        unplaced = breakdown.pop("assignment", 0)
        breakdown["unplaced"] = unplaced
        violations = int(sum(v for k, v in breakdown.items() if k != "unplaced"))
        accepted = ~per_request_rejections(
            assignment, merged, owner, evaluator.constraints
        )
        return BatchOutcome(
            algorithm=self.name,
            assignment=assignment,
            accepted=accepted,
            violations=violations,
            violation_breakdown=breakdown,
            objectives=objectives,
            elapsed=float(elapsed),
            evaluations=int(evaluations),
            extra=extra or {},
        )
