"""Anytime solver portfolio: race heterogeneous allocators to a deadline.

The paper benchmarks its algorithms head-to-head on fixed budgets; an
operator facing a wall-clock deadline wants something stronger — run
*several* of them at once, let them trade incumbents, and ship the best
plan whenever the clock expires.  :class:`PortfolioAllocator` is that
racer, built entirely on the anytime contract of
:class:`~repro.allocator.AnytimeRun`:

* members advance **round-robin** in *epochs* — one EA generation, a
  block of tabu iterations, one CP sub-problem per turn — so no member
  can starve the others;
* at fixed **exchange epochs** every member offers its incumbents to a
  shared :class:`~repro.portfolio.incumbents.IncumbentPool` and takes
  from it: EA populations inject the pooled front (displacing their
  worst rows), the tabu walk reseeds from the pooled pick, and the CP
  member's exact feasible placements seed everyone downstream;
* the **deadline** is only consulted at epoch boundaries (and
  propagated into members' inner loops), so the racer's *trajectory at
  a given epoch count* is byte-reproducible per seed — wall clock
  decides how many epochs run, never what they compute.

Run to exhaustion (no deadline), the portfolio is fully deterministic
and ``allocate()`` ≡ drive-``step()``-then-``finish()``.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Sequence

import numpy as np

from repro.allocator import Allocator, AnytimeRun, BatchOutcome
from repro.cp.allocator import CPAllocator
from repro.cp.search import SearchLimits
from repro.ea.config import NSGAConfig
from repro.errors import CheckpointError, ValidationError
from repro.hybrid.nsga_allocators import (
    NSGA2Allocator,
    NSGA3Allocator,
    NSGA3CPAllocator,
    NSGA3TabuAllocator,
)
from repro.model.infrastructure import Infrastructure
from repro.model.placement import UNPLACED
from repro.model.request import Request
from repro.portfolio.incumbents import IncumbentPool
from repro.runtime.checkpoint import (
    CheckpointManager,
    RunCheckpoint,
    trajectory_key,
)
from repro.runtime.signals import shutdown_requested
from repro.tabu.search import TabuSearch
from repro.telemetry import get_registry
from repro.types import FloatArray, IntArray

__all__ = ["MEMBER_NAMES", "PortfolioAllocator", "PortfolioRun", "parse_members"]

#: Member factories accepted in a portfolio spec ("a+b+c").
MEMBER_NAMES = ("nsga3_tabu", "nsga3", "nsga2", "nsga3_cp", "cp", "tabu")


def parse_members(spec: str | Sequence[str]) -> tuple[str, ...]:
    """``"nsga3_tabu+cp+tabu"`` → ``("nsga3_tabu", "cp", "tabu")``."""
    names = (
        tuple(part.strip() for part in spec.split("+"))
        if isinstance(spec, str)
        else tuple(spec)
    )
    if not names or any(not n for n in names):
        raise ValidationError(f"empty portfolio member spec: {spec!r}")
    for name in names:
        if name not in MEMBER_NAMES:
            raise ValidationError(
                f"unknown portfolio member {name!r}; pick from {MEMBER_NAMES}"
            )
    return names


class _Member:
    """One racer lane: a named run advanced ``units`` work units per epoch."""

    def __init__(self, name: str, run, units: int) -> None:
        self.name = name
        self.run = run
        self.units = int(units)
        self.exhausted = False

    def step(self) -> None:
        if not self.exhausted:
            self.exhausted = not self.run.step(self.units)

    @property
    def evaluations(self) -> int:
        return int(self.run.evaluations)

    def best_solution(self) -> IntArray:
        getter = getattr(self.run, "best_solution", None)
        if getter is not None:
            return getter()
        return self.run.best_assignment()  # TabuRun

    def close(self) -> None:
        closer = getattr(self.run, "close", None)
        if closer is not None:
            closer()


class PortfolioRun(AnytimeRun):
    """One in-progress portfolio race; see module docstring."""

    def __init__(
        self,
        allocator: "PortfolioAllocator",
        infrastructure: Infrastructure,
        requests: Sequence[Request],
        base_usage: FloatArray | None = None,
        previous_assignment: IntArray | None = None,
    ) -> None:
        merged, owner = Allocator.merge_requests(requests)
        super().__init__(
            allocator,
            infrastructure,
            merged,
            owner,
            base_usage=base_usage,
            previous_assignment=previous_assignment,
        )
        self._requests = list(requests)
        self.pool = IncumbentPool(capacity=allocator.pool_capacity)
        self.epoch = 0
        self.exchanges = 0
        self.interrupted = False
        self._deadline: float | None = None
        self._exhausted = False
        # Same fallback EngineRun has: an injected manager wins, else a
        # configured checkpoint_dir builds one.  Members never get it —
        # the composite snapshot below is the only writer, so every
        # lane is captured at the same epoch boundary.
        self.manager = allocator.checkpoint_manager
        if self.manager is None and allocator.config.checkpoint_dir is not None:
            self.manager = CheckpointManager(allocator.config.checkpoint_dir)
        # The judge: one evaluator scoring every member's candidates
        # under identical semantics (assignment constraint on, shared
        # energy weight), so the final pick is member-agnostic.
        self._judge = self.compiled.evaluator(
            base_usage=base_usage,
            previous_assignment=previous_assignment,
            include_assignment_constraint=True,
            energy_weight=allocator.energy_weight,
        )
        self.members = [
            self._build_member(i, name)
            for i, name in enumerate(allocator.member_names)
        ]
        self._state_name = (
            f"portfolio-{self.compiled.fingerprint[:12]}-{allocator.config_key[:8]}"
        )
        if self.manager is not None:
            self._maybe_resume()

    # ------------------------------------------------------------------
    # Member construction
    # ------------------------------------------------------------------
    def _build_member(self, index: int, name: str) -> _Member:
        allocator: PortfolioAllocator = self.allocator
        if name == "tabu":
            evaluator = self.compiled.evaluator(
                base_usage=self.base_usage,
                previous_assignment=self.previous_assignment,
                include_assignment_constraint=True,
                energy_weight=allocator.energy_weight,
            )
            search = TabuSearch(
                evaluator,
                max_iterations=allocator.tabu_max_iterations,
                seed=allocator.member_seed(index),
                compiled=self.compiled,
            )
            # Deterministic fully-placed start: round-robin over hosts.
            initial = (
                np.arange(self.merged.n, dtype=np.int64)
                % self.infrastructure.m
            )
            return _Member(name, search.start(initial), allocator.tabu_step_iterations)
        member_alloc = allocator.member_allocator(index, name)
        run = member_alloc.start(
            self.infrastructure,
            self._requests,
            base_usage=self.base_usage,
            previous_assignment=self.previous_assignment,
        )
        # The CP lane meters by request; EA lanes get a multi-generation
        # slice so the champion is not starved by round-robin overhead.
        units = 1 if name == "cp" else allocator.ea_generations_per_epoch
        return _Member(name, run, units)

    # ------------------------------------------------------------------
    # The race
    # ------------------------------------------------------------------
    def step(self, budget: int = 1) -> bool:
        """Advance up to ``budget`` epochs; False = nothing left (or the
        deadline/shutdown fired)."""
        if self._exhausted:
            return False
        for _ in range(int(budget)):
            if all(m.exhausted for m in self.members):
                self._exhausted = True
                return False
            if (
                self._deadline is not None
                and time.perf_counter() >= self._deadline
            ):
                self._exhausted = True
                return False
            if self.manager is not None and shutdown_requested():
                # Consistent cut: every member stands at the same epoch
                # boundary, so the composite snapshot resumes the whole
                # race byte-identically.
                self._snapshot()
                self.interrupted = True
                self._exhausted = True
                return False
            self._epoch()
        return not all(m.exhausted for m in self.members)

    def _epoch(self) -> None:
        self.epoch += 1
        for member in self.members:
            member.step()
        finished = all(m.exhausted for m in self.members)
        # The pool absorbs every member's incumbents *every* epoch (the
        # offers are cheap and keep the pooled front — the anytime
        # deliverable — as fresh as the slowest lane); the exchange back
        # into the members runs on the cadence, plus once when the race
        # just finished.
        self._offer()
        if self.epoch % self.allocator.exchange_every == 0 or finished:
            self._distribute()
        self.evaluations = sum(m.evaluations for m in self.members)
        registry = get_registry()
        registry.count("portfolio.epochs")

    def _offer(self) -> None:
        """Collect incumbents into the pool, in member order:
        population fronts wholesale, single-solution members judged by
        the shared evaluator."""
        for member in self.members:
            front = getattr(member.run, "front", None)
            if front is not None:
                genomes, objectives = front()
                self.pool.offer(genomes, objectives, source=member.name)
                continue
            candidate = member.best_solution()
            if np.any(candidate == UNPLACED):
                continue
            objectives, violations = self._judge.assess(candidate)
            self.pool.offer(
                candidate,
                objectives.as_array(),
                violations=np.array([violations]),
                source=member.name,
            )

    def _distribute(self) -> None:
        """One deterministic incumbent exchange out of the pool: EAs
        inject the pooled front, the tabu walk jumps to the pooled pick
        when it beats its current position."""
        self.exchanges += 1
        if len(self.pool) == 0:
            get_registry().count("portfolio.exchanges", empty=True)
            return
        genomes, objectives = self.pool.front()
        zeros = np.zeros(genomes.shape[0], dtype=np.int64)
        for member in self.members:
            inject = getattr(member.run, "inject", None)
            if inject is not None and not member.exhausted:
                inject(genomes, objectives, zeros)
                continue
            reseed = getattr(member.run, "reseed", None)
            if reseed is not None and not member.exhausted:
                best = self.pool.best()
                if best is not None:
                    genome, objs = best
                    reseed(genome, (0, float(objs.sum())))
        get_registry().count("portfolio.exchanges")

    # ------------------------------------------------------------------
    # Anytime surface
    # ------------------------------------------------------------------
    def best_solution(self) -> IntArray:
        """The judged pick over the pool and every member's incumbent.

        Feasibility dominates.  Among equally-violating candidates, an
        active ceteris-paribus preference order ranks by its
        lexicographic key; with none active, the historical aggregate
        objective sum — byte-identical to the pre-market behavior.
        """
        from repro.market.preferences import active_preference

        preference = active_preference()
        candidates: list[IntArray] = []
        pooled = self.pool.best()
        if pooled is not None:
            candidates.append(pooled[0])
        candidates.extend(m.best_solution() for m in self.members)
        best = None
        best_score = None
        for candidate in candidates:
            objectives, violations = self._judge.assess(candidate)
            vector = objectives.as_array()
            if preference is not None:
                score = (int(violations), *preference.key(vector))
            else:
                score = (int(violations), float(vector.sum()))
            if best_score is None or score < best_score:
                best = candidate
                best_score = score
        return np.asarray(best, dtype=np.int64).copy()

    def best_front(self) -> FloatArray:
        """The pooled nondominated front (one judged point until the
        pool first fills)."""
        if len(self.pool):
            return self.pool.front()[1]
        return super().best_front()

    def set_deadline(self, deadline: float) -> None:
        self._deadline = float(deadline)
        for member in self.members:
            setter = getattr(member.run, "set_deadline", None)
            if setter is not None:
                setter(deadline)

    def close(self) -> None:
        for member in self.members:
            member.close()

    def _extra(self) -> dict:
        return {
            "epochs": self.epoch,
            "exchanges": self.exchanges,
            "pool_size": len(self.pool),
            "members": {
                f"{i}:{m.name}": {
                    "evaluations": m.evaluations,
                    "exhausted": m.exhausted,
                }
                for i, m in enumerate(self.members)
            },
            **({"interrupted": True} if self.interrupted else {}),
        }

    # ------------------------------------------------------------------
    # Composite checkpoint / resume
    # ------------------------------------------------------------------
    def _snapshot(self) -> None:
        """Persist the whole race at the current epoch boundary.

        EA members save their own :class:`RunCheckpoint` files (the
        same format solo runs use); the composite state holds the pool,
        the epoch cursor and the single-solution members' walks."""
        member_states: dict[str, dict] = {}
        for i, member in enumerate(self.members):
            inner = getattr(member.run, "run", None)
            if inner is not None and hasattr(inner, "checkpoint_record"):
                self.manager.save(inner.checkpoint_record())
                continue
            state = getattr(member.run, "state_dict", None)
            if state is not None:
                member_states[f"{i}:{member.name}"] = state()
        self.manager.save_state(
            self._state_name,
            "portfolio_checkpoint",
            {
                "fingerprint": self.compiled.fingerprint,
                "config_key": self.allocator.config_key,
                "epoch": self.epoch,
                "exchanges": self.exchanges,
                "pool": self.pool.state_dict(),
                "members": member_states,
                "member_exhausted": [m.exhausted for m in self.members],
            },
        )
        get_registry().count("portfolio.checkpoint.writes")

    def _maybe_resume(self) -> None:
        try:
            data = self.manager.load_state(self._state_name, "portfolio_checkpoint")
        except (CheckpointError, OSError):
            return
        if (
            data.get("fingerprint") != self.compiled.fingerprint
            or data.get("config_key") != self.allocator.config_key
        ):
            return
        self.epoch = int(data["epoch"])
        self.exchanges = int(data["exchanges"])
        self.pool.load_state_dict(data["pool"])
        for i, member in enumerate(self.members):
            inner = getattr(member.run, "run", None)
            if inner is not None and hasattr(inner, "checkpoint_record"):
                ckpt = self.manager.latest(
                    self.compiled.fingerprint, inner.config_key
                )
                if ckpt is not None:
                    member.run.run = member.run.engine.start_run(
                        inner.evaluator,
                        fingerprint=self.compiled.fingerprint,
                        resume_from=ckpt,
                    )
                continue
            payload = data["members"].get(f"{i}:{member.name}")
            if payload is not None:
                member.run.load_state_dict(payload)
        for member, exhausted in zip(self.members, data["member_exhausted"]):
            member.exhausted = bool(exhausted)
        self.evaluations = sum(m.evaluations for m in self.members)
        get_registry().count("portfolio.checkpoint.resumes")


class PortfolioAllocator(Allocator):
    """Deadline-driven portfolio of anytime allocators.

    Parameters
    ----------
    config:
        Shared EA settings; each EA member gets a deterministic
        per-member seed derived from ``config.seed``.
    members:
        ``"+"``-joined member spec (default the paper's champion, the
        exact CP solve and a standalone tabu walk).
    deadline_ms:
        Wall-clock budget for :meth:`allocate`; ``None`` races every
        member to its own budget (fully deterministic).
    exchange_every:
        Incumbent-exchange cadence in epochs.
    pool_capacity:
        Incumbent pool bound.
    tabu_step_iterations / tabu_max_iterations:
        The tabu lane's slice size and total budget.
    cp_node_budget:
        Per-request node cap for the CP lane.  Much tighter than the
        standalone :class:`CPAllocator` default: an exhaustive
        per-request search would hog the round-robin and starve the EA
        lanes of wall clock.  Node-based, so exhaustion-bounded races
        stay deterministic.
    ea_generations_per_epoch:
        Generations each EA lane advances per epoch.  EA generations
        are the cheapest work unit in the race; a multi-generation
        slice keeps the champion's share of the wall clock dominant so
        an equal-deadline portfolio stays competitive with a solo run.
    """

    name = "portfolio"

    def __init__(
        self,
        config: NSGAConfig | None = None,
        members: str | Sequence[str] = "nsga3_tabu+cp+tabu",
        deadline_ms: float | None = None,
        exchange_every: int = 4,
        pool_capacity: int = 128,
        tabu_step_iterations: int = 10,
        tabu_max_iterations: int = 2048,
        cp_node_budget: int = 400,
        ea_generations_per_epoch: int = 8,
    ) -> None:
        if exchange_every < 1:
            raise ValidationError("exchange_every must be >= 1")
        if deadline_ms is not None and deadline_ms <= 0:
            raise ValidationError("deadline_ms must be > 0 when set")
        if cp_node_budget < 1:
            raise ValidationError("cp_node_budget must be >= 1")
        if ea_generations_per_epoch < 1:
            raise ValidationError("ea_generations_per_epoch must be >= 1")
        self.config = config or NSGAConfig()
        self.energy_weight = self.config.energy_weight
        self.member_names = parse_members(members)
        self.deadline_ms = deadline_ms
        self.exchange_every = int(exchange_every)
        self.pool_capacity = int(pool_capacity)
        self.tabu_step_iterations = int(tabu_step_iterations)
        self.tabu_max_iterations = int(tabu_max_iterations)
        self.cp_node_budget = int(cp_node_budget)
        self.ea_generations_per_epoch = int(ea_generations_per_epoch)
        self._member_allocators: list[Allocator] = []

    @property
    def config_key(self) -> str:
        """Trajectory identity of the whole race: members, cadence and
        every per-lane work-unit weight (a checkpoint written under one
        slicing must not seed a race stepped under another)."""
        return trajectory_key(
            self.config,
            "portfolio/{}/x{}/g{}/t{}-{}/cp{}".format(
                "+".join(self.member_names),
                self.exchange_every,
                self.ea_generations_per_epoch,
                self.tabu_step_iterations,
                self.tabu_max_iterations,
                self.cp_node_budget,
            ),
        )

    # ------------------------------------------------------------------
    def member_seed(self, index: int) -> int:
        """Deterministic per-member seed: lanes must not share RNG
        streams, or two EAs would explore identical trajectories."""
        base = self.config.seed if self.config.seed is not None else 0
        return int(base) + 1_000 * (index + 1)

    def member_allocator(self, index: int, name: str) -> Allocator:
        """Construct (and track, for :meth:`close`) one member allocator."""
        # Per-member seed; no member-owned checkpointing — the race
        # snapshots all lanes at once (see PortfolioRun._snapshot), and
        # a member writing its own mid-epoch checkpoints would tear
        # that consistent cut.
        config = dataclasses.replace(
            self.config,
            seed=self.member_seed(index),
            checkpoint_dir=None,
            checkpoint_every=None,
        )
        if name == "nsga3_tabu":
            member: Allocator = NSGA3TabuAllocator(config)
        elif name == "nsga3":
            member = NSGA3Allocator(config)
        elif name == "nsga2":
            member = NSGA2Allocator(config)
        elif name == "nsga3_cp":
            member = NSGA3CPAllocator(config)
        elif name == "cp":
            member = CPAllocator(
                optimize=True,
                limits=SearchLimits(
                    max_nodes=self.cp_node_budget, time_limit=None
                ),
            )
        else:  # pragma: no cover - parse_members guards this
            raise ValidationError(f"unknown member {name!r}")
        # Members share the portfolio's compilation cache and worker
        # pool; they never own an engine of their own (close() would
        # otherwise leak N-1 pools).
        if self.problem_cache is None:
            from repro.engine import ProblemCache

            self.problem_cache = ProblemCache()
        member.problem_cache = self.problem_cache
        engine = self._ensure_shared_engine()
        if engine is not None:
            member.execution_engine = engine
        self._member_allocators.append(member)
        return member

    def _ensure_shared_engine(self):
        """One portfolio-level parallel engine shared by EA members."""
        if self.execution_engine is None and self.config.n_workers >= 1:
            from repro.engine.parallel import ParallelEngine

            self.execution_engine = ParallelEngine(self.config.n_workers)
        return self.execution_engine

    # ------------------------------------------------------------------
    def start(
        self,
        infrastructure: Infrastructure,
        requests: Sequence[Request],
        base_usage: FloatArray | None = None,
        previous_assignment: IntArray | None = None,
    ) -> PortfolioRun:
        """Begin an epoch-granular portfolio race."""
        return PortfolioRun(
            self,
            infrastructure,
            requests,
            base_usage=base_usage,
            previous_assignment=previous_assignment,
        )

    def allocate(
        self,
        infrastructure: Infrastructure,
        requests: Sequence[Request],
        base_usage: FloatArray | None = None,
        previous_assignment: IntArray | None = None,
    ) -> BatchOutcome:
        """Race the members (to the deadline, if one is configured)."""
        run = self.start(
            infrastructure,
            requests,
            base_usage=base_usage,
            previous_assignment=previous_assignment,
        )
        if self.deadline_ms is not None:
            run.set_deadline(time.perf_counter() + self.deadline_ms / 1000.0)
        try:
            while run.step():
                pass
            return run.finish()
        finally:
            run.close()

    def close(self) -> None:
        """Release every member allocator's resources, then our own."""
        for member in self._member_allocators:
            member.close()
        self._member_allocators.clear()
        super().close()
