"""Anytime solver portfolio: deadline-driven races over shared incumbents.

* :class:`IncumbentPool` — the bounded Pareto archive members trade
  proven placements through.
* :class:`PortfolioAllocator` / :class:`PortfolioRun` — the round-robin
  racer over the anytime contract (docs/PORTFOLIO.md).
"""

from repro.portfolio.incumbents import IncumbentPool
from repro.portfolio.racer import (
    MEMBER_NAMES,
    PortfolioAllocator,
    PortfolioRun,
    parse_members,
)

__all__ = [
    "IncumbentPool",
    "MEMBER_NAMES",
    "PortfolioAllocator",
    "PortfolioRun",
    "parse_members",
]
