"""Shared incumbent pool for the allocator portfolio.

The portfolio races heterogeneous members — population EAs, a
single-solution tabu walk, a sequential exact CP solve — and the pool
is where their progress meets: a :class:`~repro.ea.archive.ParetoArchive`
of *proven* placements that any member may read at exchange epochs (EA
populations inject it, the tabu walk reseeds from it).

Only fully-placed, violation-free solutions are admitted.  That rule is
what makes the pool's objective vectors comparable across members:
objective values do not depend on which constraint binding a member
evaluated under (assignment constraint on or off), whereas a partially
placed genome would score differently per member.  Rejection is not a
loss — an infeasible "incumbent" is useless to seed an exact method or
to report to a consumer anyway.
"""

from __future__ import annotations

import numpy as np

from repro.ea.archive import ParetoArchive
from repro.model.placement import UNPLACED
from repro.telemetry import get_registry
from repro.types import FloatArray, IntArray

__all__ = ["IncumbentPool"]


class IncumbentPool:
    """Bounded Pareto archive shared by portfolio members.

    Parameters
    ----------
    capacity:
        Maximum incumbents retained (crowding-based eviction beyond it,
        see :class:`~repro.ea.archive.ParetoArchive`).
    """

    def __init__(self, capacity: int = 128) -> None:
        self.archive = ParetoArchive(capacity=capacity)
        self.offers = 0
        self.accepted = 0

    def __len__(self) -> int:
        return len(self.archive)

    # ------------------------------------------------------------------
    def offer(
        self,
        genomes: IntArray,
        objectives: FloatArray,
        violations: IntArray | None = None,
        source: str = "",
    ) -> int:
        """Offer solutions; returns how many entered the archive.

        Rows with any unplaced gene, or a nonzero entry in
        ``violations`` (when given), are silently refused — the pool
        trades only in complete feasible placements.  Deterministic:
        rows are considered in order, no RNG.
        """
        genomes = np.asarray(genomes, dtype=np.int64)
        if genomes.size == 0:
            return 0
        if genomes.ndim == 1:
            genomes = genomes[None, :]
        objectives = np.asarray(objectives, dtype=np.float64)
        if objectives.ndim == 1:
            objectives = objectives[None, :]
        if violations is not None:
            violations = np.atleast_1d(np.asarray(violations, dtype=np.int64))

        entered = 0
        for i in range(genomes.shape[0]):
            self.offers += 1
            if np.any(genomes[i] == UNPLACED):
                continue
            if violations is not None and violations[i] != 0:
                continue
            if self.archive.add(genomes[i], objectives[i]):
                entered += 1
        self.accepted += entered
        registry = get_registry()
        registry.count("portfolio.pool.offers", genomes.shape[0], source=source)
        if entered:
            registry.count("portfolio.pool.accepted", entered, source=source)
        registry.gauge("portfolio.pool.size", len(self.archive))
        return entered

    # ------------------------------------------------------------------
    def front(self) -> tuple[IntArray, FloatArray]:
        """(genomes, objectives) of the pooled nondominated set."""
        return self.archive.genomes, self.archive.objectives

    def best(self, preference=None) -> tuple[IntArray, FloatArray] | None:
        """The single-solution pick over the pool, or ``None``.

        Routed through the preference layer: an explicit (or process-
        wide active) ceteris-paribus order decides; with none, the
        paper's ideal-point pick — byte-identical to the pre-market
        behavior (see :mod:`repro.market.preferences`).
        """
        return self.archive.best(preference)

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-able snapshot (for the portfolio's composite checkpoint)."""
        return {
            "capacity": self.archive.capacity,
            "genomes": [g.tolist() for g in self.archive._genomes],
            "objectives": [o.tolist() for o in self.archive._objectives],
            "offers": self.offers,
            "accepted": self.accepted,
        }

    def load_state_dict(self, payload: dict) -> None:
        """Restore a :meth:`state_dict` snapshot byte-identically.

        Entries are reloaded verbatim (not re-offered): the archive's
        insertion order is part of its deterministic identity.
        """
        self.archive = ParetoArchive(capacity=int(payload["capacity"]))
        self.archive._genomes = [
            np.asarray(g, dtype=np.int64) for g in payload["genomes"]
        ]
        self.archive._objectives = [
            np.asarray(o, dtype=np.float64) for o in payload["objectives"]
        ]
        self.offers = int(payload["offers"])
        self.accepted = int(payload["accepted"])
