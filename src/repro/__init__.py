"""repro — Consumer-and-provider-oriented IaaS resource allocation.

A from-scratch reproduction of Ecarot, Zeghlache & Brandily,
"Consumer-and-Provider-oriented efficient IaaS resource allocation"
(IEEE IPDPSW 2017): the matrix allocation model of Section III, the
NSGA-III + tabu-search hybrid of Section IV, every baseline it is
compared against, and the evaluation harness regenerating the paper's
tables and figures.

Quickstart::

    from repro import (
        Infrastructure, Request, PlacementGroup, PlacementRule,
        NSGA3TabuAllocator,
    )

    infra = Infrastructure.homogeneous(
        datacenters=2, servers_per_datacenter=20,
        capacity=[32, 128, 2000],
    )
    request = Request(...)          # demands + affinity rules
    outcome = NSGA3TabuAllocator().allocate(infra, [request])
    print(outcome.assignment, outcome.rejection_rate)

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-versus-measured comparison.
"""

from repro import service, telemetry, verify
from repro.allocator import Allocator, AnytimeRun, BatchOutcome
from repro.baselines import (
    BestFitAllocator,
    FirstFitAllocator,
    RandomAllocator,
    RoundRobinAllocator,
    WorstFitAllocator,
)
from repro.cp import CPAllocator, CPSolver, SearchLimits
from repro.ea import NSGA2, NSGA3, NSGAConfig
from repro.engine import (
    ChunkedPopulationEvaluator,
    CompiledProblem,
    IncrementalEvaluator,
    MoveScore,
    ParallelEngine,
    ParityError,
    ParityReport,
    ProblemCache,
)
from repro.hybrid import (
    NSGA2Allocator,
    NSGA3Allocator,
    NSGA3CPAllocator,
    NSGA3TabuAllocator,
)
from repro.lp import solve_ilp
from repro.model import (
    AttributeSchema,
    Datacenter,
    Infrastructure,
    Placement,
    PlacementGroup,
    PlatformState,
    Request,
    Server,
    VirtualResource,
)
from repro.objectives import EnergyCost, PopulationEvaluator
from repro.portfolio import IncumbentPool, PortfolioAllocator
from repro.runtime import (
    CheckpointManager,
    GracefulShutdown,
    RunCheckpoint,
    shutdown_requested,
)
from repro.scheduler import TimeWindowScheduler
from repro.tabu import TabuRepair, TabuSearch
from repro.topology import FabricSpec, SpineLeafFabric
from repro.types import AlgorithmKind, ConstraintHandling, PlacementRule
from repro.workloads import Scenario, ScenarioGenerator, ScenarioSpec

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core interfaces
    "Allocator",
    "AnytimeRun",
    "BatchOutcome",
    # model
    "AttributeSchema",
    "Server",
    "Datacenter",
    "VirtualResource",
    "Infrastructure",
    "Request",
    "PlacementGroup",
    "Placement",
    "PlatformState",
    "PlacementRule",
    "AlgorithmKind",
    "ConstraintHandling",
    # algorithms
    "RoundRobinAllocator",
    "FirstFitAllocator",
    "BestFitAllocator",
    "WorstFitAllocator",
    "RandomAllocator",
    "CPAllocator",
    "CPSolver",
    "SearchLimits",
    "NSGA2",
    "NSGA3",
    "NSGAConfig",
    "NSGA2Allocator",
    "NSGA3Allocator",
    "NSGA3TabuAllocator",
    "NSGA3CPAllocator",
    "TabuRepair",
    "TabuSearch",
    "solve_ilp",
    "PopulationEvaluator",
    "EnergyCost",
    # anytime portfolio
    "PortfolioAllocator",
    "IncumbentPool",
    # engine
    "CompiledProblem",
    "ProblemCache",
    "ParallelEngine",
    "ChunkedPopulationEvaluator",
    "IncrementalEvaluator",
    "MoveScore",
    "ParityError",
    "ParityReport",
    # substrates
    "FabricSpec",
    "SpineLeafFabric",
    "TimeWindowScheduler",
    # workloads
    "Scenario",
    "ScenarioGenerator",
    "ScenarioSpec",
    # runtime (checkpoint/resume, graceful shutdown)
    "CheckpointManager",
    "RunCheckpoint",
    "GracefulShutdown",
    "shutdown_requested",
    # observability
    "telemetry",
    # conformance
    "verify",
    # the always-on allocation control plane
    "service",
]
