"""Constraint system: Eq. 4/16 (capacity), Eq. 5/17 (assignment) and the
four affinity/anti-affinity relationships of Eq. 9-12.

Every constraint implements two evaluation paths:

* ``violations(assignment)`` — violation count for one genome;
* ``batch_violations(population)`` — a vectorized count for a whole
  population matrix of shape ``(pop, n)``, which is what the EA layer
  calls every generation.

:class:`ConstraintSet` bundles the constraints implied by an
(infrastructure, request) pair and exposes feasibility tests, total
violation counts and per-constraint breakdowns — the quantities behind
the paper's Figure 10.
"""

from repro.constraints.base import Constraint
from repro.constraints.capacity import CapacityConstraint
from repro.constraints.assignment import AssignmentConstraint
from repro.constraints.affinity import (
    SameDatacenterConstraint,
    SameServerConstraint,
)
from repro.constraints.anti_affinity import (
    DifferentDatacentersConstraint,
    DifferentServersConstraint,
)
from repro.constraints.load_cap import LoadCapConstraint
from repro.constraints.registry import ConstraintSet, make_group_constraint

__all__ = [
    "Constraint",
    "CapacityConstraint",
    "AssignmentConstraint",
    "SameDatacenterConstraint",
    "SameServerConstraint",
    "DifferentDatacentersConstraint",
    "DifferentServersConstraint",
    "LoadCapConstraint",
    "ConstraintSet",
    "make_group_constraint",
]
