"""Optional hard load cap: keep every server below its QoS knee.

Eq. 24 makes QoS degradation a *soft* phenomenon priced by the downtime
objective.  Some providers instead refuse to operate past the knee
(strict SLA mode): the load of Eq. 25 must satisfy ``L_jl <= LM_jl``
outright.  :class:`LoadCapConstraint` expresses that as a capacity-style
constraint with the shrunken limit ``LM * P`` (note: the *raw* capacity
P, because Eq. 25's load denominator is P, not P*F).

Enabled via ``ConstraintSet(..., qos_strict=True)``; off by default to
match the paper.
"""

from __future__ import annotations

import numpy as np

from repro.constraints.base import Constraint
from repro.constraints.capacity import CapacityConstraint
from repro.errors import DimensionError
from repro.model.infrastructure import Infrastructure
from repro.types import FloatArray, IntArray

__all__ = ["LoadCapConstraint"]


class LoadCapConstraint(Constraint):
    """Hard Eq. 25 cap: placed demand <= LM * P per (server, attribute).

    Internally delegates to a :class:`CapacityConstraint` whose limit
    matrix is the knee line, so the vectorized batch paths are shared.
    """

    name = "load_cap"

    def __init__(
        self,
        infrastructure: Infrastructure,
        demand: FloatArray,
        base_usage: FloatArray | None = None,
    ) -> None:
        self.infrastructure = infrastructure
        knee_limit = infrastructure.max_load * infrastructure.capacity
        if base_usage is not None:
            base_usage = np.ascontiguousarray(base_usage, dtype=np.float64)
            if base_usage.shape != knee_limit.shape:
                raise DimensionError(
                    f"base_usage shape {base_usage.shape}, "
                    f"expected {knee_limit.shape}"
                )
            knee_limit = knee_limit - base_usage
        # Reuse the capacity machinery with the knee as the limit.
        self._inner = CapacityConstraint(infrastructure, demand)
        self._inner.retarget(knee_limit)

    def violations(self, assignment: IntArray) -> int:
        """Count (server, resource) cells exceeding the strict load cap."""
        return self._inner.violations(assignment)

    def batch_violations(self, population: IntArray) -> IntArray:
        """Vectorized :meth:`violations` over a population matrix."""
        return self._inner.batch_violations(population)

    def overloaded_servers(self, assignment: IntArray) -> IntArray:
        """Servers past their knee (for repair integration)."""
        return self._inner.overloaded_servers(assignment)
