"""Co-localization constraints: Eq. 9 (same datacenter), Eq. 10 (same server).

A co-localization group is satisfied when every *placed* member of the
group resolves to a single location (server or datacenter).  Violations
count the number of extra distinct locations: a group split across 3
servers when it must share one counts 2 violations, so repair progress
is visible to the search.  Unplaced members are the assignment
constraint's concern and do not double-count here.
"""

from __future__ import annotations

import numpy as np

from repro.constraints.base import Constraint
from repro.errors import ConstraintError
from repro.model.infrastructure import Infrastructure
from repro.model.placement import UNPLACED
from repro.types import IntArray

__all__ = ["SameServerConstraint", "SameDatacenterConstraint"]


def _distinct_per_row(values: IntArray) -> IntArray:
    """Count distinct values per row of a small 2-D int array."""
    ordered = np.sort(values, axis=1)
    changes = ordered[:, 1:] != ordered[:, :-1]
    return 1 + changes.sum(axis=1)


class _GroupConstraint(Constraint):
    """Shared plumbing for group-membership constraints."""

    def __init__(self, members: tuple[int, ...]) -> None:
        members = tuple(int(k) for k in members)
        if len(members) < 2:
            raise ConstraintError(f"group needs >= 2 members, got {members}")
        if len(set(members)) != len(members):
            raise ConstraintError(f"duplicate members in {members}")
        self.members = members
        self._idx = np.asarray(members, dtype=np.int64)

    def _member_genes(self, assignment: IntArray) -> IntArray:
        assignment = np.asarray(assignment, dtype=np.int64)
        if assignment.ndim != 1:
            raise ValueError("assignment must be a 1-D genome")
        if self._idx.max() >= assignment.shape[0]:
            raise ConstraintError(
                f"group member {int(self._idx.max())} outside genome of "
                f"length {assignment.shape[0]}"
            )
        return assignment[self._idx]


class SameServerConstraint(_GroupConstraint):
    """Eq. 10: all group members on one physical server."""

    name = "same_server"

    def violations(self, assignment: IntArray) -> int:
        """Count violated same-server pairs in one assignment."""
        genes = self._member_genes(assignment)
        placed = genes[genes != UNPLACED]
        if placed.size <= 1:
            return 0
        return int(np.unique(placed).size - 1)

    def batch_violations(self, population: IntArray) -> IntArray:
        """Vectorized :meth:`violations` over a population matrix."""
        population = np.asarray(population, dtype=np.int64)
        genes = population[:, self._idx]
        if np.any(genes == UNPLACED):
            return super().batch_violations(population)
        return (_distinct_per_row(genes) - 1).astype(np.int64)


class SameDatacenterConstraint(_GroupConstraint):
    """Eq. 9: all group members inside one datacenter."""

    name = "same_datacenter"

    def __init__(
        self, members: tuple[int, ...], infrastructure: Infrastructure
    ) -> None:
        super().__init__(members)
        self.infrastructure = infrastructure

    def _to_datacenters(self, genes: IntArray) -> IntArray:
        dc = np.full(genes.shape, UNPLACED, dtype=np.int64)
        mask = genes != UNPLACED
        dc[mask] = self.infrastructure.server_datacenter[genes[mask]]
        return dc

    def violations(self, assignment: IntArray) -> int:
        """Count violated same-datacenter pairs in one assignment."""
        dcs = self._to_datacenters(self._member_genes(assignment))
        placed = dcs[dcs != UNPLACED]
        if placed.size <= 1:
            return 0
        return int(np.unique(placed).size - 1)

    def batch_violations(self, population: IntArray) -> IntArray:
        """Vectorized :meth:`violations` over a population matrix."""
        population = np.asarray(population, dtype=np.int64)
        genes = population[:, self._idx]
        if np.any(genes == UNPLACED):
            return super().batch_violations(population)
        dcs = self.infrastructure.server_datacenter[genes]
        return (_distinct_per_row(dcs) - 1).astype(np.int64)
