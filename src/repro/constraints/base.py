"""Abstract constraint interface.

Genomes are integer vectors of length n with values in ``[0, m)`` or
:data:`~repro.model.placement.UNPLACED`.  Violation counts are integers
(>= 0); a genome is feasible for a constraint iff its count is zero.
The default :meth:`Constraint.batch_violations` falls back to a Python
loop; concrete constraints override it with vectorized NumPy code.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.types import IntArray

__all__ = ["Constraint"]


class Constraint(abc.ABC):
    """One hard constraint of the allocation model."""

    #: Short machine-readable identifier used in breakdown reports.
    name: str = "constraint"

    @abc.abstractmethod
    def violations(self, assignment: IntArray) -> int:
        """Number of violations in one genome (0 means satisfied)."""

    def batch_violations(self, population: IntArray) -> IntArray:
        """Violation count per row of ``population`` (shape (pop, n)).

        Subclasses override with vectorized implementations; this
        generic fallback exists so new constraint types are correct
        before they are fast.
        """
        population = np.asarray(population)
        if population.ndim != 2:
            raise ValueError(
                f"population must be 2-D (pop, n), got shape {population.shape}"
            )
        return np.array(
            [self.violations(row) for row in population], dtype=np.int64
        )

    def is_satisfied(self, assignment: IntArray) -> bool:
        """Convenience: True iff ``violations(assignment) == 0``."""
        return self.violations(assignment) == 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
