"""Provider-scoped constraints for multi-cloud brokered placements.

Three market-layer rules on top of the paper's four placement rules
(which are provider-blind):

* :class:`SameProviderConstraint` — QoS co-location: every placed
  member of a group must land inside one provider's estate.  Chatty
  tiers (the MORPHOSYS-style latency contract) cannot straddle a
  cross-provider WAN link.
* :class:`ProviderSpreadConstraint` — availability separation: no two
  members of a group may share a provider, so a whole-provider outage
  cannot take the group down.
* :class:`ProviderQuotaConstraint` — provider-scoped capacity: a cap on
  the resources (VM count) a brokered plan may consume per provider —
  the contractual commitment a broker holds with each provider,
  distinct from physical server capacity.

These are plain :class:`~repro.constraints.base.Constraint` objects the
:class:`~repro.market.broker.BrokeredAllocator` (and anyone else)
scores alongside an instance's
:class:`~repro.constraints.registry.ConstraintSet`; they deliberately
do **not** extend :class:`~repro.types.PlacementRule`, so the paper's
four-rule kernel/CP/tabu dispatch paths stay untouched and the
single-provider pipeline remains byte-identical.
"""

from __future__ import annotations

import numpy as np

from repro.constraints.affinity import _GroupConstraint, _distinct_per_row
from repro.constraints.base import Constraint
from repro.errors import ConstraintError
from repro.model.placement import UNPLACED
from repro.types import IntArray

__all__ = [
    "SameProviderConstraint",
    "ProviderSpreadConstraint",
    "ProviderQuotaConstraint",
]


class SameProviderConstraint(_GroupConstraint):
    """QoS co-location: all placed group members inside one provider."""

    name = "same_provider"

    def __init__(self, members: tuple[int, ...], server_provider: IntArray) -> None:
        super().__init__(members)
        self._provider = np.asarray(server_provider, dtype=np.int64)

    def violations(self, assignment: IntArray) -> int:
        genes = self._member_genes(assignment)
        placed = genes[genes != UNPLACED]
        if placed.size <= 1:
            return 0
        return int(np.unique(self._provider[placed]).size - 1)

    def batch_violations(self, population: IntArray) -> IntArray:
        population = np.asarray(population, dtype=np.int64)
        genes = population[:, self._idx]
        if np.any(genes == UNPLACED):
            return super().batch_violations(population)
        return (_distinct_per_row(self._provider[genes]) - 1).astype(np.int64)


class ProviderSpreadConstraint(_GroupConstraint):
    """Availability separation: no two group members share a provider."""

    name = "different_providers"

    def __init__(self, members: tuple[int, ...], server_provider: IntArray) -> None:
        super().__init__(members)
        self._provider = np.asarray(server_provider, dtype=np.int64)

    def violations(self, assignment: IntArray) -> int:
        genes = self._member_genes(assignment)
        placed = genes[genes != UNPLACED]
        if placed.size <= 1:
            return 0
        return int(placed.size - np.unique(self._provider[placed]).size)

    def batch_violations(self, population: IntArray) -> IntArray:
        population = np.asarray(population, dtype=np.int64)
        genes = population[:, self._idx]
        if np.any(genes == UNPLACED):
            return super().batch_violations(population)
        distinct = _distinct_per_row(self._provider[genes])
        return (genes.shape[1] - distinct).astype(np.int64)


class ProviderQuotaConstraint(Constraint):
    """Provider-scoped capacity: at most ``quota[k]`` VMs per provider.

    Violations count the VMs placed beyond each provider's quota, so
    repair progress is visible one eviction at a time.  A negative
    quota entry means *unlimited* for that provider.
    """

    name = "provider_quota"

    def __init__(self, server_provider: IntArray, quotas) -> None:
        self._provider = np.asarray(server_provider, dtype=np.int64)
        self._quotas = np.asarray(quotas, dtype=np.int64)
        p = int(self._provider.max()) + 1 if self._provider.size else 0
        if self._quotas.ndim != 1 or self._quotas.shape[0] != p:
            raise ConstraintError(
                f"quota vector has shape {self._quotas.shape}, expected ({p},)"
            )

    def violations(self, assignment: IntArray) -> int:
        assignment = np.asarray(assignment, dtype=np.int64)
        placed = assignment[assignment != UNPLACED]
        if placed.size == 0:
            return 0
        counts = np.bincount(
            self._provider[placed], minlength=self._quotas.shape[0]
        )
        capped = self._quotas >= 0
        excess = np.maximum(counts[capped] - self._quotas[capped], 0)
        return int(excess.sum())

    def batch_violations(self, population: IntArray) -> IntArray:
        population = np.asarray(population, dtype=np.int64)
        pop, _ = population.shape
        out = np.empty(pop, dtype=np.int64)
        for i in range(pop):
            out[i] = self.violations(population[i])
        return out
