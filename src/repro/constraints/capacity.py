"""The provider capacity limit, Eq. 4 / Eq. 16.

For every datacenter i, server j and attribute l::

    sum_k C_kl * X_ijk  <=  P_jl * F_jl

i.e. the demand packed onto a server, per attribute, may not exceed its
capacity once the virtual-to-physical overhead factor F is applied.
When the platform already hosts committed tenants, their usage is a
fixed baseline that shrinks the right-hand side.

A violation is counted per (server, attribute) cell that overflows —
this is the granularity the tabu repair works at ("servers where
constraints are exceeded", Fig. 5).
"""

from __future__ import annotations

import numpy as np

from repro.constraints.base import Constraint
from repro.errors import DimensionError
from repro.model.infrastructure import Infrastructure
from repro.model.placement import UNPLACED
from repro.types import BoolArray, FloatArray, IntArray

__all__ = ["CapacityConstraint"]


class CapacityConstraint(Constraint):
    """Vectorized Eq. 4 checker.

    Parameters
    ----------
    infrastructure:
        The provider estate (supplies P, F and m, h).
    demand:
        The request's C matrix, shape (n, h).
    base_usage:
        Optional committed usage matrix (m, h) from earlier scheduling
        windows; defaults to an empty platform.
    tolerance:
        Relative slack for float comparisons (overflow must exceed
        capacity by more than ``tolerance`` to count).
    """

    name = "capacity"

    def __init__(
        self,
        infrastructure: Infrastructure,
        demand: FloatArray,
        base_usage: FloatArray | None = None,
        tolerance: float = 1e-9,
    ) -> None:
        self.infrastructure = infrastructure
        demand = np.ascontiguousarray(demand, dtype=np.float64)
        if demand.ndim != 2 or demand.shape[1] != infrastructure.h:
            raise DimensionError(
                f"demand shape {demand.shape} incompatible with h={infrastructure.h}"
            )
        self.demand = demand
        effective = infrastructure.effective_capacity
        if base_usage is not None:
            base_usage = np.ascontiguousarray(base_usage, dtype=np.float64)
            if base_usage.shape != effective.shape:
                raise DimensionError(
                    f"base_usage shape {base_usage.shape}, expected {effective.shape}"
                )
            effective = effective - base_usage
        #: Residual usable capacity per (server, attribute).
        self.limit: FloatArray = effective
        self.tolerance = float(tolerance)
        self._slack = self.tolerance * np.maximum(1.0, np.abs(self.limit))

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of resources in the request."""
        return self.demand.shape[0]

    def server_usage(self, assignment: IntArray) -> FloatArray:
        """Usage matrix (m, h) induced by one genome (unplaced genes skipped)."""
        assignment = np.asarray(assignment, dtype=np.int64)
        usage = np.zeros_like(self.limit)
        mask = assignment != UNPLACED
        np.add.at(usage, assignment[mask], self.demand[mask])
        return usage

    def overloaded_cells(self, assignment: IntArray) -> BoolArray:
        """Boolean (m, h) mask of capacity cells exceeded by the genome."""
        usage = self.server_usage(assignment)
        return usage > self.limit + self._slack

    def overloaded_servers(self, assignment: IntArray) -> IntArray:
        """Indices of servers with at least one exceeded attribute.

        This is ``exceedingDetection`` from the paper's repair
        procedure (Fig. 5, line 2).
        """
        return np.flatnonzero(self.overloaded_cells(assignment).any(axis=1)).astype(
            np.int64
        )

    def violations(self, assignment: IntArray) -> int:
        """Count overloaded (server, resource) cells (Eq. 4/16)."""
        return int(self.overloaded_cells(assignment).sum())

    # ------------------------------------------------------------------
    def batch_usage(self, population: IntArray) -> FloatArray:
        """Usage tensor (pop, m, h) for a whole population.

        Implemented with per-attribute ``bincount`` over flattened
        (individual, server) indices — one pass over the population per
        attribute, no Python-level loop over individuals.
        """
        population = np.asarray(population, dtype=np.int64)
        pop, n = population.shape
        if n != self.n:
            raise DimensionError(
                f"population genome length {n} != request size {self.n}"
            )
        m, h = self.limit.shape
        mask = population != UNPLACED
        # Route unplaced genes to a scratch bucket at index m.
        servers = np.where(mask, population, m)
        flat = (np.arange(pop)[:, None] * (m + 1) + servers).ravel()
        usage = np.empty((pop, m, h))
        for l in range(h):
            weights = np.broadcast_to(self.demand[:, l], (pop, n)).ravel()
            counts = np.bincount(flat, weights=weights, minlength=pop * (m + 1))
            usage[:, :, l] = counts.reshape(pop, m + 1)[:, :m]
        return usage

    def batch_violations(self, population: IntArray) -> IntArray:
        """Vectorized :meth:`violations` over a population matrix."""
        usage = self.batch_usage(population)
        over = usage > self.limit[None, :, :] + self._slack[None, :, :]
        return over.sum(axis=(1, 2)).astype(np.int64)

    # ------------------------------------------------------------------
    def fits(self, assignment: IntArray, resource: int, server: int) -> bool:
        """Would moving ``resource`` to ``server`` keep that server legal?

        This is the ``isValidAllocation`` predicate from the paper's
        neighbour search (Fig. 6, line 3): server capacity only, the
        affinity rules are checked by their own constraints.
        """
        assignment = np.asarray(assignment, dtype=np.int64)
        others = (assignment == server)
        others[resource] = False
        load = self.demand[others].sum(axis=0) + self.demand[resource]
        return bool(np.all(load <= self.limit[server] + self._slack[server]))
