"""The provider capacity limit, Eq. 4 / Eq. 16.

For every datacenter i, server j and attribute l::

    sum_k C_kl * X_ijk  <=  P_jl * F_jl

i.e. the demand packed onto a server, per attribute, may not exceed its
capacity once the virtual-to-physical overhead factor F is applied.
When the platform already hosts committed tenants, their usage is a
fixed baseline that shrinks the right-hand side.

A violation is counted per (server, attribute) cell that overflows —
this is the granularity the tabu repair works at ("servers where
constraints are exceeded", Fig. 5).
"""

from __future__ import annotations

import numpy as np

from repro.constraints.base import Constraint
from repro.engine.kernels import active_kernel
from repro.errors import DimensionError
from repro.model.infrastructure import Infrastructure
from repro.model.placement import UNPLACED
from repro.types import BoolArray, FloatArray, IntArray

__all__ = ["CapacityConstraint"]


class CapacityConstraint(Constraint):
    """Vectorized Eq. 4 checker.

    Parameters
    ----------
    infrastructure:
        The provider estate (supplies P, F and m, h).
    demand:
        The request's C matrix, shape (n, h).
    base_usage:
        Optional committed usage matrix (m, h) from earlier scheduling
        windows; defaults to an empty platform.
    tolerance:
        Relative slack for float comparisons (overflow must exceed
        capacity by more than ``tolerance`` to count).
    """

    name = "capacity"

    def __init__(
        self,
        infrastructure: Infrastructure,
        demand: FloatArray,
        base_usage: FloatArray | None = None,
        tolerance: float = 1e-9,
    ) -> None:
        self.infrastructure = infrastructure
        demand = np.ascontiguousarray(demand, dtype=np.float64)
        if demand.ndim != 2 or demand.shape[1] != infrastructure.h:
            raise DimensionError(
                f"demand shape {demand.shape} incompatible with h={infrastructure.h}"
            )
        self.demand = demand
        effective = infrastructure.effective_capacity
        if base_usage is not None:
            base_usage = np.ascontiguousarray(base_usage, dtype=np.float64)
            if base_usage.shape != effective.shape:
                raise DimensionError(
                    f"base_usage shape {base_usage.shape}, expected {effective.shape}"
                )
            effective = effective - base_usage
        #: Residual usable capacity per (server, attribute).
        self.limit: FloatArray = effective
        self.tolerance = float(tolerance)
        self._slack = self.tolerance * np.maximum(1.0, np.abs(self.limit))
        # Precomputed overflow threshold: the exact floats every
        # ``limit + _slack`` comparison used to compute per call.
        self._threshold = self.limit + self._slack

    def retarget(self, limit: FloatArray) -> None:
        """Swap the limit matrix, keeping slack/threshold consistent.

        The precomputed ``_threshold`` must never go stale relative to
        ``limit`` — wrappers that repurpose the capacity machinery with
        a different right-hand side (:class:`LoadCapConstraint`) go
        through here instead of assigning ``limit`` directly.
        """
        limit = np.ascontiguousarray(limit, dtype=np.float64)
        if limit.shape != self.limit.shape:
            raise DimensionError(
                f"limit shape {limit.shape}, expected {self.limit.shape}"
            )
        self.limit = limit
        self._slack = self.tolerance * np.maximum(1.0, np.abs(limit))
        self._threshold = self.limit + self._slack

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of resources in the request."""
        return self.demand.shape[0]

    def server_usage(self, assignment: IntArray) -> FloatArray:
        """Usage matrix (m, h) induced by one genome (unplaced genes skipped)."""
        assignment = np.asarray(assignment, dtype=np.int64)
        mask = assignment != UNPLACED
        return active_kernel().scatter_usage(
            assignment[mask], self.demand[mask], self.limit.shape[0]
        )

    def overloaded_cells(self, assignment: IntArray) -> BoolArray:
        """Boolean (m, h) mask of capacity cells exceeded by the genome."""
        usage = self.server_usage(assignment)
        return usage > self._threshold

    def overloaded_servers(self, assignment: IntArray) -> IntArray:
        """Indices of servers with at least one exceeded attribute.

        This is ``exceedingDetection`` from the paper's repair
        procedure (Fig. 5, line 2).
        """
        return np.flatnonzero(self.overloaded_cells(assignment).any(axis=1)).astype(
            np.int64
        )

    def violations(self, assignment: IntArray) -> int:
        """Count overloaded (server, resource) cells (Eq. 4/16)."""
        return int(self.overloaded_cells(assignment).sum())

    # ------------------------------------------------------------------
    def batch_usage(self, population: IntArray) -> FloatArray:
        """Usage tensor (pop, m, h) for a whole population.

        Dispatches to the active kernel backend (flat-index bincount
        tiles on the numpy backend, ``prange`` scatter on numba) — no
        Python-level loop over individuals on any backend.
        """
        population = np.asarray(population, dtype=np.int64)
        pop, n = population.shape
        if n != self.n:
            raise DimensionError(
                f"population genome length {n} != request size {self.n}"
            )
        return active_kernel().batch_usage(
            population, self.demand, self.limit.shape[0]
        )

    def batch_violations(self, population: IntArray) -> IntArray:
        """Vectorized :meth:`violations` over a population matrix."""
        usage = self.batch_usage(population)
        return active_kernel().batch_over_counts(usage, self._threshold)

    # ------------------------------------------------------------------
    def fits(self, assignment: IntArray, resource: int, server: int) -> bool:
        """Would moving ``resource`` to ``server`` keep that server legal?

        This is the ``isValidAllocation`` predicate from the paper's
        neighbour search (Fig. 6, line 3): server capacity only, the
        affinity rules are checked by their own constraints.
        """
        assignment = np.asarray(assignment, dtype=np.int64)
        others = (assignment == server)
        others[resource] = False
        load = self.demand[others].sum(axis=0) + self.demand[resource]
        return bool(np.all(load <= self._threshold[server]))
