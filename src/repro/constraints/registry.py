"""ConstraintSet: everything an (infrastructure, request) pair implies.

The paper evaluates "each constraint (capacities constraint, affinity
and anti-affinity constraints) ... during the evaluation process"
(Fig. 3).  :class:`ConstraintSet` is that evaluation step: it owns the
capacity constraint, one group constraint per consumer placement rule,
and (optionally) the assignment constraint, and produces per-individual
and per-population violation counts plus the per-constraint breakdown
reported in Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constraints.affinity import (
    SameDatacenterConstraint,
    SameServerConstraint,
)
from repro.constraints.anti_affinity import (
    DifferentDatacentersConstraint,
    DifferentServersConstraint,
)
from repro.constraints.assignment import AssignmentConstraint
from repro.constraints.base import Constraint
from repro.constraints.capacity import CapacityConstraint
from repro.errors import UnknownRuleError
from repro.model.infrastructure import Infrastructure
from repro.model.request import PlacementGroup, Request
from repro.types import FloatArray, IntArray, PlacementRule

__all__ = ["ConstraintSet", "make_group_constraint"]


def make_group_constraint(
    group: PlacementGroup, infrastructure: Infrastructure
) -> Constraint:
    """Instantiate the concrete constraint for one placement rule."""
    rule = group.rule
    if rule is PlacementRule.SAME_SERVER:
        return SameServerConstraint(group.members)
    if rule is PlacementRule.SAME_DATACENTER:
        return SameDatacenterConstraint(group.members, infrastructure)
    if rule is PlacementRule.DIFFERENT_SERVERS:
        return DifferentServersConstraint(group.members)
    if rule is PlacementRule.DIFFERENT_DATACENTERS:
        return DifferentDatacentersConstraint(group.members, infrastructure)
    raise UnknownRuleError(f"unhandled placement rule: {rule!r}")


@dataclass
class ConstraintSet:
    """All hard constraints of one allocation problem instance.

    Parameters
    ----------
    infrastructure, request:
        The problem instance.
    base_usage:
        Committed usage from earlier windows (shrinks capacity).
    include_assignment:
        Whether to include Eq. 5's unplaced-gene check.  EAs evolve
        fully placed genomes, so they usually disable it; greedy
        algorithms that may leave resources unplaced keep it on.
    """

    infrastructure: Infrastructure
    request: Request
    base_usage: FloatArray | None = None
    include_assignment: bool = True
    qos_strict: bool = False
    #: Group constraint objects compiled once per instance (see
    #: :class:`repro.engine.CompiledProblem`); groups are stateless
    #: w.r.t. per-window dynamics, so sharing them is safe.
    prebuilt_groups: tuple[Constraint, ...] | None = None

    def __post_init__(self) -> None:
        self.capacity = CapacityConstraint(
            self.infrastructure, self.request.demand, base_usage=self.base_usage
        )
        if self.prebuilt_groups is not None:
            self.group_constraints: tuple[Constraint, ...] = self.prebuilt_groups
        else:
            self.group_constraints = tuple(
                make_group_constraint(gr, self.infrastructure)
                for gr in self.request.groups
            )
        self.assignment: AssignmentConstraint | None = (
            AssignmentConstraint(self.request.n) if self.include_assignment else None
        )
        self.load_cap = None
        if self.qos_strict:
            from repro.constraints.load_cap import LoadCapConstraint

            self.load_cap = LoadCapConstraint(
                self.infrastructure, self.request.demand, base_usage=self.base_usage
            )
        self._group_layout = None
        self._group_layout_built = False

    # ------------------------------------------------------------------
    def group_layout(self):
        """Flattened group-index layout for the vectorized kernel backends.

        Built lazily and cached (the groups are immutable per instance).
        ``None`` when any group constraint is not one of the four
        built-in rules — those score through their own
        ``batch_violations`` instead.
        """
        if not self._group_layout_built:
            from repro.engine.kernels import GroupLayout

            self._group_layout = GroupLayout.build(
                self.group_constraints,
                self.infrastructure.server_datacenter,
                self.infrastructure.m,
            )
            self._group_layout_built = True
        return self._group_layout

    # ------------------------------------------------------------------
    @property
    def all_constraints(self) -> tuple[Constraint, ...]:
        """Capacity first, then groups, then the optional extras."""
        cons: tuple[Constraint, ...] = (self.capacity, *self.group_constraints)
        if self.load_cap is not None:
            cons = (*cons, self.load_cap)
        if self.assignment is not None:
            cons = (*cons, self.assignment)
        return cons

    def __len__(self) -> int:
        return len(self.all_constraints)

    # ------------------------------------------------------------------
    def violations(self, assignment: IntArray) -> int:
        """Total violation count across all constraints for one genome."""
        return sum(c.violations(assignment) for c in self.all_constraints)

    def breakdown(self, assignment: IntArray) -> dict[str, int]:
        """Violations keyed by constraint name (names may repeat → summed)."""
        out: dict[str, int] = {}
        for c in self.all_constraints:
            out[c.name] = out.get(c.name, 0) + c.violations(assignment)
        return out

    def is_feasible(self, assignment: IntArray) -> bool:
        """True iff every constraint is satisfied."""
        for c in self.all_constraints:
            if c.violations(assignment) > 0:
                return False
        return True

    # ------------------------------------------------------------------
    def batch_violations(self, population: IntArray) -> IntArray:
        """Total violations per individual, shape (pop,)."""
        population = np.asarray(population, dtype=np.int64)
        total = np.zeros(population.shape[0], dtype=np.int64)
        for c in self.all_constraints:
            total += c.batch_violations(population)
        return total

    def batch_feasible(self, population: IntArray) -> np.ndarray:
        """Boolean feasibility mask per individual."""
        return self.batch_violations(population) == 0

    def batch_breakdown(self, population: IntArray) -> dict[str, IntArray]:
        """Per-constraint-name violation vectors for a population."""
        population = np.asarray(population, dtype=np.int64)
        out: dict[str, IntArray] = {}
        for c in self.all_constraints:
            counts = c.batch_violations(population)
            if c.name in out:
                out[c.name] = out[c.name] + counts
            else:
                out[c.name] = counts
        return out
