"""The allocation constraint, Eq. 5 / Eq. 17.

Every requested resource must be hosted exactly once.  In the flat
genome encoding multiplicity is impossible (a gene holds one server
id), so the only violation mode is an :data:`UNPLACED` gene; each one
counts as a violation.
"""

from __future__ import annotations

import numpy as np

from repro.constraints.base import Constraint
from repro.model.placement import UNPLACED
from repro.types import IntArray

__all__ = ["AssignmentConstraint"]


class AssignmentConstraint(Constraint):
    """Counts unplaced resources (Eq. 5 in genome form)."""

    name = "assignment"

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self.n = int(n)

    def violations(self, assignment: IntArray) -> int:
        """Count unassigned VMs (Eq. 5/17) in one assignment."""
        assignment = np.asarray(assignment)
        if assignment.shape != (self.n,):
            raise ValueError(
                f"genome shape {assignment.shape}, expected ({self.n},)"
            )
        return int(np.count_nonzero(assignment == UNPLACED))

    def batch_violations(self, population: IntArray) -> IntArray:
        """Vectorized :meth:`violations` over a population matrix."""
        population = np.asarray(population)
        return np.count_nonzero(population == UNPLACED, axis=1).astype(np.int64)
