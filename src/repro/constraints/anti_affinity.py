"""Separation constraints: Eq. 11 (different datacenters), Eq. 12
(different servers).

A separation group is satisfied when no two *placed* members share a
location.  Violations count the collisions collapsed away: k members on
one server that must all differ contribute k-1 violations, so each
repair move that peels one member off reduces the count by one.
"""

from __future__ import annotations

import numpy as np

from repro.constraints.affinity import _GroupConstraint, _distinct_per_row
from repro.model.infrastructure import Infrastructure
from repro.model.placement import UNPLACED
from repro.types import IntArray

__all__ = ["DifferentServersConstraint", "DifferentDatacentersConstraint"]


class DifferentServersConstraint(_GroupConstraint):
    """Eq. 12: no two group members on the same server."""

    name = "different_servers"

    def violations(self, assignment: IntArray) -> int:
        """Count colliding different-servers pairs in one assignment."""
        genes = self._member_genes(assignment)
        placed = genes[genes != UNPLACED]
        if placed.size <= 1:
            return 0
        return int(placed.size - np.unique(placed).size)

    def batch_violations(self, population: IntArray) -> IntArray:
        """Vectorized :meth:`violations` over a population matrix."""
        population = np.asarray(population, dtype=np.int64)
        genes = population[:, self._idx]
        if np.any(genes == UNPLACED):
            return super().batch_violations(population)
        return (genes.shape[1] - _distinct_per_row(genes)).astype(np.int64)


class DifferentDatacentersConstraint(_GroupConstraint):
    """Eq. 11: no two group members inside the same datacenter."""

    name = "different_datacenters"

    def __init__(
        self, members: tuple[int, ...], infrastructure: Infrastructure
    ) -> None:
        super().__init__(members)
        self.infrastructure = infrastructure

    def violations(self, assignment: IntArray) -> int:
        """Count colliding different-datacenters pairs in one assignment."""
        genes = self._member_genes(assignment)
        placed = genes[genes != UNPLACED]
        if placed.size <= 1:
            return 0
        dcs = self.infrastructure.server_datacenter[placed]
        return int(dcs.size - np.unique(dcs).size)

    def batch_violations(self, population: IntArray) -> IntArray:
        """Vectorized :meth:`violations` over a population matrix."""
        population = np.asarray(population, dtype=np.int64)
        genes = population[:, self._idx]
        if np.any(genes == UNPLACED):
            return super().batch_violations(population)
        dcs = self.infrastructure.server_datacenter[genes]
        return (genes.shape[1] - _distinct_per_row(dcs)).astype(np.int64)
