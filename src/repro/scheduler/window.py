"""The cyclic time-window scheduler.

Operates exactly as Section III sketches: requests arriving during a
window are batched; at the window boundary the batch is handed —
together with the live platform state — to the configured allocation
algorithm; accepted placements are committed (their capacity becomes
unavailable to later windows) and rejected requests are reported.

:meth:`TimeWindowScheduler.reoptimize` is the reconfiguration cycle:
every hosted tenant is re-optimized as one instance with the current
allocation as X^t, so the migration objective (Eq. 26) is live, and the
resulting plan is applied atomically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.allocator import Allocator, BatchOutcome
from repro.engine import ParallelEngine, ProblemCache
from repro.errors import SchedulerError
from repro.model.infrastructure import Infrastructure
from repro.model.placement import Placement
from repro.model.request import Request
from repro.model.placement import UNPLACED
from repro.model.state import PlatformState
from repro.scheduler.events import (
    ArrivalEvent,
    DepartureEvent,
    EventQueue,
    ServerFailureEvent,
    ServerRecoveryEvent,
)
from repro.runtime.checkpoint import CheckpointManager
from repro.scheduler.reconfiguration import MigrationPlan, plan_migration
from repro.serialization import request_from_dict, request_to_dict
from repro.telemetry import (
    MigrationPlanned,
    RequestRejected,
    WindowClosed,
    get_bus,
    get_registry,
    span,
)

__all__ = ["WindowReport", "TimeWindowScheduler"]


@dataclass(frozen=True)
class WindowReport:
    """What happened in one scheduling window."""

    window_index: int
    start_time: float
    end_time: float
    arrivals: tuple[str, ...]
    departures: tuple[str, ...]
    accepted: tuple[str, ...]
    rejected: tuple[str, ...]
    outcome: BatchOutcome | None
    failures: tuple[int, ...] = ()
    recoveries: tuple[int, ...] = ()
    displaced: tuple[str, ...] = ()
    #: Servers taken out of service this window for planned maintenance
    #: (``schedule_drain``) — handled like failures, reported apart.
    drains: tuple[int, ...] = ()

    @property
    def rejection_rate(self) -> float:
        """Fraction of this window's arrivals that were rejected."""
        total = len(self.accepted) + len(self.rejected)
        return len(self.rejected) / total if total else 0.0


@dataclass
class TimeWindowScheduler:
    """Batching scheduler over one infrastructure and one allocator."""

    infrastructure: Infrastructure
    allocator: Allocator
    window_length: float = 1.0
    #: Compilation cache threaded through every window solve (and any
    #: reoptimize-override allocator), so instances seen in earlier
    #: windows are never recompiled.
    problem_cache: ProblemCache = field(default_factory=ProblemCache)
    #: Optional intra-run parallel engine threaded through the window
    #: allocator (and any reoptimize override) the same way, so one
    #: worker pool and one set of shared-memory instances serve every
    #: window.  The scheduler does not own its lifecycle — call
    #: :meth:`close` (or the engine's) when the simulation ends.
    execution_engine: ParallelEngine | None = None
    #: Optional checkpoint store.  When set, (a) every window solve's
    #: EA checkpoints land in it stamped with the window index, so a
    #: killed mid-window run resumes inside the window, and (b) the
    #: scheduler snapshots its own state (clock, residents, pending
    #: events) after each window — restore with :meth:`resume`.
    checkpoint_manager: CheckpointManager | None = None
    state: PlatformState = field(init=False)
    _queue: EventQueue = field(init=False, default_factory=EventQueue)
    _requests: dict[str, Request] = field(init=False, default_factory=dict)
    _clock: float = field(init=False, default=0.0)
    _window_index: int = field(init=False, default=0)
    _failed_servers: set[int] = field(init=False, default_factory=set)

    def __post_init__(self) -> None:
        if self.window_length <= 0:
            raise SchedulerError(
                f"window_length must be > 0, got {self.window_length}"
            )
        self.state = PlatformState(self.infrastructure)
        self.allocator.problem_cache = self.problem_cache
        if self.execution_engine is not None:
            self.allocator.execution_engine = self.execution_engine
        if self.checkpoint_manager is not None:
            self.allocator.checkpoint_manager = self.checkpoint_manager

    # ------------------------------------------------------------------
    # Event submission
    # ------------------------------------------------------------------
    def submit(self, key: str, request: Request, at: float | None = None) -> None:
        """Enqueue a consumer request (defaults to 'now')."""
        if key in self._requests:
            raise SchedulerError(f"request key {key!r} already submitted")
        self._requests[key] = request
        self._queue.push(
            ArrivalEvent(
                time=self._clock if at is None else at, key=key, request=request
            )
        )

    def schedule_departure(self, key: str, at: float) -> None:
        """Enqueue a future departure for a (to-be-)hosted request."""
        self._queue.push(DepartureEvent(time=at, key=key))

    def schedule_failure(self, server: int, at: float) -> None:
        """Enqueue a server failure (the paper's platform flow events)."""
        if not (0 <= server < self.infrastructure.m):
            raise SchedulerError(
                f"server {server} outside [0, {self.infrastructure.m})"
            )
        self._queue.push(ServerFailureEvent(time=at, server=server))

    def schedule_drain(self, server: int, at: float) -> None:
        """Enqueue a maintenance drain: forced evacuation of ``server``.

        Semantically a planned failure — the server leaves the usable
        estate and its tenants are displaced into the window batch for
        re-placement — but reported separately (``WindowReport.drains``,
        ``scheduler.drains``) so operations can tell maintenance from
        crashes.  Pair with :meth:`schedule_recovery` to end the
        maintenance window.
        """
        if not (0 <= server < self.infrastructure.m):
            raise SchedulerError(
                f"server {server} outside [0, {self.infrastructure.m})"
            )
        self._queue.push(
            ServerFailureEvent(time=at, server=server, reason="drain")
        )

    def schedule_recovery(self, server: int, at: float) -> None:
        """Enqueue a server returning to service."""
        if not (0 <= server < self.infrastructure.m):
            raise SchedulerError(
                f"server {server} outside [0, {self.infrastructure.m})"
            )
        self._queue.push(ServerRecoveryEvent(time=at, server=server))

    @property
    def failed_servers(self) -> frozenset[int]:
        """Servers currently out of service."""
        return frozenset(self._failed_servers)

    def has_request(self, key: str) -> bool:
        """Whether ``key`` was ever submitted (hosted, pending or rejected).

        Submitted keys are permanent: re-submitting one raises, so a
        live admission layer must pre-check here before enqueueing.
        """
        return key in self._requests

    def request_for(self, key: str) -> Request | None:
        """The request object submitted under ``key``, if any."""
        return self._requests.get(key)

    @property
    def clock(self) -> float:
        """Current simulated time."""
        return self._clock

    @property
    def window_index(self) -> int:
        """Index of the next window to run (= windows closed so far)."""
        return self._window_index

    @property
    def pending_events(self) -> int:
        """Events not yet processed."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Window processing
    # ------------------------------------------------------------------
    def _blocked_usage(self) -> np.ndarray:
        """Committed usage plus full blocks on failed servers, so no
        allocator can place anything on an out-of-service host."""
        usage = self.state.snapshot_usage()
        if self._failed_servers:
            failed = sorted(self._failed_servers)
            effective = self.infrastructure.effective_capacity
            usage[failed] = np.maximum(usage[failed], effective[failed])
        return usage

    def _displace_tenants_on(self, server: int) -> list[tuple[str, Request, np.ndarray]]:
        """Release every tenant touching ``server``; return their
        (key, request, previous assignment) for re-placement.  Genes on
        the failed server become UNPLACED in the previous assignment so
        the forced move is not charged as a migration."""
        displaced: list[tuple[str, Request, np.ndarray]] = []
        for key in list(self.state.tenants()):
            assignment = self.state.previous_assignment(key)
            if assignment is None or not np.any(assignment == server):
                continue
            previous = assignment.copy()
            previous[previous == server] = UNPLACED
            self.state.release(key)
            displaced.append((key, self._requests[key], previous))
        return displaced

    def run_window(self) -> WindowReport:
        """Advance one window: drain events, allocate, commit."""
        start = self._clock
        self._clock += self.window_length
        events = self._queue.pop_until(self._clock)

        departures: list[str] = []
        failures: list[int] = []
        drains: list[int] = []
        recoveries: list[int] = []
        batch_keys: list[str] = []
        batch_requests: list[Request] = []
        batch_previous: list[np.ndarray | None] = []
        displaced_keys: list[str] = []

        for event in events:
            if isinstance(event, DepartureEvent):
                if event.key in self.state.tenants():
                    self.state.release(event.key)
                    departures.append(event.key)
                # Departures of never-hosted (rejected) requests are
                # silently dropped: there is nothing to release.
            elif isinstance(event, ServerFailureEvent):
                if event.server not in self._failed_servers:
                    self._failed_servers.add(event.server)
                    (drains if event.reason == "drain" else failures).append(
                        event.server
                    )
                    # A tenant displaced by an *earlier* failure in this
                    # same window may still reference this server in the
                    # previous assignment it carries into the batch.
                    # Scrub those genes too: the second forced move must
                    # not be charged as a migration, and the allocator
                    # must never anchor to an out-of-service host.
                    for previous in batch_previous:
                        if previous is not None and np.any(
                            previous == event.server
                        ):
                            previous[previous == event.server] = UNPLACED
                    for key, request, previous in self._displace_tenants_on(
                        event.server
                    ):
                        batch_keys.append(key)
                        batch_requests.append(request)
                        batch_previous.append(previous)
                        displaced_keys.append(key)
            elif isinstance(event, ServerRecoveryEvent):
                if event.server in self._failed_servers:
                    self._failed_servers.discard(event.server)
                    recoveries.append(event.server)
            else:  # ArrivalEvent
                batch_keys.append(event.key)
                batch_requests.append(event.request)
                batch_previous.append(None)

        if self.checkpoint_manager is not None:
            # Stamp EA checkpoints written during this window's solve.
            self.checkpoint_manager.window_index = self._window_index

        outcome: BatchOutcome | None = None
        accepted: list[str] = []
        rejected: list[str] = []
        if batch_requests:
            previous_assignment = None
            if any(p is not None for p in batch_previous):
                parts = [
                    p if p is not None else np.full(r.n, UNPLACED, dtype=np.int64)
                    for p, r in zip(batch_previous, batch_requests)
                ]
                previous_assignment = np.concatenate(parts)
            with span(
                "scheduler.allocate",
                window=self._window_index,
                requests=len(batch_requests),
            ):
                outcome = self.allocator.allocate(
                    self.infrastructure,
                    batch_requests,
                    base_usage=self._blocked_usage(),
                    previous_assignment=previous_assignment,
                )
            offset = 0
            for idx, (key, request) in enumerate(zip(batch_keys, batch_requests)):
                block = outcome.assignment[offset : offset + request.n]
                offset += request.n
                if outcome.accepted[idx] and np.all(block >= 0):
                    placement = Placement(
                        assignment=block.copy(),
                        infrastructure=self.infrastructure,
                    )
                    self.state.commit(key, placement, request)
                    accepted.append(key)
                else:
                    rejected.append(key)

        report = WindowReport(
            window_index=self._window_index,
            start_time=start,
            end_time=self._clock,
            arrivals=tuple(k for k in batch_keys if k not in displaced_keys),
            departures=tuple(departures),
            accepted=tuple(accepted),
            rejected=tuple(rejected),
            outcome=outcome,
            failures=tuple(failures),
            recoveries=tuple(recoveries),
            displaced=tuple(displaced_keys),
            drains=tuple(drains),
        )
        self._record_window_telemetry(report)
        self._window_index += 1
        if self.checkpoint_manager is not None:
            self.checkpoint()
        return report

    def _record_window_telemetry(self, report: WindowReport) -> None:
        """Counters + events for one closed window.  Rejections are
        emitted before the WindowClosed marker, so a sink replaying the
        stream sees each window's decisions, then its close."""
        registry = get_registry()
        registry.count("scheduler.windows")
        registry.count("scheduler.arrivals", len(report.arrivals))
        registry.count("scheduler.departures", len(report.departures))
        registry.count("scheduler.accepted", len(report.accepted))
        registry.count("scheduler.rejected", len(report.rejected))
        registry.count("scheduler.displaced", len(report.displaced))
        registry.count("scheduler.failures", len(report.failures))
        registry.count("scheduler.drains", len(report.drains))
        registry.count("scheduler.recoveries", len(report.recoveries))
        bus = get_bus()
        if not bus.enabled:
            return
        displaced = set(report.displaced)
        for key in report.rejected:
            bus.emit(
                RequestRejected(
                    key=key,
                    window_index=report.window_index,
                    reason="displaced" if key in displaced else "capacity",
                )
            )
        bus.emit(
            WindowClosed(
                window_index=report.window_index,
                start_time=report.start_time,
                end_time=report.end_time,
                arrivals=len(report.arrivals),
                departures=len(report.departures),
                accepted=len(report.accepted),
                rejected=len(report.rejected),
                displaced=len(report.displaced),
                failures=len(report.failures),
                recoveries=len(report.recoveries),
                drains=len(report.drains),
            )
        )

    def run(self, max_windows: int = 1_000) -> list[WindowReport]:
        """Process windows until the event queue drains (or the cap)."""
        reports: list[WindowReport] = []
        while self._queue and len(reports) < max_windows:
            reports.append(self.run_window())
        return reports

    def close(self) -> None:
        """Release the allocator's resources and the shared engine.

        The allocator may hold its own worker pool (or, for a
        portfolio, its members' pools) even when no engine was injected
        into the scheduler — closing only the injected engine used to
        leak those."""
        self.allocator.close()
        if self.execution_engine is not None:
            self.execution_engine.close()
            self.execution_engine = None

    # ------------------------------------------------------------------
    # Checkpoint / resume
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-able snapshot of the simulation state.

        Captures the clock, window index, failed servers, every known
        request, committed residents and pending events — everything
        needed to rebuild the scheduler at the same window boundary.
        Arrival events store only their request key (the request itself
        lives in the requests map).
        """
        events: list[dict] = []
        for event in self._queue.snapshot():
            if isinstance(event, ArrivalEvent):
                events.append(
                    {"type": "arrival", "time": event.time, "key": event.key}
                )
            elif isinstance(event, DepartureEvent):
                events.append(
                    {"type": "departure", "time": event.time, "key": event.key}
                )
            elif isinstance(event, ServerFailureEvent):
                events.append(
                    {
                        "type": "failure",
                        "time": event.time,
                        "server": event.server,
                        "reason": event.reason,
                    }
                )
            elif isinstance(event, ServerRecoveryEvent):
                events.append(
                    {"type": "recovery", "time": event.time, "server": event.server}
                )
            else:  # pragma: no cover - future event kinds must opt in
                raise SchedulerError(
                    f"cannot checkpoint event of type {type(event).__name__}"
                )
        # Ordered pairs, not mappings: the on-disk envelope canonicalizes
        # dict keys, but commit order is trajectory state (it decides
        # tenant concatenation order in reoptimize passes).
        residents = [
            [key, [int(g) for g in self.state.previous_assignment(key)]]
            for key in self.state.tenants()
        ]
        return {
            "window_length": self.window_length,
            "clock": self._clock,
            "window_index": self._window_index,
            "failed_servers": sorted(self._failed_servers),
            "requests": [
                [key, request_to_dict(req)] for key, req in self._requests.items()
            ],
            "residents": residents,
            # The accumulated matrix itself, not just the ledger: usage
            # evolves by +demand/-demand increments whose float
            # round-off a fresh rebuild would not reproduce, and resume
            # is byte-identical only if the restored scheduler hands
            # allocators the exact same base_usage.
            "committed_usage": self.state.committed_usage.tolist(),
            "pending": events,
            # Cross-window allocator state (round-robin pointer, greedy
            # tie-break RNG); None for stateless allocators.
            "allocator": self.allocator.runtime_state(),
        }

    def checkpoint(self, name: str = "scheduler") -> None:
        """Persist :meth:`state_dict` through the checkpoint manager.

        :meth:`run_window` calls this automatically at every window
        boundary when a manager is configured; callers may also invoke
        it manually (e.g. before a risky reoptimize pass).
        """
        if self.checkpoint_manager is None:
            raise SchedulerError("scheduler has no checkpoint manager configured")
        self.checkpoint_manager.save_state(
            name, "scheduler_checkpoint", self.state_dict()
        )

    def load_state_dict(self, payload: dict) -> None:
        """Restore a :meth:`state_dict` snapshot into this scheduler.

        The scheduler must be freshly constructed (no submitted
        requests, no committed tenants) over the same infrastructure
        the snapshot was taken from.
        """
        if self._requests or self.state.tenants():
            raise SchedulerError(
                "load_state_dict requires a freshly constructed scheduler"
            )
        self._clock = float(payload["clock"])
        self._window_index = int(payload["window_index"])
        self._failed_servers = {int(s) for s in payload["failed_servers"]}
        self._requests = {
            key: request_from_dict(data) for key, data in payload["requests"]
        }
        for key, genes in payload["residents"]:
            request = self._requests.get(key)
            if request is None:
                raise SchedulerError(
                    f"checkpoint resident {key!r} has no request record"
                )
            placement = Placement(
                assignment=np.asarray(genes, dtype=np.int64),
                infrastructure=self.infrastructure,
            )
            self.state.commit(key, placement, request)
        # Adopt the snapshot's accumulated usage matrix verbatim (see
        # state_dict), after checking the rebuilt ledger agrees with it
        # to float tolerance.
        usage = np.asarray(payload["committed_usage"], dtype=np.float64)
        if usage.shape != self.state.committed_usage.shape:
            raise SchedulerError(
                "checkpoint usage matrix does not match this infrastructure"
            )
        if not np.allclose(usage, self.state.committed_usage, atol=1e-9):
            raise SchedulerError(
                "checkpoint usage matrix diverged from its resident ledger"
            )
        self.state.committed_usage = usage
        for event in payload["pending"]:
            kind = event["type"]
            if kind == "arrival":
                request = self._requests.get(event["key"])
                if request is None:
                    raise SchedulerError(
                        f"checkpoint arrival {event['key']!r} has no request record"
                    )
                self._queue.push(
                    ArrivalEvent(
                        time=event["time"], key=event["key"], request=request
                    )
                )
            elif kind == "departure":
                self._queue.push(
                    DepartureEvent(time=event["time"], key=event["key"])
                )
            elif kind == "failure":
                self._queue.push(
                    ServerFailureEvent(
                        time=event["time"],
                        server=event["server"],
                        reason=event.get("reason", "failure"),
                    )
                )
            elif kind == "recovery":
                self._queue.push(
                    ServerRecoveryEvent(time=event["time"], server=event["server"])
                )
            else:
                raise SchedulerError(f"unknown checkpointed event type {kind!r}")
        allocator_state = payload.get("allocator")
        if allocator_state is not None:
            self.allocator.restore_runtime_state(allocator_state)

    @classmethod
    def resume(
        cls,
        infrastructure: Infrastructure,
        allocator: Allocator,
        checkpoint_manager: CheckpointManager,
        name: str = "scheduler",
        problem_cache: ProblemCache | None = None,
        execution_engine: ParallelEngine | None = None,
    ) -> "TimeWindowScheduler":
        """Rebuild a scheduler from the manager's latest snapshot.

        The returned scheduler keeps the manager attached, so the run
        continues checkpointing into the same directory; a mid-window
        EA checkpoint written before the kill is picked up by the
        window solve's auto-resume.
        """
        payload = checkpoint_manager.load_state(name, "scheduler_checkpoint")
        scheduler = cls(
            infrastructure=infrastructure,
            allocator=allocator,
            window_length=float(payload["window_length"]),
            checkpoint_manager=checkpoint_manager,
            **({"problem_cache": problem_cache} if problem_cache is not None else {}),
            execution_engine=execution_engine,
        )
        scheduler.load_state_dict(payload)
        return scheduler

    # ------------------------------------------------------------------
    # Reconfiguration
    # ------------------------------------------------------------------
    def reoptimize(
        self, allocator: Allocator | None = None
    ) -> tuple[BatchOutcome, MigrationPlan] | None:
        """Re-optimize every hosted tenant as one instance (X^t → X^{t+1}).

        The current allocation is passed as ``previous_assignment``, so
        the migration objective is active and the optimizer trades
        packing gains against movement cost.  Returns None when the
        platform is empty.  The plan is applied only if the new
        allocation is accepted for every tenant; otherwise the platform
        is left untouched and the (outcome, plan) pair is still
        returned for inspection.
        """
        tenants = self.state.tenants()
        if not tenants:
            return None
        algo = allocator or self.allocator
        # Override allocators join the scheduler's compilation cache so
        # a reoptimize pass over already-hosted tenants reuses the
        # windows' compiled instances (and its worker pool, if any).
        algo.problem_cache = self.problem_cache
        if self.execution_engine is not None:
            algo.execution_engine = self.execution_engine
        if self.checkpoint_manager is not None:
            algo.checkpoint_manager = self.checkpoint_manager
        requests = [self._requests[k] for k in tenants]
        previous_parts = [self.state.previous_assignment(k) for k in tenants]
        previous = np.concatenate(previous_parts)

        # Tenants are re-placed from scratch, but failed servers stay
        # blocked for the re-optimization too.
        base_usage = None
        if self._failed_servers:
            base_usage = np.zeros_like(self.state.committed_usage)
            failed = sorted(self._failed_servers)
            base_usage[failed] = self.infrastructure.effective_capacity[failed]
        outcome = algo.allocate(
            self.infrastructure,
            requests,
            base_usage=base_usage,
            previous_assignment=previous,
        )
        merged, _ = Request.concatenate(requests)
        plan = plan_migration(previous, outcome.assignment, merged)

        applied = bool(outcome.accepted.all()) and outcome.violations == 0
        if applied:
            offset = 0
            for key, request in zip(tenants, requests):
                block = outcome.assignment[offset : offset + request.n]
                offset += request.n
                placement = Placement(
                    assignment=block.copy(), infrastructure=self.infrastructure
                )
                self.state.release(key)
                self.state.commit(key, placement, request)

        registry = get_registry()
        registry.count("scheduler.reoptimizations")
        if applied and self.checkpoint_manager is not None:
            self.checkpoint()
        if applied:
            registry.count("scheduler.migration_moves", plan.size)
        bus = get_bus()
        if bus.enabled:
            bus.emit(
                MigrationPlanned(
                    tenants=len(tenants),
                    moves=plan.size,
                    boots=len(plan.boots),
                    shutdowns=len(plan.shutdowns),
                    cost=plan.total_cost,
                    applied=applied,
                )
            )
        return outcome, plan
